"""Exact solvers: ground truth for the optimality-gap experiments.

:class:`BruteForceSolver` enumerates all ``M^N`` assignments with
capacity pruning — only viable for tiny instances, used in tests as an
oracle for branch-and-bound.

:class:`BranchAndBoundSolver` is the workhorse: depth-first search over
devices (largest demand first), servers tried in increasing delay,
pruned by an admissible capacity-relaxed bound (each remaining device
at its unconstrained best server).  With the greedy incumbent it solves
the T1 table sizes (tens of devices) in milliseconds to seconds.  A
node budget turns it into an anytime heuristic on larger instances; the
result's ``extra["optimal"]`` says whether the search completed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.utils.validation import require


class BruteForceSolver(Solver):
    """Exhaustive DFS with capacity pruning only.

    Guarded by ``max_nodes`` (default allows about ``5^8`` states) so a
    mistaken call on a large instance fails fast instead of hanging.
    """

    name = "brute_force"

    def __init__(self, max_nodes: int = 2_000_000, **kwargs) -> None:
        super().__init__(**kwargs)
        require(max_nodes > 0, "max_nodes must be positive")
        self.max_nodes = max_nodes

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        state_space = m**n
        require(
            state_space <= self.max_nodes,
            f"brute force over {m}^{n} = {state_space} states exceeds "
            f"max_nodes={self.max_nodes}; use BranchAndBoundSolver",
        )
        best_vector: "np.ndarray | None" = None
        best_cost = math.inf
        vector = np.full(n, -1, dtype=np.int64)
        residual = problem.capacity.copy()
        nodes = 0

        def descend(device: int, cost: float) -> None:
            """Return descend."""
            nonlocal best_vector, best_cost, nodes
            nodes += 1
            if device == n:
                if cost < best_cost:
                    best_cost = cost
                    best_vector = vector.copy()
                return
            for server in range(m):
                demand = problem.demand[device, server]
                if demand > residual[server] + 1e-12:
                    continue
                step = problem.delay[device, server]
                if cost + step >= best_cost:
                    continue
                vector[device] = server
                residual[server] -= demand
                descend(device + 1, cost + step)
                residual[server] += demand
                vector[device] = -1

        descend(0, 0.0)
        info = {"iterations": nodes, "optimal": True}
        if best_vector is None:
            info["proved_infeasible"] = True
            return Assignment(problem), info
        return Assignment(problem, best_vector), info


class BranchAndBoundSolver(Solver):
    """Depth-first branch-and-bound minimizing total delay under capacities.

    Design notes:

    * Devices are explored in decreasing mean-demand order so capacity
      conflicts surface high in the tree.
    * The bound at depth ``k`` is ``cost so far + suffix[k]`` where
      ``suffix[k]`` is the capacity-relaxed cost of all remaining
      devices — admissible, O(1) per node.
    * The greedy-feasible solution primes the incumbent, which makes
      the bound bite immediately.
    * ``node_budget`` bounds work; if exhausted the best incumbent is
      returned with ``extra["optimal"] = False``.
    """

    name = "branch_and_bound"

    def __init__(self, node_budget: int = 5_000_000, **kwargs) -> None:
        super().__init__(**kwargs)
        require(node_budget > 0, "node_budget must be positive")
        self.node_budget = node_budget

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        order = np.argsort(-np.mean(problem.demand, axis=1)).astype(np.int64)
        delay = problem.delay[order]
        demand = problem.demand[order]
        # suffix[k] = relaxed cost of devices k..n-1 (in search order)
        row_min = np.min(delay, axis=1)
        suffix = np.concatenate([np.cumsum(row_min[::-1])[::-1], [0.0]])
        # server preference per device: increasing delay
        preference = np.argsort(delay, axis=1)

        incumbent = feasible_start(problem)
        if incumbent.is_feasible():
            best_cost = incumbent.total_delay()
            best_vector = incumbent.vector
        else:
            best_cost = math.inf
            best_vector = None

        vector = np.full(n, -1, dtype=np.int64)  # in search order
        residual = problem.capacity.copy()
        nodes = 0
        exhausted = True

        # iterative DFS: stack of (depth, next preference index to try)
        depth = 0
        choice = np.zeros(n + 1, dtype=np.int64)
        cost = np.zeros(n + 1, dtype=np.float64)
        while depth >= 0:
            if nodes >= self.node_budget:
                exhausted = False
                break
            if depth == n:
                if cost[depth] < best_cost:
                    best_cost = cost[depth]
                    best_vector_search = vector.copy()
                    best_vector = np.empty(n, dtype=np.int64)
                    best_vector[order] = best_vector_search
                # backtrack
                depth -= 1
                server = int(vector[depth])
                residual[server] += demand[depth, server]
                vector[depth] = -1
                choice[depth] += 1
                continue
            advanced = False
            while choice[depth] < m:
                server = int(preference[depth, choice[depth]])
                need = demand[depth, server]
                if need <= residual[server] + 1e-12:
                    new_cost = cost[depth] + delay[depth, server]
                    if new_cost + suffix[depth + 1] < best_cost - 1e-15:
                        nodes += 1
                        vector[depth] = server
                        residual[server] -= need
                        cost[depth + 1] = new_cost
                        depth += 1
                        choice[depth] = 0
                        advanced = True
                        break
                    # preference is delay-sorted and the bound is affine in
                    # the step delay, so later servers prune identically —
                    # but only for the *bound* reason, not the fit reason;
                    # keep scanning for cheaper-to-fit servers is pointless
                    # since delay only grows: prune the whole level.
                    choice[depth] = m
                    break
                choice[depth] += 1
            if advanced:
                continue
            # level exhausted: backtrack
            depth -= 1
            if depth >= 0:
                server = int(vector[depth])
                residual[server] += demand[depth, server]
                vector[depth] = -1
                choice[depth] += 1

        info = {
            "iterations": nodes,
            "optimal": exhausted,
            "lower_bound": float(suffix[0]),
        }
        if best_vector is None:
            if exhausted:
                info["proved_infeasible"] = True
            return Assignment(problem), info
        return Assignment(problem, best_vector), info

"""Genetic algorithm with feasibility repair.

A standard GA comparator for GAP-style problems: tournament selection,
uniform crossover, point mutation, plus a **repair operator** that
drains overloaded servers by re-homing their cheapest-to-move devices.
Fitness is penalized total delay, elitism preserves the best feasible
individual, and the returned assignment is the best feasible one seen
across all generations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start, random_feasible_assignment
from repro.utils.validation import check_probability, require


class GeneticSolver(Solver):
    """Population-based search over assignment vectors."""

    name = "genetic"

    def __init__(
        self,
        population: int = 40,
        generations: int = 150,
        mutation_prob: float = 0.05,
        tournament: int = 3,
        penalty_factor: float = 2.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(population >= 4, "population must be >= 4")
        require(generations >= 1, "generations must be >= 1")
        require(tournament >= 2, "tournament must be >= 2")
        check_probability(mutation_prob, "mutation_prob")
        self.population = population
        self.generations = generations
        self.mutation_prob = mutation_prob
        self.tournament = tournament
        self.penalty_factor = penalty_factor

    # ------------------------------------------------------------------
    def _repair(self, problem: AssignmentProblem, vector: np.ndarray, rng) -> None:
        """Re-home devices away from overloaded servers, cheapest move first."""
        loads = np.zeros(problem.n_servers)
        np.add.at(loads, vector, problem.demand[np.arange(problem.n_devices), vector])
        for server in np.argsort(-(loads - problem.capacity)):
            server = int(server)
            while loads[server] > problem.capacity[server] + 1e-12:
                residents = np.flatnonzero(vector == server)
                if residents.size == 0:
                    break
                best = None  # (delay increase, device, target)
                for device in residents:
                    room = problem.capacity - loads
                    fits = np.flatnonzero(problem.demand[device] <= room + 1e-12)
                    fits = fits[fits != server]
                    if fits.size == 0:
                        continue
                    target = int(fits[np.argmin(problem.delay[device, fits])])
                    increase = problem.delay[device, target] - problem.delay[device, server]
                    if best is None or increase < best[0]:
                        best = (increase, int(device), target)
                if best is None:
                    # nobody can leave: evict a random resident to a random
                    # server and let the penalty handle any new overload
                    device = int(residents[rng.integers(residents.size)])
                    target = int(rng.integers(problem.n_servers))
                    if target == server:
                        break
                else:
                    _, device, target = best
                loads[server] -= problem.demand[device, server]
                loads[target] += problem.demand[device, target]
                vector[device] = target

    def _fitness(self, problem: AssignmentProblem, vector: np.ndarray, penalty: float) -> float:
        n = problem.n_devices
        cost = float(np.sum(problem.delay[np.arange(n), vector]))
        loads = np.zeros(problem.n_servers)
        np.add.at(loads, vector, problem.demand[np.arange(n), vector])
        overload = float(np.sum(np.maximum(loads - problem.capacity, 0.0)))
        return cost + penalty * overload

    # ------------------------------------------------------------------
    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        delay_span = float(np.max(problem.delay) - np.min(problem.delay))
        penalty = self.penalty_factor * max(delay_span, 1e-12) / max(float(np.min(problem.demand)), 1e-12)

        pool = [random_feasible_assignment(problem, rng).vector for _ in range(self.population - 1)]
        pool.append(feasible_start(problem, rng).vector)
        # random_feasible can return partial vectors on pathological
        # instances; patch holes with the per-device min-delay server
        fallback = np.argmin(problem.delay, axis=1)
        for vector in pool:
            holes = vector < 0
            vector[holes] = fallback[holes]

        fitness = np.array([self._fitness(problem, v, penalty) for v in pool])
        best_feasible_cost = math.inf
        best_feasible_vector = None

        def consider(vector: np.ndarray, fit: float) -> None:
            """Return consider."""
            nonlocal best_feasible_cost, best_feasible_vector
            candidate = Assignment(problem, vector)
            if candidate.is_feasible():
                cost = candidate.total_delay()
                if cost < best_feasible_cost:
                    best_feasible_cost = cost
                    best_feasible_vector = vector.copy()

        for vector, fit in zip(pool, fitness):
            consider(vector, fit)

        generations_run = 0
        for _ in range(self.generations):
            generations_run += 1
            next_pool = [pool[int(np.argmin(fitness))].copy()]  # elitism
            while len(next_pool) < self.population:
                contenders = rng.integers(self.population, size=self.tournament)
                parent_a = pool[int(contenders[np.argmin(fitness[contenders])])]
                contenders = rng.integers(self.population, size=self.tournament)
                parent_b = pool[int(contenders[np.argmin(fitness[contenders])])]
                mask = rng.random(n) < 0.5
                child = np.where(mask, parent_a, parent_b)
                mutate = rng.random(n) < self.mutation_prob
                if np.any(mutate):
                    child = child.copy()
                    child[mutate] = rng.integers(m, size=int(np.count_nonzero(mutate)))
                child = child.astype(np.int64)
                self._repair(problem, child, rng)
                next_pool.append(child)
            pool = next_pool
            fitness = np.array([self._fitness(problem, v, penalty) for v in pool])
            champion = int(np.argmin(fitness))
            consider(pool[champion], float(fitness[champion]))

        if best_feasible_vector is None:
            champion = int(np.argmin(fitness))
            return Assignment(problem, pool[champion]), {"iterations": generations_run}
        return Assignment(problem, best_feasible_vector), {"iterations": generations_run}

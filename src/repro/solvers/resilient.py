"""Resilient solving: a fallback chain under a wall-clock budget.

Production cluster controllers cannot afford a solver that throws or
overruns its reconfiguration window — a late answer and no answer are
both outages.  :class:`ResilientSolver` wraps a *chain* of registered
solvers: members run in order until one returns a feasible assignment
within the remaining budget; errors are contained, slow members simply
exhaust their share, and the chain conventionally ends in a cheap
constructive method (``greedy``).  If everything fails there is a
terminal safety net — the capacity-blind nearest-server assignment —
so a ``solve()`` call *never raises* and always returns a complete
vector (possibly marked infeasible, which the degradation controller
then handles by shedding load).

Synchronous solvers cannot be preempted mid-run, so the budget is
enforced at member granularity: a member only starts while budget
remains, and a member that returns *after* the deadline has its result
accepted only if no later member does better within it (a late feasible
answer still beats the safety net).
"""

from __future__ import annotations

import math
import time

from repro.errors import ReproError
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.solvers.base import Solver
from repro.utils.rng import derive_seed
from repro.utils.validation import check_positive, require

import numpy as np

#: quality first, then speed: the chain ends in the cheapest constructive
DEFAULT_CHAIN = ("tacc", "lns", "greedy")


class ResilientSolver(Solver):
    """First-feasible-within-budget over a fallback chain."""

    name = "resilient"

    def __init__(
        self,
        chain: "tuple[str, ...] | list[str]" = DEFAULT_CHAIN,
        budget_s: float = 10.0,
        member_kwargs: "dict[str, dict] | None" = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(len(chain) >= 1, "resilient solver needs at least one chain member")
        check_positive(budget_s, "budget_s")
        self.chain = tuple(chain)
        self.budget_s = budget_s
        self.member_kwargs = dict(member_kwargs or {})

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        from repro.solvers.registry import get_solver

        registry = obs_runtime.metrics()
        start = time.perf_counter()
        attempts: dict[str, str] = {}
        late_feasible: "Assignment | None" = None
        late_source = None
        for position, member in enumerate(self.chain):
            elapsed = time.perf_counter() - start
            if elapsed >= self.budget_s:
                attempts[member] = "skipped:budget"
                continue
            kwargs = dict(self.member_kwargs.get(member, {}))
            kwargs.setdefault("seed", derive_seed(self.seed or 0, "resilient", member))
            try:
                result = get_solver(member, **kwargs).solve(problem)
            except ReproError as exc:
                attempts[member] = f"error:{type(exc).__name__}"
                self._count_fallback(registry, member)
                continue
            if not result.feasible:
                attempts[member] = "infeasible"
                self._count_fallback(registry, member)
                continue
            if time.perf_counter() - start <= self.budget_s:
                attempts[member] = "ok"
                return result.assignment, {
                    "winner": member,
                    "attempts": attempts,
                    "fallbacks": position,
                    "budget_s": self.budget_s,
                }
            # feasible but over budget: remember as a backup, keep going
            # only if a cheaper member might still land inside the budget
            attempts[member] = "late"
            self._count_fallback(registry, member)
            if late_feasible is None:
                late_feasible = result.assignment
                late_source = member
        if late_feasible is not None:
            return late_feasible, {
                "winner": late_source,
                "attempts": attempts,
                "fallbacks": len(self.chain),
                "budget_s": self.budget_s,
                "late": True,
            }
        # terminal safety net: nearest server for everyone — complete by
        # construction, possibly infeasible; the caller decides what to shed
        self._count_fallback(registry, "nearest_net")
        vector = np.argmin(
            np.where(
                np.isin(
                    np.arange(problem.n_servers), sorted(problem.failed_servers)
                )[None, :],
                math.inf,
                problem.delay,
            ),
            axis=1,
        )
        assignment = Assignment(problem, vector)
        return assignment, {
            "winner": "nearest_net",
            "attempts": attempts,
            "fallbacks": len(self.chain),
            "budget_s": self.budget_s,
        }

    @staticmethod
    def _count_fallback(registry, member: str) -> None:
        registry.counter(obs_names.SOLVER_FALLBACKS, {"solver": member}).inc()

"""Lagrangian relaxation with subgradient ascent.

The classical bounding/heuristic method for the GAP: dualize the
capacity constraints with multipliers ``lambda_j >= 0``::

    L(lambda) = sum_i min_j (delay[i,j] + lambda_j * demand[i,j])
                - sum_j lambda_j * capacity[j]

For any ``lambda >= 0``, ``L(lambda)`` lower-bounds the integral
optimum, and the inner minimization decomposes per device — each round
is O(N·M).  Subgradient ascent (Held–Karp style step sizing against
the incumbent upper bound) tightens the bound; at every round the
relaxed assignment is *repaired* into a feasible one (drain-overload
moves), giving a primal incumbent.  The result carries the best dual
bound in ``lower_bound``, so this solver certifies its own gap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start
from repro.solvers.lp import LPRoundingSolver
from repro.utils.validation import check_positive, require


class LagrangianSolver(Solver):
    """Subgradient optimization of the capacity-dualized GAP."""

    name = "lagrangian"

    def __init__(
        self,
        rounds: int = 150,
        initial_step: float = 2.0,
        step_shrink: float = 0.95,
        stall_limit: int = 10,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(rounds >= 1, "rounds must be >= 1")
        check_positive(initial_step, "initial_step")
        require(0.0 < step_shrink < 1.0, "step_shrink must be in (0, 1)")
        require(stall_limit >= 1, "stall_limit must be >= 1")
        self.rounds = rounds
        self.initial_step = initial_step
        self.step_shrink = step_shrink
        self.stall_limit = stall_limit

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        n, m = problem.n_devices, problem.n_servers
        delay = problem.delay
        demand = problem.demand
        capacity = problem.capacity

        incumbent = feasible_start(problem, rng)
        if incumbent.is_feasible():
            upper = incumbent.total_delay()
            best_vector = incumbent.vector
        else:
            upper = float(np.sum(np.max(delay, axis=1)))  # loose but finite
            best_vector = None

        multipliers = np.zeros(m)
        theta = self.initial_step
        best_bound = -math.inf
        stall = 0
        rounds_run = 0
        for _ in range(self.rounds):
            rounds_run += 1
            # inner minimization decomposes per device
            adjusted = delay + multipliers[None, :] * demand
            relaxed = np.argmin(adjusted, axis=1)
            bound = float(
                np.sum(adjusted[np.arange(n), relaxed]) - float(multipliers @ capacity)
            )
            if bound > best_bound + 1e-12:
                best_bound = bound
                stall = 0
            else:
                stall += 1
                if stall >= self.stall_limit:
                    theta *= self.step_shrink
                    stall = 0

            # primal repair of the relaxed (possibly overloaded) assignment
            candidate = relaxed.astype(np.int64).copy()
            LPRoundingSolver._repair(problem, candidate)
            primal = Assignment(problem, candidate)
            if primal.is_feasible():
                cost = primal.total_delay()
                if cost < upper:
                    upper = cost
                    best_vector = candidate.copy()

            # subgradient step on the violated capacities
            loads = np.zeros(m)
            np.add.at(loads, relaxed, demand[np.arange(n), relaxed])
            subgradient = loads - capacity
            norm_sq = float(subgradient @ subgradient)
            if norm_sq <= 1e-18:
                break  # relaxed solution is feasible: bound is tight
            step = theta * max(upper - bound, 1e-12) / norm_sq
            multipliers = np.maximum(0.0, multipliers + step * subgradient)

        info = {
            "iterations": rounds_run,
            "lower_bound": best_bound if math.isfinite(best_bound) else None,
        }
        if best_vector is None:
            return feasible_start(problem, rng), {**info, "fallback": True}
        return Assignment(problem, best_vector), info

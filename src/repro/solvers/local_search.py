"""Neighbourhood-search heuristics: hill climbing and tabu search.

Both operate on the classic GAP neighbourhood:

* **shift** — move one device to a different server with room;
* **swap** — exchange the servers of two devices when both fit.

:class:`LocalSearchSolver` descends to a local optimum from the greedy
start; :class:`TabuSearchSolver` keeps moving after local optima using
a recency-based tabu list with aspiration.  Both maintain feasibility
invariantly — a move is only a candidate if it keeps every server
within capacity — so they inherit the paper's "never overloaded"
guarantee from their feasible starting point.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start, random_feasible_assignment
from repro.utils.validation import require


def _shift_delta(problem: AssignmentProblem, vector, loads, device: int, server: int):
    """Objective delta and feasibility of moving ``device`` to ``server``."""
    current = int(vector[device])
    if current == server:
        return None
    new_load = loads[server] + problem.demand[device, server]
    if new_load > problem.capacity[server] + 1e-12:
        return None
    return problem.delay[device, server] - problem.delay[device, current]


def _apply_shift(problem: AssignmentProblem, vector, loads, device: int, server: int) -> None:
    current = int(vector[device])
    loads[current] -= problem.demand[device, current]
    loads[server] += problem.demand[device, server]
    vector[device] = server


def _swap_delta(problem: AssignmentProblem, vector, loads, a: int, b: int):
    """Objective delta and feasibility of exchanging devices ``a`` and ``b``."""
    sa, sb = int(vector[a]), int(vector[b])
    if sa == sb:
        return None
    load_a = loads[sa] - problem.demand[a, sa] + problem.demand[b, sa]
    load_b = loads[sb] - problem.demand[b, sb] + problem.demand[a, sb]
    if load_a > problem.capacity[sa] + 1e-12 or load_b > problem.capacity[sb] + 1e-12:
        return None
    return (
        problem.delay[a, sb]
        + problem.delay[b, sa]
        - problem.delay[a, sa]
        - problem.delay[b, sb]
    )


def _apply_swap(problem: AssignmentProblem, vector, loads, a: int, b: int) -> None:
    sa, sb = int(vector[a]), int(vector[b])
    loads[sa] += problem.demand[b, sa] - problem.demand[a, sa]
    loads[sb] += problem.demand[a, sb] - problem.demand[b, sb]
    vector[a], vector[b] = sb, sa


class LocalSearchSolver(Solver):
    """Best-improvement hill climbing over shift (and optionally swap) moves.

    Starts from the greedy-feasible solution (or a random feasible one
    with ``start="random"``) and repeats full passes until no move
    improves or ``max_passes`` is reached.
    """

    name = "local_search"

    def __init__(
        self,
        start: str = "greedy",
        use_swaps: bool = True,
        max_passes: int = 200,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        require(start in ("greedy", "random"), f"unknown start {start!r}")
        require(max_passes >= 1, "max_passes must be >= 1")
        self.start = start
        self.use_swaps = use_swaps
        self.max_passes = max_passes

    def _initial(self, problem: AssignmentProblem, rng) -> Assignment:
        if self.start == "random":
            return random_feasible_assignment(problem, rng)
        return feasible_start(problem, rng)

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        with self.phase("construct"):
            assignment = self._initial(problem, rng)
        if not assignment.is_complete:
            return assignment, {"iterations": 0}
        vector = assignment.vector
        loads = assignment.loads()
        n, m = problem.n_devices, problem.n_servers
        passes = 0
        moves = 0
        improved = True
        with self.phase("descend"):
            while improved and passes < self.max_passes:
                passes += 1
                improved = False
                best_delta = -1e-15
                best_move = None
                for device in range(n):
                    for server in range(m):
                        delta = _shift_delta(problem, vector, loads, device, server)
                        if delta is not None and delta < best_delta:
                            best_delta = delta
                            best_move = ("shift", device, server)
                if self.use_swaps:
                    for a in range(n):
                        for b in range(a + 1, n):
                            delta = _swap_delta(problem, vector, loads, a, b)
                            if delta is not None and delta < best_delta:
                                best_delta = delta
                                best_move = ("swap", a, b)
                if best_move is not None:
                    kind, x, y = best_move
                    if kind == "shift":
                        _apply_shift(problem, vector, loads, x, y)
                    else:
                        _apply_swap(problem, vector, loads, x, y)
                    moves += 1
                    improved = True
        return Assignment(problem, vector), {"iterations": moves, "passes": passes}


class TabuSearchSolver(Solver):
    """Tabu search over the shift neighbourhood.

    After each move, reverting that device to its previous server is
    tabu for ``tenure`` iterations unless it would beat the best
    solution seen (aspiration).  Runs a fixed ``max_iters`` and returns
    the best feasible assignment encountered.
    """

    name = "tabu"

    def __init__(self, max_iters: int = 500, tenure: int = 15, **kwargs) -> None:
        super().__init__(**kwargs)
        require(max_iters >= 1, "max_iters must be >= 1")
        require(tenure >= 1, "tenure must be >= 1")
        self.max_iters = max_iters
        self.tenure = tenure

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        with self.phase("construct"):
            assignment = feasible_start(problem, rng)
        if not assignment.is_complete:
            return assignment, {"iterations": 0}
        vector = assignment.vector
        loads = assignment.loads()
        n, m = problem.n_devices, problem.n_servers
        cost = float(np.sum(problem.delay[np.arange(n), vector]))
        best_cost = cost
        best_vector = vector.copy()
        tabu: deque[tuple[int, int]] = deque()
        tabu_set: set[tuple[int, int]] = set()
        iterations = 0
        with self.phase("search"):
            for _ in range(self.max_iters):
                iterations += 1
                best_delta = np.inf
                best_move = None
                for device in range(n):
                    for server in range(m):
                        delta = _shift_delta(problem, vector, loads, device, server)
                        if delta is None:
                            continue
                        is_tabu = (device, server) in tabu_set
                        aspires = cost + delta < best_cost - 1e-15
                        if is_tabu and not aspires:
                            continue
                        if delta < best_delta:
                            best_delta = delta
                            best_move = (device, server)
                if best_move is None:
                    break  # every move tabu and non-aspiring: stagnated
                device, server = best_move
                previous = int(vector[device])
                _apply_shift(problem, vector, loads, device, server)
                cost += best_delta
                tabu.append((device, previous))
                tabu_set.add((device, previous))
                while len(tabu) > self.tenure:
                    tabu_set.discard(tabu.popleft())
                if cost < best_cost - 1e-15:
                    best_cost = cost
                    best_vector = vector.copy()
        return Assignment(problem, best_vector), {"iterations": iterations}

"""Crash-safe file writes.

A sweep interrupted mid-write must never leave a truncated JSON that a
resumed run then trusts; every artifact the library persists (result
tables, cache entries, observability exports) goes through
:func:`atomic_write_text`: write to a unique temporary file in the
destination directory, then :func:`os.replace` it into place.  On
POSIX the replace is atomic, so readers observe either the old
complete file or the new complete file — never a partial one.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path


def atomic_write_text(
    path: "str | Path", text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path.

    The temporary file lives in the same directory as ``path`` (a
    cross-device rename would not be atomic) and carries a unique
    suffix so concurrent writers — engine workers sharing one cache
    directory — cannot collide.  The temp file is removed on failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    try:
        tmp.write_text(text, encoding=encoding)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path

"""Plain-text and Markdown table rendering.

The benchmark harness prints paper-style tables to stdout; these
helpers keep the formatting in one place so every experiment's output
looks the same.
"""

from __future__ import annotations

from repro.utils.validation import require


def _render_cell(value, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: list[str],
    rows: list[list],
    float_format: str = ".3f",
    title: "str | None" = None,
) -> str:
    """Render an ASCII table with aligned columns.

    >>> print(format_table(["algo", "delay"], [["greedy", 1.5]]))
    algo    delay
    ------  -----
    greedy  1.500
    """
    require(len(headers) > 0, "table must have at least one column")
    for row in rows:
        require(
            len(row) == len(headers),
            f"row {row!r} has {len(row)} cells, expected {len(headers)}",
        )
    cells = [[_render_cell(v, float_format) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(r[col]) for r in cells)) if cells else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: list[str],
    rows: list[list],
    float_format: str = ".3f",
) -> str:
    """Render a GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    require(len(headers) > 0, "table must have at least one column")
    cells = [[_render_cell(v, float_format) for v in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in cells:
        require(len(row) == len(headers), "row width mismatch")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)

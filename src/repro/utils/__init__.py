"""Shared utilities: seeded randomness, validation, statistics, tables.

These helpers are deliberately dependency-light; everything in
:mod:`repro` builds on them, so they must not import from other repro
subpackages.
"""

from repro.utils.fileio import atomic_write_text
from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.stats import OnlineStats, Summary, mean_confidence_interval, summarize
from repro.utils.tables import format_markdown_table, format_table
from repro.utils.validation import (
    check_in_range,
    check_matrix,
    check_nonnegative,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "atomic_write_text",
    "derive_seed",
    "make_rng",
    "spawn_rngs",
    "OnlineStats",
    "Summary",
    "mean_confidence_interval",
    "summarize",
    "format_markdown_table",
    "format_table",
    "check_in_range",
    "check_matrix",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "require",
]

"""Argument validation helpers.

These raise :class:`repro.errors.ValidationError` with a descriptive
message.  They exist so validation reads as one line at the top of a
function instead of a nest of ``if``/``raise`` blocks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    require(np.isfinite(value), f"{name} must be finite, got {value!r}")
    require(value > 0, f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    require(np.isfinite(value), f"{name} must be finite, got {value!r}")
    require(value >= 0, f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    require(np.isfinite(value), f"{name} must be finite, got {value!r}")
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float = -np.inf,
    high: float = np.inf,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in the given interval."""
    require(np.isfinite(value), f"{name} must be finite, got {value!r}")
    lo_ok = value >= low if low_inclusive else value > low
    hi_ok = value <= high if high_inclusive else value < high
    lo_br = "[" if low_inclusive else "("
    hi_br = "]" if high_inclusive else ")"
    require(
        lo_ok and hi_ok,
        f"{name} must be in {lo_br}{low}, {high}{hi_br}, got {value!r}",
    )
    return value


def check_matrix(
    array: np.ndarray,
    name: str,
    shape: "tuple[int | None, int | None] | None" = None,
    nonnegative: bool = False,
) -> np.ndarray:
    """Validate a 2-D float array and return it as ``float64``.

    ``shape`` entries of ``None`` mean "any size along this axis".
    """
    matrix = np.asarray(array, dtype=np.float64)
    require(matrix.ndim == 2, f"{name} must be 2-D, got shape {matrix.shape}")
    require(np.all(np.isfinite(matrix)), f"{name} must contain only finite values")
    if shape is not None:
        for axis, expected in enumerate(shape):
            if expected is not None:
                require(
                    matrix.shape[axis] == expected,
                    f"{name} must have shape {shape}, got {matrix.shape}",
                )
    if nonnegative:
        require(np.all(matrix >= 0), f"{name} must be non-negative everywhere")
    return matrix

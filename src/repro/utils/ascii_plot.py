"""Terminal line charts for experiment output.

The environment is plotting-library-free, so the figure experiments
render their series as Unicode braille-free, column-per-sample charts
that survive any terminal.  This is presentation only — the data the
charts draw is exactly what the benchmark JSON files carry.
"""

from __future__ import annotations

import math

from repro.utils.validation import require

#: glyph cycle for multiple series
_MARKERS = "ox+*#@%&"


def _scaled(value: float, low: float, high: float, height: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(height - 1, max(0, int(round(fraction * (height - 1)))))


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart with a legend.

    Points are interpolated onto a fixed-width grid; NaN values are
    skipped.  Series order determines marker assignment.
    """
    require(len(series) > 0, "need at least one series")
    require(width >= 8 and height >= 4, "chart must be at least 8x4")
    points = [
        (x, y)
        for values in series.values()
        for x, y in values
        if not (math.isnan(x) or math.isnan(y))
    ]
    require(len(points) > 0, "series contain no plottable points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:  # flat data still renders as a midline
        y_low -= 1.0
        y_high += 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in values:
            if math.isnan(x) or math.isnan(y):
                continue
            col = _scaled(x, x_low, x_high, width)
            row = height - 1 - _scaled(y, y_low, y_high, height)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_low:.4g}".ljust(width - 8) + f"{x_high:.4g}".rjust(8)
    lines.append(" " * (label_width + 2) + x_axis)
    if x_label or y_label:
        lines.append(" " * (label_width + 2) + f"x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def series_from_table(table, x_column: str, y_column: str, label_column: str):
    """Group a :class:`~repro.experiments.harness.ResultTable` into chart series."""
    grouped: dict[str, list[tuple[float, float]]] = {}
    for row in table.rows:
        label = str(row[label_column])
        grouped.setdefault(label, []).append(
            (float(row[x_column]), float(row[y_column]))
        )
    for values in grouped.values():
        values.sort()
    return grouped

"""Deterministic random-number management.

All stochastic components in the library (instance generators,
metaheuristics, RL agents, the discrete-event simulator, workload
processes) take either an integer seed or a ``numpy.random.Generator``.
This module provides the single way those are created, so a top-level
seed reproduces an entire experiment bit-for-bit.

Child seeds are derived by hashing the parent seed together with a
string label (:func:`derive_seed`).  Unlike ``seed + i`` arithmetic,
hashed derivation keeps sibling streams statistically independent and
is stable when components are added or reordered.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.validation import require

RngLike = "int | np.random.Generator | None"


def make_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer
    seed, or ``None`` for OS entropy.  This is the only place in the
    library where generators are constructed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    require(
        seed is None or isinstance(seed, (int, np.integer)),
        f"seed must be an int, Generator, or None, got {type(seed).__name__}",
    )
    return np.random.default_rng(seed)


def derive_seed(seed: int, *labels: "str | int") -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    The derivation is a SHA-256 hash truncated to 63 bits, so it is
    deterministic across processes and Python versions (unlike
    ``hash()``).

    >>> derive_seed(42, "topology") == derive_seed(42, "topology")
    True
    >>> derive_seed(42, "topology") != derive_seed(42, "workload")
    True
    """
    require(isinstance(seed, (int, np.integer)), "seed must be an integer")
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def spawn_rngs(seed: int, *labels: "str | int") -> list[np.random.Generator]:
    """Return one independent generator per label, derived from ``seed``.

    >>> topo_rng, load_rng = spawn_rngs(7, "topology", "workload")
    """
    return [make_rng(derive_seed(seed, label)) for label in labels]

"""Small statistics helpers used by metrics collection and the harness."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dict (for tables and JSON)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def summarize(values) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    An empty sample yields a zero-count summary with NaN statistics so
    that tables render "no data" rather than crashing.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
        minimum=float(np.min(data)),
        maximum=float(np.max(data)),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
    )


def mean_confidence_interval(values, confidence: float = 0.95) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of a normal-approximation CI.

    Uses the t-distribution critical value via scipy when available;
    a sample of size one has zero half-width.
    """
    require(0.0 < confidence < 1.0, "confidence must be in (0, 1)")
    data = np.asarray(list(values), dtype=np.float64)
    require(data.size > 0, "cannot compute a confidence interval of an empty sample")
    mean = float(np.mean(data))
    if data.size == 1:
        return mean, 0.0
    from scipy import stats as scipy_stats

    sem = float(np.std(data, ddof=1)) / math.sqrt(data.size)
    critical = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, df=data.size - 1))
    return mean, critical * sem


class OnlineStats:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Used by the simulator's metric recorders, where samples arrive one
    event at a time and storing every value would be wasteful for long
    runs.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Incorporate one sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def count(self) -> int:
        """Return count."""
        return self._count

    @property
    def mean(self) -> float:
        """Return mean."""
        return self._mean if self._count else float("nan")

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        if self._count < 2:
            return 0.0 if self._count == 1 else float("nan")
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Return std."""
        return math.sqrt(self.variance) if self._count else float("nan")

    @property
    def minimum(self) -> float:
        """Return minimum."""
        return self._min if self._count else float("nan")

    @property
    def maximum(self) -> float:
        """Return maximum."""
        return self._max if self._count else float("nan")

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equal to seeing both streams (Chan's method)."""
        merged = OnlineStats()
        if self._count == 0:
            merged.__dict__.update(other.__dict__)
            return merged
        if other._count == 0:
            merged.__dict__.update(self.__dict__)
            return merged
        count = self._count + other._count
        delta = other._mean - self._mean
        merged._count = count
        merged._mean = self._mean + delta * other._count / count
        merged._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / count
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

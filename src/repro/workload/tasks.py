"""Task shape distributions.

:class:`TaskFactory` stamps out :class:`~repro.sim.task.Task` objects
with lognormal message sizes (telemetry is small, occasional frames
are big) and exponential compute demand around configurable means.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.sim.task import Task
from repro.utils.validation import check_positive


class TaskFactory:
    """Produces simulated tasks with randomized size and compute cost.

    Parameters
    ----------
    mean_size_bits:
        Mean message size on the wire; sizes are lognormal with
        ``size_sigma`` log-space spread.
    mean_compute_units:
        Mean processing demand; exponential.  A server with
        ``service_rate = r`` spends ``units / r`` seconds per task.
    """

    def __init__(
        self,
        mean_size_bits: float = 8.0 * 1200,
        size_sigma: float = 0.5,
        mean_compute_units: float = 1.0,
    ) -> None:
        self.mean_size_bits = check_positive(mean_size_bits, "mean_size_bits")
        self.size_sigma = check_positive(size_sigma, "size_sigma")
        self.mean_compute_units = check_positive(mean_compute_units, "mean_compute_units")
        # lognormal mu such that the distribution mean equals mean_size_bits
        self._mu = math.log(self.mean_size_bits) - 0.5 * self.size_sigma**2
        self._ids = itertools.count()

    def make(
        self,
        device_id: int,
        server_id: int,
        created_at: float,
        rng: np.random.Generator,
        deadline_s: "float | None" = None,
    ) -> Task:
        """One task, timestamps initialized, ids unique per factory."""
        size = float(rng.lognormal(self._mu, self.size_sigma))
        compute = float(rng.exponential(self.mean_compute_units))
        return Task(
            task_id=next(self._ids),
            device_id=device_id,
            server_id=server_id,
            size_bits=max(size, 1.0),
            compute_units=max(compute, 1e-6),
            created_at=created_at,
            deadline_s=deadline_s,
        )

"""Workload substrate: arrivals, task shapes, traces, and mobility.

* :mod:`repro.workload.arrivals` — Poisson, periodic-with-jitter and
  two-state MMPP (bursty) inter-arrival processes;
* :mod:`repro.workload.tasks` — task size / compute / deadline
  distributions behind a single :class:`~repro.workload.tasks.TaskFactory`;
* :mod:`repro.workload.traces` — pre-generated (time, device, task)
  traces with JSON-lines persistence, for replaying the exact same
  workload against different assignments;
* :mod:`repro.workload.mobility` — random-waypoint device motion and
  churn, driving the dynamic reconfiguration experiments.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    MMPPProcess,
    PeriodicProcess,
    PoissonProcess,
)
from repro.workload.mobility import MobilityEpoch, RandomWaypointMobility
from repro.workload.tasks import TaskFactory
from repro.workload.traces import Trace, TraceEntry, generate_trace

__all__ = [
    "ArrivalProcess",
    "MMPPProcess",
    "PeriodicProcess",
    "PoissonProcess",
    "MobilityEpoch",
    "RandomWaypointMobility",
    "TaskFactory",
    "Trace",
    "TraceEntry",
    "generate_trace",
]

"""Device mobility: the driver of the dynamic reconfiguration experiment.

A simplified random-waypoint model evolved in *epochs*: each epoch a
fraction of devices advance toward their waypoints, re-attach to the
now-nearest gateway router, and the device-to-server delay matrix is
recomputed from the rewired topology.  Each
:class:`MobilityEpoch` carries a fresh
:class:`~repro.model.problem.AssignmentProblem` (same devices, demands
and capacities; new delays) — precisely the input stream the
:mod:`repro.cluster` controller consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.model.problem import AssignmentProblem
from repro.topology.delay import DelayModel, TransmissionDelayModel
from repro.topology.generators import ACCESS, LinkProfile
from repro.topology.graph import NodeKind
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class MobilityEpoch:
    """State of the deployment after one mobility step."""

    epoch: int
    problem: AssignmentProblem
    moved_devices: list[int]
    reattached_devices: list[int]


class RandomWaypointMobility:
    """Epoch-based random waypoint motion over a topology-backed problem."""

    def __init__(
        self,
        problem: AssignmentProblem,
        speed: float = 0.08,
        move_fraction: float = 0.4,
        seed: "int | None" = None,
        delay_model: "DelayModel | None" = None,
        access_profile: LinkProfile = ACCESS,
    ) -> None:
        if problem.graph is None or problem.devices is None or problem.servers is None:
            raise ValidationError(
                "mobility requires a topology-backed problem "
                "(build it with topology_instance)"
            )
        self.problem = problem
        self.speed = check_positive(speed, "speed")
        self.move_fraction = check_probability(move_fraction, "move_fraction")
        self._rng = make_rng(seed)
        self._delay_model = delay_model if delay_model is not None else TransmissionDelayModel()
        self._access_profile = access_profile
        self._graph = problem.graph.copy()
        self._routers = self._graph.node_ids(NodeKind.ROUTER)
        self._router_pos = np.array(
            [self._graph.node(r).position for r in self._routers]
        )
        self._waypoints = {
            device.device_id: tuple(self._rng.random(2)) for device in problem.devices
        }

    # ------------------------------------------------------------------
    def _gateway_of(self, node_id: int) -> int:
        """A device's current (unique) gateway router."""
        for neighbor in self._graph.neighbors(node_id):
            if self._graph.node(neighbor).kind == NodeKind.ROUTER:
                return neighbor
        raise ValidationError(f"device node {node_id} has no router gateway")

    def _nearest_router(self, position: tuple[float, float]) -> int:
        deltas = self._router_pos - np.asarray(position)
        return self._routers[int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))]

    def _step_device(self, device_id: int, node_id: int) -> bool:
        """Advance one device toward its waypoint; True if it re-attached."""
        x, y = self._graph.node(node_id).position
        wx, wy = self._waypoints[device_id]
        dist = math.hypot(wx - x, wy - y)
        if dist <= self.speed:
            new_pos = (wx, wy)
            self._waypoints[device_id] = tuple(self._rng.random(2))
        else:
            new_pos = (
                x + self.speed * (wx - x) / dist,
                y + self.speed * (wy - y) / dist,
            )
        self._graph.move_node(node_id, new_pos)
        old_gateway = self._gateway_of(node_id)
        new_gateway = self._nearest_router(new_pos)
        if new_gateway == old_gateway:
            # still refresh the access-link latency for the new distance
            self._graph.remove_link(node_id, old_gateway)
            self._attach(node_id, old_gateway)
            return False
        self._graph.remove_link(node_id, old_gateway)
        self._attach(node_id, new_gateway)
        return True

    def _attach(self, node_id: int, gateway: int) -> None:
        gx, gy = self._graph.node(gateway).position
        nx_, ny_ = self._graph.node(node_id).position
        distance = math.hypot(gx - nx_, gy - ny_)
        self._graph.add_link(
            node_id,
            gateway,
            latency_s=self._access_profile.latency(distance),
            bandwidth_bps=self._access_profile.bandwidth_bps,
            processing_s=self._access_profile.processing_s,
        )

    # ------------------------------------------------------------------
    def step(self, epoch: int) -> MobilityEpoch:
        """Advance one epoch and return the refreshed problem."""
        devices = self.problem.devices
        assert devices is not None and self.problem.servers is not None
        n_moving = max(1, int(round(self.move_fraction * len(devices))))
        movers = self._rng.choice(len(devices), size=n_moving, replace=False)
        moved: list[int] = []
        reattached: list[int] = []
        for index in movers:
            device = devices[int(index)]
            moved.append(device.device_id)
            if self._step_device(device.device_id, device.node_id):
                reattached.append(device.device_id)
        refreshed = AssignmentProblem.from_topology(
            self._graph.copy(),
            devices,
            self.problem.servers,
            delay_model=self._delay_model,
            name=f"{self.problem.name}@epoch{epoch}",
        )
        # demands/capacities must not drift: carry the originals over
        # (covers the heterogeneous-server demand matrix too)
        refreshed.demand = self.problem.demand.copy()
        refreshed.capacity = self.problem.capacity.copy()
        return MobilityEpoch(
            epoch=epoch,
            problem=refreshed,
            moved_devices=moved,
            reattached_devices=reattached,
        )

    def epochs(self, n_epochs: int) -> Iterator[MobilityEpoch]:
        """Generate ``n_epochs`` successive epochs."""
        for epoch in range(1, n_epochs + 1):
            yield self.step(epoch)

"""Inter-arrival processes for IoT traffic sources.

All processes expose one method — ``next_interval(rng)`` — returning
the gap to the next arrival in seconds.  Keeping the RNG external means
one seeded generator per device reproduces its entire arrival stream.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive, check_probability


class ArrivalProcess(abc.ABC):
    """A stream of inter-arrival gaps."""

    @abc.abstractmethod
    def next_interval(self, rng: np.random.Generator) -> float:
        """Seconds until the next arrival."""

    @property
    @abc.abstractmethod
    def mean_rate_hz(self) -> float:
        """Long-run arrival rate (used to size experiment sweeps)."""


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at ``rate_hz`` (exponential gaps)."""

    def __init__(self, rate_hz: float) -> None:
        self.rate_hz = check_positive(rate_hz, "rate_hz")

    def next_interval(self, rng: np.random.Generator) -> float:
        """Return next interval."""
        return float(rng.exponential(1.0 / self.rate_hz))

    @property
    def mean_rate_hz(self) -> float:
        """Return mean rate hz."""
        return self.rate_hz


class PeriodicProcess(ArrivalProcess):
    """Fixed-period sensor readings with optional uniform jitter.

    The gap is ``period * (1 ± jitter)``; ``jitter = 0`` is a strict
    clock, typical of polled industrial sensors.
    """

    def __init__(self, period_s: float, jitter: float = 0.0) -> None:
        self.period_s = check_positive(period_s, "period_s")
        self.jitter = check_probability(jitter, "jitter")

    def next_interval(self, rng: np.random.Generator) -> float:
        """Return next interval."""
        if self.jitter == 0.0:
            return self.period_s
        return float(self.period_s * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)))

    @property
    def mean_rate_hz(self) -> float:
        """Return mean rate hz."""
        return 1.0 / self.period_s


class MMPPProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The source alternates between a *calm* state with ``base_rate_hz``
    and a *burst* state with ``burst_rate_hz``; state sojourns are
    exponential with the given mean durations.  Models event-driven
    devices (cameras, anomaly detectors) whose load arrives in spikes.
    """

    def __init__(
        self,
        base_rate_hz: float,
        burst_rate_hz: float,
        mean_calm_s: float = 10.0,
        mean_burst_s: float = 2.0,
    ) -> None:
        self.base_rate_hz = check_positive(base_rate_hz, "base_rate_hz")
        self.burst_rate_hz = check_positive(burst_rate_hz, "burst_rate_hz")
        self.mean_calm_s = check_positive(mean_calm_s, "mean_calm_s")
        self.mean_burst_s = check_positive(mean_burst_s, "mean_burst_s")
        self._in_burst = False
        self._state_time_left = 0.0

    def next_interval(self, rng: np.random.Generator) -> float:
        # advance through state sojourns until an arrival lands inside one
        """Return next interval."""
        elapsed = 0.0
        while True:
            if self._state_time_left <= 0.0:
                self._in_burst = not self._in_burst
                mean = self.mean_burst_s if self._in_burst else self.mean_calm_s
                self._state_time_left = float(rng.exponential(mean))
            rate = self.burst_rate_hz if self._in_burst else self.base_rate_hz
            gap = float(rng.exponential(1.0 / rate))
            if gap <= self._state_time_left:
                self._state_time_left -= gap
                return elapsed + gap
            elapsed += self._state_time_left
            self._state_time_left = 0.0

    @property
    def mean_rate_hz(self) -> float:
        """Return mean rate hz."""
        calm_weight = self.mean_calm_s / (self.mean_calm_s + self.mean_burst_s)
        return calm_weight * self.base_rate_hz + (1.0 - calm_weight) * self.burst_rate_hz

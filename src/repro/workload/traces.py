"""Synthetic workload traces with persistence.

A trace is the materialized arrival stream of a whole device fleet —
``(time, device, size, compute)`` tuples in time order.  Pre-generating
a trace lets two assignments be compared against *bit-identical*
workloads (paired comparison, lower variance than independent seeded
runs), and the JSON-lines format makes traces shareable artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.errors import SerializationError
from repro.model.entities import IoTDevice
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_positive, require
from repro.workload.arrivals import ArrivalProcess, PoissonProcess
from repro.workload.tasks import TaskFactory


@dataclass(frozen=True)
class TraceEntry:
    """One arrival in a trace."""

    time_s: float
    device_id: int
    size_bits: float
    compute_units: float


@dataclass
class Trace:
    """A time-ordered list of arrivals plus the horizon it covers."""

    horizon_s: float
    entries: list[TraceEntry]

    @property
    def n_entries(self) -> int:
        """Return n entries."""
        return len(self.entries)

    def rate_of(self, device_id: int) -> float:
        """Empirical arrival rate of one device over the horizon."""
        count = sum(1 for e in self.entries if e.device_id == device_id)
        return count / self.horizon_s

    # ------------------------------------------------------------------
    def save(self, path: "str | FilePath") -> None:
        """Write JSON-lines: a header line, then one line per entry."""
        path = FilePath(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"horizon_s": self.horizon_s}) + "\n")
            for entry in self.entries:
                handle.write(
                    json.dumps(
                        {
                            "t": entry.time_s,
                            "d": entry.device_id,
                            "b": entry.size_bits,
                            "c": entry.compute_units,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: "str | FilePath") -> "Trace":
        """Inverse of :meth:`save`."""
        path = FilePath(path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                entries = [
                    TraceEntry(
                        time_s=float(record["t"]),
                        device_id=int(record["d"]),
                        size_bits=float(record["b"]),
                        compute_units=float(record["c"]),
                    )
                    for record in map(json.loads, handle)
                ]
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise SerializationError(f"invalid trace file {path}: {exc}") from exc
        return cls(horizon_s=float(header["horizon_s"]), entries=entries)


def generate_trace(
    devices: list[IoTDevice],
    horizon_s: float,
    seed: int = 0,
    arrivals: "dict[int, ArrivalProcess] | None" = None,
    task_factory: "TaskFactory | None" = None,
) -> Trace:
    """Materialize the fleet's arrivals over ``horizon_s`` seconds.

    By default each device is a Poisson source at its ``rate_hz``;
    pass ``arrivals`` to override per device.  Entries come back
    time-sorted.
    """
    check_positive(horizon_s, "horizon_s")
    require(len(devices) > 0, "devices must be non-empty")
    factory = task_factory if task_factory is not None else TaskFactory()
    entries: list[TraceEntry] = []
    for device in devices:
        process = (arrivals or {}).get(device.device_id) or PoissonProcess(device.rate_hz)
        rng = make_rng(derive_seed(seed, "trace", device.device_id))
        clock = 0.0
        while True:
            clock += process.next_interval(rng)
            if clock > horizon_s:
                break
            task = factory.make(device.device_id, server_id=-1, created_at=clock, rng=rng)
            entries.append(
                TraceEntry(
                    time_s=clock,
                    device_id=device.device_id,
                    size_bits=task.size_bits,
                    compute_units=task.compute_units,
                )
            )
    entries.sort(key=lambda e: e.time_s)
    return Trace(horizon_s=horizon_s, entries=entries)

"""Per-shard latency tracking: hedge timing and gray-outlier ejection.

The circuit breaker answers "is this shard *dead*"; this tracker
answers "is this shard *slow*" — the gray half of the failure model.
Each shard keeps a bounded sliding window of observed request
latencies; from it the router derives:

* **hedge delay** — how long to wait on a primary before racing a
  second request to the clockwise-failover shard: the shard's own
  p95 stretched by a multiplier, floored so a healthy fast shard is
  never hedged on scheduler noise;
* **outlier ejection** — a shard whose p95 exceeds a multiple of the
  median p95 of its peers is *soft-ejected*: moved to the back of the
  preference order for a cooldown, so traffic prefers healthy shards
  while the breaker (which only sees hard failures) stays closed.

Ejection is deliberately advisory — the ejected shard still serves as
the last resort, so a cluster that is uniformly slow keeps working.
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.validation import require


class LatencyTracker:
    """Sliding-window latency stats per shard, with soft ejection."""

    def __init__(
        self,
        window: int = 64,
        min_samples: int = 8,
        default_hedge_delay_s: float = 0.05,
        hedge_multiplier: float = 1.5,
        min_hedge_delay_s: float = 0.01,
        ejection_multiplier: float = 3.0,
        ejection_cooldown_s: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        require(window >= 1, "window must be >= 1")
        require(min_samples >= 1, "min_samples must be >= 1")
        require(hedge_multiplier > 0, "hedge_multiplier must be > 0")
        require(ejection_multiplier > 1, "ejection_multiplier must be > 1")
        require(ejection_cooldown_s > 0, "ejection_cooldown_s must be > 0")
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.default_hedge_delay_s = float(default_hedge_delay_s)
        self.hedge_multiplier = float(hedge_multiplier)
        self.min_hedge_delay_s = float(min_hedge_delay_s)
        self.ejection_multiplier = float(ejection_multiplier)
        self.ejection_cooldown_s = float(ejection_cooldown_s)
        self._clock = clock
        self._samples: "dict[str, deque]" = {}
        self._ejected_until: "dict[str, float]" = {}
        self.ejections_total = 0

    def observe(self, shard: str, latency_s: float) -> None:
        """Record one completed request's latency."""
        window = self._samples.get(shard)
        if window is None:
            window = self._samples[shard] = deque(maxlen=self.window)
        window.append(float(latency_s))

    def p95(self, shard: str) -> "float | None":
        """Window p95 for ``shard``; None below ``min_samples``."""
        window = self._samples.get(shard)
        if window is None or len(window) < self.min_samples:
            return None
        ordered = sorted(window)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def hedge_delay_s(self, shard: str) -> float:
        """How long to wait on ``shard`` before firing a hedge."""
        p95 = self.p95(shard)
        if p95 is None:
            return self.default_hedge_delay_s
        return max(self.min_hedge_delay_s, p95 * self.hedge_multiplier)

    # ------------------------------------------------------------------
    # gray-outlier ejection
    # ------------------------------------------------------------------
    def is_ejected(self, shard: str) -> bool:
        """Whether ``shard`` is currently soft-ejected (updates expiry)."""
        until = self._ejected_until.get(shard)
        if until is None:
            return False
        if self._clock() >= until:
            del self._ejected_until[shard]
            return False
        return True

    def refresh_ejections(self) -> "set[str]":
        """Re-derive the ejected set from the current windows.

        A shard is ejected when its p95 exceeds
        ``ejection_multiplier ×`` the median p95 of the *other* shards
        (at least two peers must have enough samples — a lone shard
        cannot be an outlier).  Returns the currently ejected names.
        """
        p95s = {
            name: p95
            for name in self._samples
            if (p95 := self.p95(name)) is not None
        }
        now = self._clock()
        for name, p95 in p95s.items():
            peers = sorted(v for k, v in p95s.items() if k != name)
            if len(peers) < 2:
                continue
            median = peers[len(peers) // 2]
            if median > 0 and p95 > self.ejection_multiplier * median:
                if not self.is_ejected(name):
                    self.ejections_total += 1
                    obs_runtime.metrics().counter(
                        obs_names.SHARD_EJECTIONS, {"shard": name}
                    ).inc()
                self._ejected_until[name] = now + self.ejection_cooldown_s
        # is_ejected() deletes expired entries, so iterate a snapshot
        return {name for name in list(self._ejected_until)
                if self.is_ejected(name)}

    def demote_ejected(self, preference: "list[str]") -> "list[str]":
        """Stable-reorder: healthy shards first, ejected ones last."""
        if not self._ejected_until:
            return preference
        healthy = [n for n in preference if not self.is_ejected(n)]
        ejected = [n for n in preference if self.is_ejected(n)]
        return healthy + ejected

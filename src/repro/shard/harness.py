"""Multi-process shard harness: spawn, load, kill, measure.

Everything the sharded demos need to run a real cluster on one box:

* :class:`ShardProcess` — supervises one ``repro shard serve``
  subprocess: spawns it, parses the ``... on host:port`` line it
  prints, and can SIGKILL (a crash), restart (a repair, on the same
  port so backends reconnect), or SIGTERM it (clean shutdown);
* :class:`RecordingClient` — wraps any protocol client and timestamps
  every response, producing the windowed goodput timeline that the
  failover experiments are judged on;
* :func:`run_sharded_loadtest` — the whole experiment in one call:
  build the plan, spawn one process per shard, put a
  :class:`~repro.shard.router.ShardRouter` in front, drive the
  standard load generator through it while a
  :class:`~repro.faults.scenario.FaultScenario` kills and repairs
  shard processes at its scheduled times (``server_crash`` /
  ``server_repair`` events, ``server`` = shard index, ``at_s`` =
  seconds of wall clock after the load starts).

The harness recomputes the :class:`~repro.shard.partition.ShardPlan`
from the same instance parameters it passes each subprocess, and the
plan is deterministic, so router and shards agree on the cut without
shipping matrices around.
"""

from __future__ import annotations

import asyncio
import re
import signal
import sys
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ShardError
from repro.obs import runtime as obs_runtime
from repro.faults.scenario import FaultScenario
from repro.model.instances import topology_instance
from repro.netem import NetemBackend, NetemEngine, NetemScript
from repro.serve.loadtest import LoadTestConfig, LoadTestReport, run_loadtest
from repro.shard.backend import TCPBackend
from repro.shard.partition import ShardPlan, build_plan
from repro.shard.ring import DEFAULT_VNODES
from repro.shard.router import RouterConfig, ShardRouter
from repro.utils.validation import require

_PORT_LINE = re.compile(r" on ([\d.]+):(\d+)\s*$")
_RECOVERY_LINE = re.compile(
    r"recovered (\d+) wal records? in ([\d.]+) ms"
)

#: bound on reaping a signalled child — a SIGKILLed process that does
#: not exit within this is a harness bug, not something to hang on
_REAP_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class HarnessConfig:
    """One sharded-cluster run: instance, cut, and process knobs."""

    n_shards: int = 3
    family: str = "edge_hierarchy"
    routers: int = 40
    devices: int = 120
    servers: int = 8
    tightness: float = 0.7
    seed: int = 0
    vnodes: int = DEFAULT_VNODES
    plan_seed: int = 0
    host: str = "127.0.0.1"
    batch_wait_ms: float = 2.0
    rebalance_interval_s: "float | None" = None
    startup_timeout_s: float = 30.0
    #: directory receiving one WAL subdirectory per shard (None = no WAL);
    #: a restarted shard replays its WAL and rejoins with its pre-crash state
    wal_root: "str | None" = None
    #: absolute per-request budget stamped by the router (None = unbounded)
    default_deadline_ms: "float | None" = None
    #: race hedged assigns against slow shards (see docs/robustness.md)
    hedge: bool = True
    #: directory receiving per-process span files (None = tracing off);
    #: each shard subprocess and the harness itself export spans there
    trace_dir: "str | None" = None
    #: head-based sampling rate forwarded to every process
    trace_sample: float = 1.0

    def __post_init__(self) -> None:
        require(self.n_shards >= 1, "n_shards must be >= 1")
        require(self.startup_timeout_s > 0, "startup_timeout_s must be > 0")

    def instance_argv(self) -> "list[str]":
        """The shared instance flags every shard process receives."""
        return [
            "--family", self.family,
            "--routers", str(self.routers),
            "--devices", str(self.devices),
            "--servers", str(self.servers),
            "--tightness", str(self.tightness),
            "--seed", str(self.seed),
        ]

    def problem(self):
        """The instance, built locally (identical in every process)."""
        return topology_instance(
            family=self.family,
            n_routers=self.routers,
            n_devices=self.devices,
            n_servers=self.servers,
            tightness=self.tightness,
            seed=self.seed,
        )

    def plan(self, problem=None) -> ShardPlan:
        """The deterministic shard plan for this configuration."""
        return build_plan(
            problem if problem is not None else self.problem(),
            self.n_shards,
            vnodes=self.vnodes,
            seed=self.plan_seed,
        )


class ShardProcess:
    """One ``repro shard serve`` subprocess under supervision."""

    def __init__(
        self,
        name: str,
        config: HarnessConfig,
    ) -> None:
        self.name = name
        self.config = config
        self.port = 0  # assigned on first start, pinned on restart
        self.log: "list[str]" = []
        self.recovered_records = 0  # WAL records replayed on last start
        self.recovery_ms = 0.0
        self._proc: "asyncio.subprocess.Process | None" = None
        self._drain_task: "asyncio.Task | None" = None

    @property
    def alive(self) -> bool:
        """Whether the subprocess is currently running."""
        return self._proc is not None and self._proc.returncode is None

    def _argv(self) -> "list[str]":
        argv = [
            sys.executable, "-m", "repro", "shard", "serve",
            "--shard", self.name,
            "--shards", str(self.config.n_shards),
            "--vnodes", str(self.config.vnodes),
            "--plan-seed", str(self.config.plan_seed),
            "--host", self.config.host,
            "--port", str(self.port),
            "--batch-wait-ms", str(self.config.batch_wait_ms),
            *self.config.instance_argv(),
        ]
        if self.config.wal_root is not None:
            argv += ["--wal-dir",
                     str(Path(self.config.wal_root) / self.name)]
        if self.config.trace_dir is not None:
            argv += ["--trace-dir", str(self.config.trace_dir),
                     "--trace-sample", str(self.config.trace_sample)]
        return argv

    async def start(self) -> int:
        """Spawn and wait for the listening line; returns the port."""
        require(not self.alive, f"shard {self.name!r} is already running")
        self._proc = await asyncio.create_subprocess_exec(
            *self._argv(),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
        )
        deadline = time.monotonic() + self.config.startup_timeout_s
        while True:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise ShardError(
                    f"shard {self.name!r} did not report a port within "
                    f"{self.config.startup_timeout_s}s; log: {self.log[-5:]}"
                )
            try:
                raw = await asyncio.wait_for(
                    self._proc.stdout.readline(), timeout=timeout
                )
            except asyncio.TimeoutError:
                continue
            if not raw:
                raise ShardError(
                    f"shard {self.name!r} exited during startup "
                    f"(rc={self._proc.returncode}); log: {self.log[-5:]}"
                )
            line = raw.decode("utf-8", errors="replace").rstrip()
            self.log.append(line)
            recovery = _RECOVERY_LINE.search(line)
            if recovery:
                # the serve command replays its WAL before announcing the
                # port, so this line always precedes readiness
                self.recovered_records = int(recovery.group(1))
                self.recovery_ms = float(recovery.group(2))
            match = _PORT_LINE.search(line)
            if match:
                self.port = int(match.group(2))
                break
        self._drain_task = asyncio.create_task(self._drain())
        return self.port

    async def _drain(self) -> None:
        # keep the pipe flowing so the child never blocks on stdout
        assert self._proc is not None
        while raw := await self._proc.stdout.readline():
            self.log.append(raw.decode("utf-8", errors="replace").rstrip())

    def kill(self) -> None:
        """SIGKILL — the crash the failover experiments inject."""
        if self.alive:
            try:
                self._proc.send_signal(signal.SIGKILL)
            except ProcessLookupError:
                pass  # already gone

    async def restart(self) -> int:
        """Bring a killed shard back on its original port."""
        await self._reap()
        return await self.start()

    async def terminate(self, timeout_s: float = 10.0) -> "int | None":
        """SIGTERM, wait; escalate to SIGKILL on timeout.  Returns rc."""
        if self._proc is None:
            return None
        if self.alive:
            try:
                self._proc.send_signal(signal.SIGTERM)
                await asyncio.wait_for(self._proc.wait(), timeout=timeout_s)
            except asyncio.TimeoutError:
                self._proc.send_signal(signal.SIGKILL)
            except ProcessLookupError:
                pass  # raced with its own death
        rc = await self._reap()
        return rc

    async def _reap(self) -> "int | None":
        if self._proc is None:
            return None
        try:
            rc = await asyncio.wait_for(
                self._proc.wait(), timeout=_REAP_TIMEOUT_S
            )
        except asyncio.TimeoutError:
            # no unbounded await on a child that ignores its signal:
            # escalate to SIGKILL, which cannot be ignored
            try:
                self._proc.send_signal(signal.SIGKILL)
            except ProcessLookupError:
                pass
            rc = await self._proc.wait()
        if self._drain_task is not None:
            try:
                await asyncio.wait_for(self._drain_task, timeout=5.0)
            except asyncio.TimeoutError:
                self._drain_task.cancel()
                try:
                    await self._drain_task
                except asyncio.CancelledError:
                    pass
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        self._proc = None
        return rc


class RecordingClient:
    """Timestamp every response of an inner client (goodput timelines)."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.t0 = time.perf_counter()
        self.records: "list[tuple[float, str, str]]" = []  # (t, status, op)

    def send(self, request):
        """Forward and record the response's completion time and status."""
        future = self.inner.send(request)

        def _done(fut, op=request.op):
            if fut.cancelled() or fut.exception() is not None:
                return
            response = fut.result()
            self.records.append(
                (time.perf_counter() - self.t0, response.status, op)
            )

        future.add_done_callback(_done)
        return future

    async def flush(self) -> None:
        """Return flush."""
        await self.inner.flush()

    async def request(self, request):
        """Submit one request and await its (recorded) response."""
        future = self.send(request)
        await self.flush()
        return await future

    async def close(self) -> None:
        """Return close."""
        await self.inner.close()

    # ------------------------------------------------------------------
    def timeline(self, window_s: float = 0.5) -> "list[dict]":
        """Per-window goodput: ``[{t0, ok, total, goodput}, ...]``.

        ``stats`` responses are bookkeeping, not offered load, and are
        excluded.
        """
        require(window_s > 0, "window_s must be > 0")
        buckets: "dict[int, list[int]]" = {}
        for t, status, op in self.records:
            if op == "stats":
                continue
            bucket = buckets.setdefault(int(t / window_s), [0, 0])
            bucket[1] += 1
            if status == "ok":
                bucket[0] += 1
        return [
            {
                "t0": round(index * window_s, 6),
                "ok": ok,
                "total": total,
                "goodput": round(ok / total, 6) if total else 1.0,
            }
            for index, (ok, total) in sorted(buckets.items())
        ]

    def goodput_over(self, t_start: float, t_end: float) -> float:
        """ok / answered over ``[t_start, t_end)`` (1.0 when silent)."""
        ok = total = 0
        for t, status, op in self.records:
            if op == "stats" or not t_start <= t < t_end:
                continue
            total += 1
            ok += status == "ok"
        return ok / total if total else 1.0


@dataclass
class ShardLoadTestReport:
    """One sharded run: the load report plus failover evidence."""

    report: LoadTestReport
    plan_shards: "list[str]"
    ports: "dict[str, int]"
    timeline: "list[dict]"
    fault_log: "list[dict]" = field(default_factory=list)
    shutdown_codes: "dict[str, int | None]" = field(default_factory=dict)
    netem_stats: "dict | None" = None  # chaos actually injected on the wire
    wal_recovery: "dict[str, dict]" = field(default_factory=dict)
    router_stats: "dict | None" = None  # hedges/timeouts/ghost releases
    trace_dir: "str | None" = None  # where per-process span files landed

    def to_dict(self) -> dict:
        """Plain-JSON form."""
        return {
            "report": self.report.to_dict(),
            "plan_shards": self.plan_shards,
            "ports": self.ports,
            "timeline": self.timeline,
            "fault_log": self.fault_log,
            "shutdown_codes": self.shutdown_codes,
            "netem_stats": self.netem_stats,
            "wal_recovery": self.wal_recovery,
            "router_stats": self.router_stats,
            "trace_dir": self.trace_dir,
        }


async def drive_faults(
    scenario: FaultScenario,
    procs: "list[ShardProcess]",
    t0: float,
    fault_log: "list[dict]",
    stop: "asyncio.Event | None" = None,
) -> None:
    """Replay ``scenario`` against shard processes on the wall clock.

    ``server_crash`` SIGKILLs the shard at index ``server`` (mod the
    shard count); ``server_repair`` restarts it on its original port.
    Other event kinds are ignored — they describe simulator faults.
    Setting ``stop`` abandons events that have not fired yet while
    letting an in-flight restart finish (so no half-started process is
    left behind).
    """
    for event in scenario.events:
        if event.kind not in ("server_crash", "server_repair"):
            continue
        delay = t0 + event.at_s - time.perf_counter()
        if stop is not None and stop.is_set():
            return
        if delay > 0:
            if stop is not None:
                waiter = asyncio.create_task(stop.wait())
                done, _ = await asyncio.wait({waiter}, timeout=delay)
                waiter.cancel()
                if done:
                    return
            else:
                await asyncio.sleep(delay)
        proc = procs[int(event.server) % len(procs)]
        if event.kind == "server_crash":
            proc.kill()
            fault_log.append(
                {"t": round(time.perf_counter() - t0, 6),
                 "event": "kill", "shard": proc.name}
            )
        else:
            try:
                await proc.restart()
                fault_log.append(
                    {"t": round(time.perf_counter() - t0, 6),
                     "event": "restart", "shard": proc.name}
                )
            except ShardError as exc:
                fault_log.append(
                    {"t": round(time.perf_counter() - t0, 6),
                     "event": "restart_failed", "shard": proc.name,
                     "detail": str(exc)}
                )


async def run_sharded_loadtest(
    config: HarnessConfig,
    load: LoadTestConfig,
    scenario: "FaultScenario | None" = None,
    window_s: float = 0.5,
    netem: "NetemScript | None" = None,
) -> ShardLoadTestReport:
    """Spawn the cluster, drive it, optionally break it, measure it.

    ``netem`` wraps every router→shard backend in a
    :class:`~repro.netem.NetemBackend` sharing one seeded engine, so
    the same script injects identical on-wire chaos run over run.
    """
    problem = config.problem()
    plan = config.plan(problem)
    procs = [ShardProcess(spec.name, config) for spec in plan.shards]
    fault_log: "list[dict]" = []
    engine: "NetemEngine | None" = None
    # the harness process hosts router + client spans; shard subprocesses
    # export their own files into the same directory (see _argv)
    tracing = ExitStack()
    if config.trace_dir is not None:
        tracing.enter_context(obs_runtime.traced(
            config.trace_dir, "harness",
            sample=config.trace_sample, seed=config.seed,
        ))
    try:
        await asyncio.gather(*(proc.start() for proc in procs))
        backends: "dict[str, object]" = {
            proc.name: TCPBackend(proc.name, config.host, proc.port)
            for proc in procs
        }
        if netem is not None:
            engine = NetemEngine(netem)
            backends = {
                name: NetemBackend(backend, engine)
                for name, backend in backends.items()
            }
        router = ShardRouter(
            plan,
            backends,
            RouterConfig(
                rebalance_interval_s=config.rebalance_interval_s,
                default_deadline_ms=config.default_deadline_ms,
                hedge=config.hedge,
            ),
        )
        await router.start()
        client = RecordingClient(router)
        fault_task = None
        stop_faults = asyncio.Event()
        if scenario is not None:
            fault_task = asyncio.create_task(
                drive_faults(scenario, procs, client.t0, fault_log,
                             stop=stop_faults)
            )
        try:
            report = await run_loadtest(
                client, problem.n_devices, load, collect_stats=True
            )
        finally:
            if fault_task is not None:
                # abandon unfired events; let an in-flight restart land
                stop_faults.set()
                try:
                    await asyncio.wait_for(
                        fault_task, timeout=config.startup_timeout_s
                    )
                except asyncio.TimeoutError:
                    fault_task.cancel()
                    try:
                        await fault_task
                    except asyncio.CancelledError:
                        pass
            router_stats = {
                "spillovers_total": router.spillovers_total,
                "unroutable_total": router.unroutable_total,
                "hedges_total": router.hedges_total,
                "hedge_wins_total": router.hedge_wins_total,
                "timeouts_total": router.timeouts_total,
                "ghost_releases_total": router.ghost_releases_total,
                "ejections_total": router.latency.ejections_total,
            }
            await router.stop()
        codes = {}
        for proc in procs:
            codes[proc.name] = await proc.terminate()
        return ShardLoadTestReport(
            report=report,
            plan_shards=[spec.name for spec in plan.shards],
            ports={proc.name: proc.port for proc in procs},
            timeline=client.timeline(window_s),
            fault_log=fault_log,
            shutdown_codes=codes,
            netem_stats=engine.stats() if engine is not None else None,
            wal_recovery={
                proc.name: {
                    "records": proc.recovered_records,
                    "ms": proc.recovery_ms,
                }
                for proc in procs
            } if config.wal_root is not None else {},
            router_stats=router_stats,
            trace_dir=config.trace_dir,
        )
    finally:
        tracing.close()
        for proc in procs:
            if proc.alive:
                proc.kill()
                await proc._reap()

"""Topology-sharded serving tier.

The single-process assignment service (:mod:`repro.serve`) is bounded
by one event loop and one GIL.  This package scales it *out* along the
structure the topology already has: hierarchical families
(edge hierarchy, fat-tree) are forests of region subtrees, and devices
overwhelmingly talk to servers inside their own subtree — so the
cluster splits into shared-nothing **shards**, one service per region
group, with a thin router in front.

* :mod:`repro.shard.ring` — seeded consistent-hash ring mapping region
  ids to shards (stable under join/leave, deterministic across
  processes);
* :mod:`repro.shard.partition` — :class:`ShardPlan`: region
  extraction, server grouping, sub-problem slicing, JSON round-trip;
* :mod:`repro.shard.backend` — in-process and TCP shard backends with
  circuit breakers and reconnect;
* :mod:`repro.shard.router` — :class:`ShardRouter`: protocol-identical
  front end with failover spillover and the cross-shard rebalance
  loop;
* :mod:`repro.shard.harness` — multi-process supervisor used by the
  CLI, the fault-injection demo, and the G4 benchmark.
"""

from repro.shard.backend import (
    CircuitBreaker,
    InProcessBackend,
    TCPBackend,
)
from repro.shard.harness import (
    HarnessConfig,
    RecordingClient,
    ShardLoadTestReport,
    ShardProcess,
    run_sharded_loadtest,
)
from repro.shard.partition import (
    NO_REGION,
    ShardPlan,
    ShardSpec,
    build_plan,
    extract_regions,
    shard_name,
)
from repro.shard.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.shard.router import RouterConfig, ShardRouter

__all__ = [
    "CircuitBreaker",
    "InProcessBackend",
    "TCPBackend",
    "HarnessConfig",
    "RecordingClient",
    "ShardLoadTestReport",
    "ShardProcess",
    "run_sharded_loadtest",
    "NO_REGION",
    "ShardPlan",
    "ShardSpec",
    "build_plan",
    "extract_regions",
    "shard_name",
    "DEFAULT_VNODES",
    "ConsistentHashRing",
    "RouterConfig",
    "ShardRouter",
]

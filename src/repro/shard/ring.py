"""Consistent-hash ring mapping region ids to shards.

The router must send every request for a device to the shard that owns
the device's topology region — and keep doing so across router
restarts, across processes, and across shard failures.  A consistent
hash ring gives all three:

* **deterministic** — positions are seeded sha256 digests, so every
  router built with the same ``(shards, vnodes, seed)`` produces the
  same ring (Python's built-in ``hash`` is salted per process and
  cannot be used here);
* **stable** — adding or removing one shard moves only the keys that
  hashed into the arcs it owned, roughly ``1/n_shards`` of them, which
  is what bounds the blast radius of a shard join/leave (the property
  tests pin this);
* **failover-ready** — :meth:`preference` walks the ring clockwise
  from a key's position, yielding each shard exactly once; the first
  entry is the owner and the rest are the spillover order the router
  uses when the owner's circuit is open.

Virtual nodes smooth the arc-length distribution: each shard is hashed
onto the ring ``vnodes`` times, so the largest shard's share of key
space concentrates toward ``1/n_shards`` as ``vnodes`` grows.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.utils.validation import require

#: default virtual nodes per shard (arc-length smoothing)
DEFAULT_VNODES = 64


def _digest(seed: int, payload: str) -> int:
    """Stable 64-bit ring position for ``payload`` under ``seed``."""
    raw = hashlib.sha256(f"{seed}:{payload}".encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "big")


class ConsistentHashRing:
    """Seeded consistent-hash ring over string shard names."""

    def __init__(
        self,
        shards: "list[str]",
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ) -> None:
        require(len(shards) >= 1, "ring needs at least one shard")
        require(len(set(shards)) == len(shards), "shard names must be unique")
        require(vnodes >= 1, f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        self._shards: "list[str]" = sorted(shards)
        self._positions: "list[int]" = []
        self._owners: "list[str]" = []
        self._rebuild()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def shards(self) -> "list[str]":
        """Current member shards, sorted by name."""
        return list(self._shards)

    def add_shard(self, name: str) -> None:
        """Join ``name``; only keys on its new arcs change owner."""
        require(name not in self._shards, f"shard {name!r} already in ring")
        self._shards = sorted(self._shards + [name])
        self._rebuild()

    def remove_shard(self, name: str) -> None:
        """Leave ``name``; only its former keys change owner."""
        require(name in self._shards, f"shard {name!r} not in ring")
        require(len(self._shards) > 1, "cannot remove the last shard")
        self._shards = [s for s in self._shards if s != name]
        self._rebuild()

    def _rebuild(self) -> None:
        points: "list[tuple[int, str]]" = []
        for shard in self._shards:
            for v in range(self.vnodes):
                # ties broken by name so the ring is order-independent
                points.append((_digest(self.seed, f"{shard}#{v}"), shard))
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [s for _, s in points]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, key: "int | str") -> str:
        """The shard owning ``key`` (first vnode clockwise of its hash)."""
        index = bisect.bisect_right(
            self._positions, _digest(self.seed, f"key:{key}")
        ) % len(self._positions)
        return self._owners[index]

    def preference(self, key: "int | str") -> "list[str]":
        """Failover order for ``key``: owner first, then ring successors.

        Walks clockwise from the key's position and yields each
        distinct shard once — the router tries these in order when a
        shard's circuit breaker is open.
        """
        start = bisect.bisect_right(
            self._positions, _digest(self.seed, f"key:{key}")
        ) % len(self._positions)
        seen: "set[str]" = set()
        order: "list[str]" = []
        for i in range(len(self._owners)):
            owner = self._owners[(start + i) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == len(self._shards):
                    break
        return order

    def ownership(self, keys: "list[int | str]") -> "dict[str, int]":
        """How many of ``keys`` each shard owns (diagnostics / tests)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConsistentHashRing({len(self._shards)} shards, "
            f"vnodes={self.vnodes}, seed={self.seed})"
        )

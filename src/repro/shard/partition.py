"""Partitioning a cluster into topology-region shards.

A :class:`ShardPlan` is the static half of the sharded tier: given an
assignment problem it decides, deterministically,

* which **region** every device and server belongs to — read straight
  off the topology graph when the instance carries region labels
  (hierarchical families annotate subtrees; devices and servers
  inherit their attachment router's label), and otherwise derived as
  *pseudo-regions*: each server is its own region and a device belongs
  to the region of its minimum-delay server, so locality still shapes
  the cut;
* which **shard** every region maps to, by consistent hashing of the
  region id over the shard names (:mod:`repro.shard.ring`) — so region
  → shard is stable under shard join/leave and identical in every
  process that holds the same plan;
* each shard's **sub-problem**: all devices × only that shard's
  servers.  Keeping every device row means any shard can host any
  device — which is exactly what failover spillover and cross-shard
  migration need — while the capacity a shard manages is strictly its
  own (shared-nothing).

Shards that end up owning no servers are eliminated and the ring is
rebuilt without them; consistent hashing guarantees only the removed
shards' regions move.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import SerializationError, ValidationError
from repro.model.problem import AssignmentProblem
from repro.shard.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.utils.validation import require


#: region label for nodes the graph leaves unlabeled.  Distinct from
#: :data:`repro.topology.graph.CORE_REGION` (-1), which is a *real*
#: region (the backbone) — conflating the two would silently merge
#: core-attached capacity with genuinely unlabeled nodes.
NO_REGION = -2


def shard_name(index: int) -> str:
    """Canonical shard name for slot ``index`` (``shard-0``, ...)."""
    return f"shard-{int(index)}"


def extract_regions(
    problem: AssignmentProblem,
) -> "tuple[np.ndarray, np.ndarray]":
    """``(device_regions, server_regions)`` for ``problem``.

    Prefers the topology's own region labels; instances without them
    (matrix-only, flat families) fall back to pseudo-regions where
    server ``j`` is region ``j`` and each device joins its
    minimum-delay server's region.
    """
    graph = problem.graph
    if (
        graph is not None
        and graph.has_regions()
        and problem.devices is not None
        and problem.servers is not None
    ):
        server_regions = np.array(
            [
                NO_REGION if (r := graph.region_of(s.node_id)) is None
                else int(r)
                for s in problem.servers
            ],
            dtype=np.int64,
        )
        device_regions = np.array(
            [
                NO_REGION if (r := graph.region_of(d.node_id)) is None
                else int(r)
                for d in problem.devices
            ],
            dtype=np.int64,
        )
        return device_regions, server_regions
    server_regions = np.arange(problem.n_servers, dtype=np.int64)
    device_regions = np.argmin(problem.delay, axis=1).astype(np.int64)
    return device_regions, server_regions


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the plan."""

    name: str
    regions: "tuple[int, ...]"
    servers: "tuple[int, ...]"  # global server column indices, sorted


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic device/server → shard mapping for one cluster."""

    shards: "tuple[ShardSpec, ...]"
    device_regions: np.ndarray = field(repr=False)
    n_servers: int = 0
    vnodes: int = DEFAULT_VNODES
    seed: int = 0

    def __post_init__(self) -> None:
        ring = ConsistentHashRing(
            [s.name for s in self.shards], vnodes=self.vnodes, seed=self.seed
        )
        object.__setattr__(self, "_ring", ring)
        object.__setattr__(
            self, "_by_name", {s.name: s for s in self.shards}
        )
        region_to_shard: "dict[int, str]" = {}
        for spec in self.shards:
            for region in spec.regions:
                region_to_shard[int(region)] = spec.name
        object.__setattr__(self, "_region_to_shard", region_to_shard)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def ring(self) -> ConsistentHashRing:
        """The ring over shard names (drives failover preference)."""
        return self._ring  # type: ignore[attr-defined]

    @property
    def n_shards(self) -> int:
        """Return n shards."""
        return len(self.shards)

    @property
    def n_devices(self) -> int:
        """Return n devices."""
        return int(self.device_regions.shape[0])

    def shard(self, name: str) -> ShardSpec:
        """The spec named ``name``."""
        spec = self._by_name.get(name)  # type: ignore[attr-defined]
        if spec is None:
            raise ValidationError(f"unknown shard {name!r}")
        return spec

    def shard_of_device(self, device: int) -> str:
        """The shard owning ``device`` (via its region)."""
        require(
            0 <= device < self.n_devices,
            f"device {device} out of range [0, {self.n_devices})",
        )
        region = int(self.device_regions[device])
        owner = self._region_to_shard.get(region)  # type: ignore[attr-defined]
        if owner is None:  # region unseen at plan time: ring decides
            owner = self.ring.lookup(region)
        return owner

    def preference_of_device(self, device: int) -> "list[str]":
        """Failover order for ``device``: owner first, ring successors after."""
        require(
            0 <= device < self.n_devices,
            f"device {device} out of range [0, {self.n_devices})",
        )
        return self.ring.preference(int(self.device_regions[device]))

    def devices_of_shard(self, name: str) -> np.ndarray:
        """Global device indices whose home shard is ``name``."""
        spec = self.shard(name)
        regions = set(int(r) for r in spec.regions)
        mask = np.array(
            [int(r) in regions for r in self.device_regions], dtype=bool
        )
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    # sub-problem slicing
    # ------------------------------------------------------------------
    def subproblem(
        self, problem: AssignmentProblem, name: str
    ) -> AssignmentProblem:
        """``name``'s shared-nothing slice: all devices × its servers.

        Columns are that shard's servers only (its capacity is its
        own); rows are *all* devices so spillover and migration can
        land any device here.  ``failed_servers`` indices are remapped
        to the slice's local columns.
        """
        spec = self.shard(name)
        cols = np.array(spec.servers, dtype=np.int64)
        require(cols.size >= 1, f"shard {name!r} has no servers")
        local_failed = frozenset(
            i for i, j in enumerate(spec.servers)
            if j in problem.failed_servers
        )
        return AssignmentProblem(
            delay=problem.delay[:, cols],
            demand=problem.demand[:, cols],
            capacity=problem.capacity[cols],
            failed_servers=local_failed,
            name=f"{problem.name}|{name}",
        )

    def global_server(self, name: str, local_server: int) -> int:
        """Map a shard-local server column back to the global index."""
        spec = self.shard(name)
        require(
            0 <= local_server < len(spec.servers),
            f"local server {local_server} out of range for {name!r}",
        )
        return int(spec.servers[local_server])

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form (device regions as a flat int list)."""
        return {
            "vnodes": int(self.vnodes),
            "seed": int(self.seed),
            "n_servers": int(self.n_servers),
            "device_regions": [int(r) for r in self.device_regions],
            "shards": [
                {
                    "name": s.name,
                    "regions": [int(r) for r in s.regions],
                    "servers": [int(j) for j in s.servers],
                }
                for s in self.shards
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardPlan":
        """Inverse of :meth:`to_dict`."""
        try:
            shards = tuple(
                ShardSpec(
                    name=str(s["name"]),
                    regions=tuple(int(r) for r in s["regions"]),
                    servers=tuple(int(j) for j in s["servers"]),
                )
                for s in payload["shards"]
            )
            return cls(
                shards=shards,
                device_regions=np.asarray(
                    payload["device_regions"], dtype=np.int64
                ),
                n_servers=int(payload["n_servers"]),
                vnodes=int(payload.get("vnodes", DEFAULT_VNODES)),
                seed=int(payload.get("seed", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad shard plan payload: {exc}") from exc

    def save(self, path: "str | Path") -> None:
        """Write the plan as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()) + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "ShardPlan":
        """Read a plan previously written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid shard plan JSON: {exc}") from exc
        return cls.from_dict(payload)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(
            f"{s.name}:{len(s.servers)}srv" for s in self.shards
        )
        return f"ShardPlan({self.n_devices} devices; {sizes})"


def build_plan(
    problem: AssignmentProblem,
    n_shards: int,
    vnodes: int = DEFAULT_VNODES,
    seed: int = 0,
) -> ShardPlan:
    """Cut ``problem`` into at most ``n_shards`` region shards.

    Regions come from :func:`extract_regions`; each region's shard is
    its consistent-hash owner among ``shard-0 .. shard-{n-1}``.  Shards
    left with no servers are dropped from the ring and their regions
    re-looked-up (only those regions move), so every surviving shard
    can actually host devices.
    """
    require(n_shards >= 1, f"n_shards must be >= 1, got {n_shards}")
    device_regions, server_regions = extract_regions(problem)
    names = [shard_name(i) for i in range(n_shards)]
    ring = ConsistentHashRing(names, vnodes=vnodes, seed=seed)
    regions = sorted(set(int(r) for r in server_regions))
    while True:
        owner = {r: ring.lookup(r) for r in regions}
        servers_by_shard: "dict[str, list[int]]" = {n: [] for n in ring.shards}
        for j, region in enumerate(server_regions):
            servers_by_shard[owner[int(region)]].append(int(j))
        empty = [n for n, js in servers_by_shard.items() if not js]
        if not empty or len(ring) == 1:
            break
        for name in empty:
            ring.remove_shard(name)
    require(
        any(servers_by_shard.values()),
        "no shard received any servers",
    )
    regions_by_shard: "dict[str, list[int]]" = {n: [] for n in ring.shards}
    all_regions = sorted(
        set(int(r) for r in server_regions)
        | set(int(r) for r in device_regions)
    )
    for region in all_regions:
        regions_by_shard[ring.lookup(region)].append(region)
    shards = tuple(
        ShardSpec(
            name=name,
            regions=tuple(regions_by_shard[name]),
            servers=tuple(sorted(servers_by_shard[name])),
        )
        for name in ring.shards
    )
    return ShardPlan(
        shards=shards,
        device_regions=device_regions,
        n_servers=problem.n_servers,
        vnodes=vnodes,
        seed=seed,
    )

"""The shard router: one protocol front end over many shard backends.

:class:`ShardRouter` is deliberately shaped like an
:class:`~repro.serve.service.AssignmentService` — it exposes
``started`` and ``submit_nowait`` — so the existing
:class:`~repro.serve.server.TCPServer` serves it unchanged, and it is
simultaneously shaped like a client (``send``/``flush``/``request``/
``close``) so the existing load generator drives it unchanged.  The
sharded tier is therefore invisible on the wire: same line-JSON
protocol, same semantics, more cores behind it.

Routing
-------
A device's **home shard** is the consistent-hash owner of its topology
region (:class:`~repro.shard.partition.ShardPlan`).  An assign walks
the ring's preference order starting at home: the first shard whose
circuit breaker admits the request and answers ``ok`` wins.  A shard
that is down (transport failure, circuit open) or full (``infeasible``)
spills the device to the next ring successor — this is the failover
path a shard kill exercises.  The router remembers where every device
actually landed, so releases and migrations always reach the shard
that holds the device, wherever it spilled.

Shard sub-problems index servers locally; the router rewrites each
``ok`` assign response's ``server`` back to the global index, so
clients observe one coherent cluster.

Gray failures
-------------
Crashes trip circuit breakers; *slowness* does not — a gray shard
answers every probe yet drags the tail.  Three defenses compose here
(see ``docs/robustness.md``):

* **deadlines** — every request carries an absolute ``deadline_ms``
  (stamped from ``default_deadline_ms`` when the client sent none) and
  no forward awaits past it; an expired budget yields a ``timeout``
  response, never an unbounded hang;
* **hedged requests** — when a primary shard exceeds its own
  p95-derived hedge delay (:class:`~repro.shard.latency.LatencyTracker`),
  the router races a second copy of the assign to the next admitting
  ring successor; first ``ok`` wins, and the loser's eventual landing
  is released fire-and-forget so no ghost capacity accumulates;
* **outlier ejection** — a shard whose latency p95 is a configured
  multiple of its peers' median is demoted to the back of every
  preference walk for a cooldown, complementing the breaker (which
  only sees hard failures) with a latency-aware signal.

The request path claims breaker admission via
:meth:`~repro.shard.backend.CircuitBreaker.acquire` (half-open admits
exactly one probe); planning code keeps the pure
:meth:`~repro.shard.backend.CircuitBreaker.allows` check.

Rebalance
---------
A periodic loop gossips ``stats`` from every shard, then moves one
bounded batch of devices per round: devices stranded off their home
shard are repatriated first (failover debt), then load is shaved from
the most- to the least-utilized shard when the utilization gap exceeds
the configured threshold.  Shaved devices are marked and exempted
from repatriation so the two policies never ping-pong the same
devices between donor and target.  Each batch uses the ``migrate`` op's
epoch compare-and-set — a donor whose state moved since the gossip
snapshot rejects the batch and the round simply retries later, so
migration always yields to foreground traffic.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, replace

from repro.errors import DeadlineExceededError, ShardUnavailableError
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.obs.trace import context_from_wire as trace_context_from_wire
from repro.serve.deadline import deadline_ms_in, expired, remaining_s
from repro.serve.protocol import Request, Response
from repro.shard.latency import LatencyTracker
from repro.shard.partition import ShardPlan
from repro.utils.validation import require

#: how many assigns between latency-outlier ejection refreshes
_EJECTION_REFRESH_EVERY = 16

#: total copies of one release the router may put on a gray edge
_RELEASE_COPIES_MAX = 4

#: same-shard re-sends an assign may add when no fresh candidate admits
_ASSIGN_RESENDS_MAX = 3

#: concurrent copies of one assign the router may keep in flight
_ASSIGN_INFLIGHT_MAX = 4


def _swallow_result(task: "asyncio.Task") -> None:
    """Reap an abandoned duplicate-release task without side effects."""
    if task.cancelled():
        return
    task.exception()


@dataclass(frozen=True)
class RouterConfig:
    """Every router knob in one place (see docs/serve.md)."""

    rebalance_interval_s: "float | None" = None  # None disables the loop
    migration_batch: int = 32
    utilization_gap: float = 0.25
    #: budget stamped on requests that arrive without a deadline
    #: (relative, in ms); ``None`` leaves undated requests unbounded
    default_deadline_ms: "float | None" = None
    #: race a second assign to the ring successor when the primary
    #: exceeds its p95-derived hedge delay
    hedge: bool = True
    #: bound on the gossip stats fan-out per shard
    stats_timeout_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rebalance_interval_s is not None:
            require(self.rebalance_interval_s > 0,
                    "rebalance_interval_s must be > 0")
        require(self.migration_batch >= 1, "migration_batch must be >= 1")
        require(0 < self.utilization_gap <= 1,
                "utilization_gap must be in (0, 1]")
        if self.default_deadline_ms is not None:
            require(self.default_deadline_ms > 0,
                    "default_deadline_ms must be > 0")
        require(self.stats_timeout_s > 0, "stats_timeout_s must be > 0")


class ShardRouter:
    """Consistent-hash front end over per-region shard backends."""

    def __init__(
        self,
        plan: ShardPlan,
        backends: "dict[str, object]",
        config: "RouterConfig | None" = None,
        latency: "LatencyTracker | None" = None,
    ) -> None:
        require(
            set(backends) == {s.name for s in plan.shards},
            "backends must cover exactly the plan's shards",
        )
        self.plan = plan
        self.backends = dict(backends)
        self.config = config or RouterConfig()
        self.latency = latency or LatencyTracker()
        self._locations: "dict[int, str]" = {}  # device -> holding shard
        self._shaved: "set[int]" = set()  # deliberately moved off home
        self._gossip: "dict[str, dict]" = {}    # shard -> last stats seen
        self._trips_seen: "dict[str, int]" = {}  # breaker trips published
        self._rebalance_task: "asyncio.Task | None" = None
        self._cleanup_tasks: "set[asyncio.Task]" = set()
        self._started = False
        self._assign_seq = 0
        self.spillovers_total = 0
        self.unroutable_total = 0
        self.migrated_total = 0
        self.migration_lost_total = 0
        self.hedges_total = 0
        self.hedge_wins_total = 0
        self.timeouts_total = 0
        self.ghost_releases_total = 0

    # ------------------------------------------------------------------
    # lifecycle (service-shaped, so TCPServer can wrap the router)
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the router is accepting requests."""
        return self._started

    async def start(self) -> None:
        """Accept requests; spawn the rebalance loop when configured."""
        require(not self._started, "router is already started")
        self._started = True
        if self.config.rebalance_interval_s is not None:
            self._rebalance_task = asyncio.create_task(
                self._rebalance_loop(), name="shard-rebalance"
            )

    async def stop(self) -> None:
        """Stop the rebalance loop and close every backend."""
        self._started = False
        if self._rebalance_task is not None:
            self._rebalance_task.cancel()
            try:
                await self._rebalance_task
            except asyncio.CancelledError:
                pass
            self._rebalance_task = None
        if self._cleanup_tasks:
            # let in-flight hedge-loser / ghost releases settle so they
            # don't race the backend close below
            await asyncio.gather(
                *tuple(self._cleanup_tasks), return_exceptions=True
            )
        for backend in self.backends.values():
            await backend.close()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit_nowait(self, request: Request) -> "asyncio.Future[Response]":
        """Route one request; the future resolves with the response."""
        require(self._started, "router is not started")
        if (
            request.deadline_ms is None
            and self.config.default_deadline_ms is not None
        ):
            request = replace(
                request,
                deadline_ms=deadline_ms_in(self.config.default_deadline_ms),
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        task = loop.create_task(self._route(request))

        def _finish(t: "asyncio.Task") -> None:
            if future.done():
                return
            exc = t.exception()
            if exc is not None:
                future.set_result(
                    Response(
                        id=request.id, status="error",
                        detail=f"router failure: {exc}",
                    )
                )
            else:
                future.set_result(t.result())

        task.add_done_callback(_finish)
        return future

    # client-shaped aliases so the load generator drives the router
    # exactly like an InProcessClient
    def send(self, request: Request) -> "asyncio.Future[Response]":
        """Alias of :meth:`submit_nowait` (client surface)."""
        return self.submit_nowait(request)

    async def flush(self) -> None:
        """No client-side buffering, nothing to flush."""

    async def request(self, request: Request) -> Response:
        """Submit one request and await its response."""
        return await self.submit_nowait(request)

    async def close(self) -> None:
        """Client-surface alias of :meth:`stop`."""
        if self._started:
            await self.stop()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _forward(self, name: str, request: Request) -> Response:
        """Forward to one backend with a transport-local request id.

        Client ids are only unique per client connection; a TCP
        backend multiplexes every connection (and the router's own
        gossip/migrate traffic) over one pipelined client, so a
        verbatim forward would collide in its in-flight table.  Send
        id 0 — "stamp me" — and restore the caller's id on the way
        back so its pipeline still matches the response.
        """
        outbound = replace(request, id=0) if request.id != 0 else request
        recorder = obs_runtime.spans()
        with recorder.start_span(
            obs_names.XSPAN_FORWARD,
            trace_context_from_wire(request.trace),
            shard=name,
            breaker=self.backends[name].breaker.state,
        ) as span:
            if span.context is not None:
                # the shard's spans parent onto this forward, so each
                # racing copy stitches as its own subtree
                outbound = replace(outbound, trace=span.context.to_dict())
            response = await self.backends[name].request(outbound)
            span.annotate(status=response.status)
        if response.id != request.id:
            response = replace(response, id=request.id)
        return response

    async def _timed_forward(self, name: str, request: Request) -> Response:
        """Forward and feed the round-trip into the latency tracker.

        Only completed round trips are observed — hard failures are
        the breaker's signal; the tracker exists to see the *slow*
        successes a breaker is blind to.
        """
        start_t = time.perf_counter()
        response = await self._forward(name, request)
        self.latency.observe(name, time.perf_counter() - start_t)
        return response

    def _timeout(self, request: Request, where: str) -> Response:
        """A deadline ran out: answer ``timeout`` (not a protocol error)."""
        self.timeouts_total += 1
        obs_runtime.metrics().counter(obs_names.SHARD_TIMEOUTS).inc()
        return Response(
            id=request.id, status="timeout",
            detail=f"deadline expired {where}",
        )

    async def _route(self, request: Request) -> Response:
        registry = obs_runtime.metrics()
        recorder = obs_runtime.spans()
        start_t = time.perf_counter()
        with recorder.start_span(
            obs_names.XSPAN_ROUTE,
            trace_context_from_wire(request.trace),
            op=request.op,
        ) as span:
            if span.context is not None:
                # every forward below parents onto the route span;
                # hedge/spill/breaker events land here via the recorder's
                # current-span context variable
                request = replace(request, trace=span.context.to_dict())
            try:
                if expired(request.deadline_ms):
                    span.event("deadline_expired", where="before routing")
                    return self._timeout(request, "before routing")
                if request.op == "stats":
                    return Response(
                        id=request.id, status="ok", stats=await self._stats()
                    )
                if request.op == "assign":
                    response = await self._route_assign(request)
                elif request.op == "release":
                    response = await self._route_release(request)
                else:
                    response = Response(
                        id=request.id, status="error",
                        detail=f"router does not accept op {request.op!r}",
                    )
                span.annotate(status=response.status)
                if request.deadline_ms is not None:
                    span.annotate(deadline_remaining_ms=round(
                        float(request.deadline_ms) - time.time() * 1e3, 3
                    ))
                return response
            finally:
                registry.timer(obs_names.SHARD_ROUTE_LATENCY).observe(
                    time.perf_counter() - start_t
                )

    async def _route_assign(self, request: Request) -> Response:
        registry = obs_runtime.metrics()
        recorder = obs_runtime.spans()
        device = int(request.device)
        if not 0 <= device < self.plan.n_devices:
            return Response(
                id=request.id, status="error",
                detail=f"device {device} out of range "
                       f"[0, {self.plan.n_devices})",
            )
        self._assign_seq += 1
        if self._assign_seq % _EJECTION_REFRESH_EVERY == 0:
            self.latency.refresh_ejections()
        preference = self.latency.demote_ejected(
            self.plan.preference_of_device(device)
        )
        rank_of = {name: i for i, name in enumerate(preference)}
        tried: "set[str]" = set()

        def next_candidate() -> "str | None":
            # first untried shard whose breaker admits the request;
            # acquire() (not allows()) so a half-open circuit hands out
            # exactly one probe even with a hedge racing the primary
            for name in preference:
                if name in tried:
                    continue
                tried.add(name)
                if self.backends[name].breaker.acquire():
                    return name
                recorder.event(
                    "breaker_denied", shard=name,
                    state=self.backends[name].breaker.state,
                )
            return None

        # One loop owns the whole attempt: launch the first admitting
        # shard, hedge another copy (up to ``_ASSIGN_INFLIGHT_MAX`` in
        # flight) whenever the oldest copy exceeds its hedge delay,
        # walk on when a copy spills (full/unreachable), and bound
        # every wait by the remaining deadline budget.  A copy that
        # fails while another is stuck re-arms hedging, so a held
        # message can never pin the request past its deadline.
        tasks: "dict[asyncio.Task, tuple[str, bool]]" = {}
        resends = 0
        while True:
            if expired(request.deadline_ms):
                self._abandon(tasks, device)
                return self._timeout(request, "while routing assign")
            if not tasks:
                primary = next_candidate()
                if primary is None:
                    break  # nothing in flight and nowhere left to try
                tasks[asyncio.create_task(
                    self._timed_forward(primary, request)
                )] = (primary, False)
            timeout = remaining_s(request.deadline_ms)
            may_hedge = (
                self.config.hedge
                and 1 <= len(tasks) < _ASSIGN_INFLIGHT_MAX
                and (len(tried) < len(preference)
                     or resends < _ASSIGN_RESENDS_MAX)
            )
            if may_hedge:
                slowest = next(iter(tasks.values()))[0]
                delay = self.latency.hedge_delay_s(slowest)
                if timeout is not None:
                    # never schedule the hedge past the budget: a
                    # p95-derived delay wider than what's left would
                    # doom the request to its primary
                    delay = min(delay, timeout / 2)
                timeout = delay
            done, _ = await asyncio.wait(
                set(tasks), timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if not done:
                if may_hedge and not expired(request.deadline_ms):
                    backup = next_candidate()
                    if backup is None and resends < _ASSIGN_RESENDS_MAX:
                        # no fresh shard admits the request, but the
                        # copy in flight may just be one held message:
                        # duplicate it on the same shard — the shard
                        # rejects a duplicate assign as infeasible, so
                        # this can never double-apply
                        backup = slowest
                        resends += 1
                    if backup is not None:
                        self.hedges_total += 1
                        registry.counter(
                            obs_names.SHARD_HEDGES, {"shard": slowest}
                        ).inc()
                        recorder.event(
                            "hedge", slow=slowest, to=backup,
                            resend=backup == slowest,
                            inflight=len(tasks) + 1,
                        )
                        tasks[asyncio.create_task(
                            self._timed_forward(backup, request)
                        )] = (backup, True)
                continue
            for task in done:
                name, is_hedge = tasks.pop(task)
                try:
                    response = task.result()
                except ShardUnavailableError:
                    self._note_breaker(name)
                    recorder.event(
                        "shard_unavailable", shard=name,
                        breaker=self.backends[name].breaker.state,
                    )
                    # ambiguous: the request may have applied before the
                    # answer was lost — best-effort release so a ghost
                    # assignment can't hold capacity forever
                    self._spawn_cleanup(
                        name, device, obs_names.SHARD_GHOST_RELEASES
                    )
                    if tasks:
                        # a copy is still in flight (a held primary):
                        # transport failures are transient, so let the
                        # hedging path re-try this shard later instead
                        # of burning the candidate for good — each
                        # retry is paced by the hedge delay and gated
                        # by the breaker
                        tried.discard(name)
                    continue
                except DeadlineExceededError:
                    self._spawn_cleanup(
                        name, device, obs_names.SHARD_GHOST_RELEASES
                    )
                    self._abandon(tasks, device)
                    return self._timeout(request, f"at shard {name!r}")
                if response.status == "infeasible":
                    recorder.event("spill", shard=name)
                    continue  # this shard is full for the device: spill
                if response.ok:
                    if is_hedge:
                        self.hedge_wins_total += 1
                        registry.counter(
                            obs_names.SHARD_HEDGE_WINS, {"shard": name}
                        ).inc()
                        recorder.event("hedge_win", shard=name)
                    self._abandon(tasks, device)
                    registry.counter(
                        obs_names.SHARD_ROUTED,
                        {"shard": name, "op": "assign"},
                    ).inc()
                    if rank_of[name] > 0:
                        self.spillovers_total += 1
                        registry.counter(obs_names.SHARD_SPILLOVERS).inc()
                    self._locations[device] = name
                    self._shaved.discard(device)  # fresh assign resets intent
                    registry.gauge(obs_names.SHARD_ACTIVE_DEVICES).set(
                        len(self._locations)
                    )
                    return self._globalize(name, response)
                # rejected/error pass through untranslated
                self._abandon(tasks, device)
                return response
        self.unroutable_total += 1
        registry.counter(obs_names.SHARD_UNROUTABLE).inc()
        return Response(
            id=request.id, status="rejected",
            detail="no shard available for device",
            retry_after_ms=50.0,
        )

    def _abandon(
        self, tasks: "dict[asyncio.Task, tuple[str, bool]]", device: int
    ) -> None:
        """Detach still-racing copies; release any possible landing.

        A hedge loser is never cancelled — a pipelined TCP client has
        already sent the bytes, so cancelling the task would only orphan
        the in-flight future.  Instead the loser runs to completion and
        a done-callback releases its landing (the winner's shard holds
        the device; a second landing is ghost capacity).  A loser that
        *fails* with a lost answer or a deadline cut is just as
        ambiguous — the assign may have applied before the failure —
        so those spawn the same best-effort ghost release.
        """
        for task, (name, _) in tasks.items():
            def _reap(t: "asyncio.Task", name: str = name) -> None:
                if t.cancelled():
                    return
                exc = t.exception()
                if exc is not None:
                    if isinstance(exc, ShardUnavailableError):
                        self._note_breaker(name)
                    if isinstance(
                        exc, (ShardUnavailableError, DeadlineExceededError)
                    ):
                        # as ambiguous as the in-loop handlers: the
                        # request may have applied before the answer
                        # was lost or the deadline cut the await
                        self._spawn_cleanup(
                            name, device, obs_names.SHARD_GHOST_RELEASES
                        )
                    return
                if t.result().ok:
                    self._spawn_cleanup(
                        name, device, obs_names.SHARD_HEDGE_CLEANUPS
                    )
            task.add_done_callback(_reap)
        tasks.clear()

    def _spawn_cleanup(self, name: str, device: int, metric: str) -> None:
        """Fire-and-forget a release of ``device`` on shard ``name``."""
        if metric == obs_names.SHARD_GHOST_RELEASES:
            self.ghost_releases_total += 1
        obs_runtime.metrics().counter(metric, {"shard": name}).inc()

        async def _cleanup() -> None:
            # a lost cleanup is a capacity leak until the rebalancer
            # notices, so ride out transient drops with a few paced
            # attempts before giving up
            for pause_s in (0.0, 0.05, 0.2):
                if pause_s:
                    await asyncio.sleep(pause_s)
                try:
                    await self._forward(
                        name, Request(op="release", device=device)
                    )
                    return
                except (ShardUnavailableError, DeadlineExceededError,
                        OSError):
                    continue  # best effort: the shard may be gone

        task = asyncio.create_task(_cleanup(), name=f"cleanup-{name}")
        self._cleanup_tasks.add(task)
        task.add_done_callback(self._cleanup_tasks.discard)

    async def _hedged_release(self, name: str, request: Request) -> Response:
        """Forward a release, re-sending to the *same* shard (up to
        :data:`_RELEASE_COPIES_MAX` copies) while every copy in flight
        exceeds the shard's hedge delay.

        Unlike assign hedging this never changes shards — the device
        lives on ``name`` — it just rides out dropped or long-held
        messages on a gray edge.  Duplicate releases are safe: if an
        earlier copy already applied, the shard answers the next with a
        ``not assigned`` error, which the reconcile path in
        :meth:`_route_release` rewrites to ``ok``.
        """
        first = asyncio.ensure_future(self._timed_forward(name, request))
        tasks = {first}
        copies = 1
        deadline_exc: "DeadlineExceededError | None" = None
        unavailable_exc: "ShardUnavailableError | None" = None
        while tasks:
            remaining = remaining_s(request.deadline_ms)
            if remaining is not None and remaining <= 0:
                for loser in tasks:
                    loser.add_done_callback(_swallow_result)
                raise deadline_exc or DeadlineExceededError(
                    f"release to shard {name!r} ran out of budget"
                )
            timeout = remaining
            resend = self.config.hedge and copies < _RELEASE_COPIES_MAX
            if resend:
                delay = self.latency.hedge_delay_s(name)
                if remaining is not None:
                    # as for assigns: re-sends scheduled past the
                    # budget would never happen at all
                    delay = min(delay, remaining / 2)
                timeout = delay
            done, tasks = await asyncio.wait(
                tasks, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            if not done:
                if not resend or expired(request.deadline_ms):
                    continue  # the top of the loop settles the verdict
                # every copy in flight is stuck past the hedge delay
                copies += 1
                self.hedges_total += 1
                obs_runtime.metrics().counter(
                    obs_names.SHARD_HEDGES, {"shard": name}
                ).inc()
                obs_runtime.spans().event(
                    "hedge", slow=name, to=name, resend=True,
                    inflight=len(tasks) + 1,
                )
                tasks.add(
                    asyncio.ensure_future(self._timed_forward(name, request))
                )
                continue
            for task in done:
                try:
                    response = task.result()
                except DeadlineExceededError as exc:
                    deadline_exc = exc
                    continue
                except ShardUnavailableError as exc:
                    self._note_breaker(name)
                    unavailable_exc = exc
                    continue
                if task is not first:
                    self.hedge_wins_total += 1
                    obs_runtime.metrics().counter(
                        obs_names.SHARD_HEDGE_WINS, {"shard": name}
                    ).inc()
                for loser in tasks:
                    # the loser is a duplicate of the same release: its
                    # eventual landing needs no cleanup, only reaping
                    loser.add_done_callback(_swallow_result)
                return response
        # every copy failed: prefer the conservative verdict (deadline
        # keeps the location for a retry; unavailability forgets it)
        raise deadline_exc or unavailable_exc

    async def _route_release(self, request: Request) -> Response:
        registry = obs_runtime.metrics()
        device = int(request.device)
        name = self._locations.get(device)
        if name is None:
            # not tracked: let the home shard produce the protocol error
            name = self.plan.shard_of_device(device) \
                if 0 <= device < self.plan.n_devices \
                else self.plan.shards[0].name
        try:
            response = await self._hedged_release(name, request)
        except DeadlineExceededError:
            # unknown whether the shard applied it: keep the location so
            # a retry (or the rebalancer) still reaches the holder
            return self._timeout(request, f"at shard {name!r}")
        except ShardUnavailableError:
            self._note_breaker(name)
            # the holder died and its state died with it: the device
            # IS released, just by crash instead of by request
            self._forget(device)
            return Response(
                id=request.id, status="ok",
                detail=f"released by failure of shard {name}",
            )
        if response.ok:
            registry.counter(
                obs_names.SHARD_ROUTED, {"shard": name, "op": "release"}
            ).inc()
            self._forget(device)
            registry.gauge(obs_names.SHARD_ACTIVE_DEVICES).set(
                len(self._locations)
            )
            return self._globalize(name, response)
        if (
            response.status == "error"
            and "not assigned" in response.detail
            and self._locations.get(device) == name
        ):
            # the router saw this device assigned but the shard no
            # longer holds it — the shard crashed and came back empty.
            # Reconcile: the assignment is gone, so the release is done.
            # The post-await re-check keeps a concurrent release's
            # legitimate duplicate-release error from being rewritten,
            # and the detail match keeps real shard faults visible.
            self._forget(device)
            return Response(
                id=request.id, status="ok",
                detail=f"reconciled after restart of shard {name}",
            )
        return response

    def _forget(self, device: int) -> None:
        """Drop all per-device routing state (location + shave mark)."""
        self._locations.pop(device, None)
        self._shaved.discard(device)

    def _globalize(self, name: str, response: Response) -> Response:
        """Rewrite a shard-local server index to the global one."""
        if response.server is None:
            return response
        return Response(
            id=response.id,
            status=response.status,
            server=self.plan.global_server(name, int(response.server)),
            latency_ms=response.latency_ms,
            retry_after_ms=response.retry_after_ms,
            detail=response.detail,
            stats=response.stats,
        )

    def _note_breaker(self, name: str) -> None:
        """Publish any new breaker trips for ``name`` as counter increments."""
        trips = self.backends[name].breaker.trips
        seen = self._trips_seen.get(name, 0)
        if trips > seen:
            self._trips_seen[name] = trips
            obs_runtime.metrics().counter(
                obs_names.SHARD_BREAKER_TRIPS, {"shard": name}
            ).inc(trips - seen)

    # ------------------------------------------------------------------
    # stats aggregation
    # ------------------------------------------------------------------
    async def _stats(self) -> dict:
        """Cluster-wide snapshot: per-shard stats plus aggregates."""
        per_shard: "dict[str, dict]" = {}
        results = await asyncio.gather(
            *(self._shard_stats(name) for name in self.backends),
            return_exceptions=True,
        )
        for name, result in zip(self.backends, results):
            if isinstance(result, dict):
                per_shard[name] = result
                self._gossip[name] = result
        ejected = self.latency.refresh_ejections()
        totals = {
            "devices": int(self.plan.n_devices),
            "servers": int(self.plan.n_servers),
            "shards": len(self.backends),
            "shards_up": len(per_shard),
            "active_devices": sum(
                s.get("active_devices", 0) for s in per_shard.values()
            ),
            "assigns_total": sum(
                s.get("assigns_total", 0) for s in per_shard.values()
            ),
            "releases_total": sum(
                s.get("releases_total", 0) for s in per_shard.values()
            ),
            "total_delay_ms": round(
                sum(s.get("total_delay_ms", 0.0) for s in per_shard.values()),
                6,
            ),
            "spillovers_total": self.spillovers_total,
            "unroutable_total": self.unroutable_total,
            "migrated_total": self.migrated_total,
            "migration_lost_total": self.migration_lost_total,
            "hedges_total": self.hedges_total,
            "hedge_wins_total": self.hedge_wins_total,
            "timeouts_total": self.timeouts_total,
            "ghost_releases_total": self.ghost_releases_total,
            "ejected_shards": sorted(ejected),
            "breaker_states": {
                name: backend.breaker.state
                for name, backend in self.backends.items()
            },
            "per_shard": per_shard,
        }
        return totals

    async def _shard_stats(self, name: str) -> dict:
        backend = self.backends[name]
        # acquire(), not allows(): a gossip probe through a half-open
        # circuit IS the one trial that decides whether it closes
        if not backend.breaker.acquire():
            raise ShardUnavailableError(f"shard {name!r} circuit open")
        probe = Request(
            op="stats",
            deadline_ms=deadline_ms_in(self.config.stats_timeout_s * 1e3),
        )
        try:
            response = await backend.request(probe)
        except DeadlineExceededError as exc:
            raise ShardUnavailableError(
                f"shard {name!r} stats timed out"
            ) from exc
        if not response.ok or response.stats is None:
            raise ShardUnavailableError(f"shard {name!r} gave no stats")
        return response.stats

    # ------------------------------------------------------------------
    # rebalance loop
    # ------------------------------------------------------------------
    async def _rebalance_loop(self) -> None:
        assert self.config.rebalance_interval_s is not None
        while True:
            await asyncio.sleep(self.config.rebalance_interval_s)
            try:
                with obs_runtime.tracer().span(obs_names.SPAN_REBALANCE):
                    await self.rebalance_once()
            except ShardUnavailableError:
                obs_runtime.metrics().counter(
                    obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "failed"}
                ).inc()

    async def rebalance_once(self) -> int:
        """One gossip + bounded-migration round; returns devices moved."""
        registry = obs_runtime.metrics()
        # gossip: refresh every reachable shard's stats (epochs included)
        await self._stats()
        batch = self._pick_migration_batch()
        if not batch:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "skipped"}
            ).inc()
            return 0
        donor, target, devices, kind = batch
        gossip = self._gossip.get(donor)
        if gossip is None or "epoch" not in gossip:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "skipped"}
            ).inc()
            return 0
        migrate = Request(
            op="migrate",
            devices=tuple(int(d) for d in devices),
            epoch=int(gossip["epoch"]),
        )
        try:
            response = await self.backends[donor].request(migrate)
        except ShardUnavailableError:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "failed"}
            ).inc()
            return 0
        if response.status == "rejected":
            # epoch CAS lost to foreground traffic: retry next round
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "stale"}
            ).inc()
            return 0
        if not response.ok or response.stats is None:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "failed"}
            ).inc()
            return 0
        released = [int(d) for d in response.stats.get("released", ())]
        moved = 0
        for device in released:
            self._forget(device)
            landed = await self._readmit(device, target, donor)
            if landed is None:
                self.migration_lost_total += 1
                registry.counter(obs_names.SHARD_MIGRATION_LOST).inc()
            else:
                self._locations[device] = landed
                if kind == "shave" and landed != self.plan.shard_of_device(
                    device
                ):
                    # deliberately off home: exempt from repatriation so
                    # the next round doesn't drag it straight back to
                    # the donor and undo the shave
                    self._shaved.add(device)
                if landed == target:
                    moved += 1
        self.migrated_total += moved
        registry.counter(obs_names.SHARD_MIGRATIONS).inc(moved)
        registry.counter(
            obs_names.SHARD_MIGRATION_ROUNDS,
            {"outcome": "moved" if moved else "failed"},
        ).inc()
        return moved

    async def _readmit(
        self, device: int, target: str, donor: str
    ) -> "str | None":
        """Re-place a released device: target first, donor as rollback,
        then the rest of the ring.  Returns the shard that took it."""
        order = [target, donor] + [
            n for n in self.plan.preference_of_device(device)
            if n not in (target, donor)
        ]
        request = Request(op="assign", device=device)
        for name in order:
            backend = self.backends[name]
            if not backend.breaker.acquire():
                continue
            try:
                response = await backend.request(request)
            except ShardUnavailableError:
                continue
            if response.ok:
                return name
        return None

    def _pick_migration_batch(
        self,
    ) -> "tuple[str, str, list[int], str] | None":
        """Choose (donor, target, devices, kind) for this round, or ``None``.

        Priority 1 — repatriation: devices stranded off their home
        shard (failover debt) go home as soon as home is reachable —
        except devices the shaver moved on purpose, which would
        otherwise ping-pong between donor and target forever.
        Priority 2 — load shaving: when the gossip utilization gap
        exceeds the threshold, move the most-loaded shard's devices
        toward the least-loaded one, preferring devices not homed on
        the donor so a shave retires failover debt first.

        Pure planning: breaker reads here stay :meth:`allows` — no
        probe slot is consumed by *considering* a shard.
        """
        limit = self.config.migration_batch
        # repatriation: group strays by (current shard, home shard)
        strays: "dict[tuple[str, str], list[int]]" = {}
        for device, current in self._locations.items():
            if device in self._shaved:
                continue
            home = self.plan.shard_of_device(device)
            if home != current and self.backends[home].breaker.allows():
                strays.setdefault((current, home), []).append(device)
        if strays:
            (donor, home), devices = max(
                strays.items(), key=lambda kv: (len(kv[1]), kv[0])
            )
            return donor, home, sorted(devices)[:limit], "repatriate"
        # load shaving needs fresh gossip from at least two shards
        utils = {
            name: float(g.get("mean_utilization", 0.0))
            for name, g in self._gossip.items()
            if self.backends[name].breaker.allows()
        }
        if len(utils) < 2:
            return None
        donor = max(utils, key=lambda n: (utils[n], n))
        target = min(utils, key=lambda n: (utils[n], n))
        if utils[donor] - utils[target] < self.config.utilization_gap:
            return None
        held = sorted(
            d for d, where in self._locations.items() if where == donor
        )
        devices = (
            [d for d in held if self.plan.shard_of_device(d) != donor]
            + [d for d in held if self.plan.shard_of_device(d) == donor]
        )[:limit]
        if not devices:
            return None
        return donor, target, devices, "shave"

"""The shard router: one protocol front end over many shard backends.

:class:`ShardRouter` is deliberately shaped like an
:class:`~repro.serve.service.AssignmentService` — it exposes
``started`` and ``submit_nowait`` — so the existing
:class:`~repro.serve.server.TCPServer` serves it unchanged, and it is
simultaneously shaped like a client (``send``/``flush``/``request``/
``close``) so the existing load generator drives it unchanged.  The
sharded tier is therefore invisible on the wire: same line-JSON
protocol, same semantics, more cores behind it.

Routing
-------
A device's **home shard** is the consistent-hash owner of its topology
region (:class:`~repro.shard.partition.ShardPlan`).  An assign walks
the ring's preference order starting at home: the first shard whose
circuit breaker admits the request and answers ``ok`` wins.  A shard
that is down (transport failure, circuit open) or full (``infeasible``)
spills the device to the next ring successor — this is the failover
path a shard kill exercises.  The router remembers where every device
actually landed, so releases and migrations always reach the shard
that holds the device, wherever it spilled.

Shard sub-problems index servers locally; the router rewrites each
``ok`` assign response's ``server`` back to the global index, so
clients observe one coherent cluster.

Rebalance
---------
A periodic loop gossips ``stats`` from every shard, then moves one
bounded batch of devices per round: devices stranded off their home
shard are repatriated first (failover debt), then load is shaved from
the most- to the least-utilized shard when the utilization gap exceeds
the configured threshold.  Shaved devices are marked and exempted
from repatriation so the two policies never ping-pong the same
devices between donor and target.  Each batch uses the ``migrate`` op's
epoch compare-and-set — a donor whose state moved since the gossip
snapshot rejects the batch and the round simply retries later, so
migration always yields to foreground traffic.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, replace

from repro.errors import ShardUnavailableError
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.serve.protocol import Request, Response
from repro.shard.partition import ShardPlan
from repro.utils.validation import require


@dataclass(frozen=True)
class RouterConfig:
    """Every router knob in one place (see docs/serve.md)."""

    rebalance_interval_s: "float | None" = None  # None disables the loop
    migration_batch: int = 32
    utilization_gap: float = 0.25

    def __post_init__(self) -> None:
        if self.rebalance_interval_s is not None:
            require(self.rebalance_interval_s > 0,
                    "rebalance_interval_s must be > 0")
        require(self.migration_batch >= 1, "migration_batch must be >= 1")
        require(0 < self.utilization_gap <= 1,
                "utilization_gap must be in (0, 1]")


class ShardRouter:
    """Consistent-hash front end over per-region shard backends."""

    def __init__(
        self,
        plan: ShardPlan,
        backends: "dict[str, object]",
        config: "RouterConfig | None" = None,
    ) -> None:
        require(
            set(backends) == {s.name for s in plan.shards},
            "backends must cover exactly the plan's shards",
        )
        self.plan = plan
        self.backends = dict(backends)
        self.config = config or RouterConfig()
        self._locations: "dict[int, str]" = {}  # device -> holding shard
        self._shaved: "set[int]" = set()  # deliberately moved off home
        self._gossip: "dict[str, dict]" = {}    # shard -> last stats seen
        self._trips_seen: "dict[str, int]" = {}  # breaker trips published
        self._rebalance_task: "asyncio.Task | None" = None
        self._started = False
        self.spillovers_total = 0
        self.unroutable_total = 0
        self.migrated_total = 0
        self.migration_lost_total = 0

    # ------------------------------------------------------------------
    # lifecycle (service-shaped, so TCPServer can wrap the router)
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the router is accepting requests."""
        return self._started

    async def start(self) -> None:
        """Accept requests; spawn the rebalance loop when configured."""
        require(not self._started, "router is already started")
        self._started = True
        if self.config.rebalance_interval_s is not None:
            self._rebalance_task = asyncio.create_task(
                self._rebalance_loop(), name="shard-rebalance"
            )

    async def stop(self) -> None:
        """Stop the rebalance loop and close every backend."""
        self._started = False
        if self._rebalance_task is not None:
            self._rebalance_task.cancel()
            try:
                await self._rebalance_task
            except asyncio.CancelledError:
                pass
            self._rebalance_task = None
        for backend in self.backends.values():
            await backend.close()

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit_nowait(self, request: Request) -> "asyncio.Future[Response]":
        """Route one request; the future resolves with the response."""
        require(self._started, "router is not started")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        task = loop.create_task(self._route(request))

        def _finish(t: "asyncio.Task") -> None:
            if future.done():
                return
            exc = t.exception()
            if exc is not None:
                future.set_result(
                    Response(
                        id=request.id, status="error",
                        detail=f"router failure: {exc}",
                    )
                )
            else:
                future.set_result(t.result())

        task.add_done_callback(_finish)
        return future

    # client-shaped aliases so the load generator drives the router
    # exactly like an InProcessClient
    def send(self, request: Request) -> "asyncio.Future[Response]":
        """Alias of :meth:`submit_nowait` (client surface)."""
        return self.submit_nowait(request)

    async def flush(self) -> None:
        """No client-side buffering, nothing to flush."""

    async def request(self, request: Request) -> Response:
        """Submit one request and await its response."""
        return await self.submit_nowait(request)

    async def close(self) -> None:
        """Client-surface alias of :meth:`stop`."""
        if self._started:
            await self.stop()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _forward(self, name: str, request: Request) -> Response:
        """Forward to one backend with a transport-local request id.

        Client ids are only unique per client connection; a TCP
        backend multiplexes every connection (and the router's own
        gossip/migrate traffic) over one pipelined client, so a
        verbatim forward would collide in its in-flight table.  Send
        id 0 — "stamp me" — and restore the caller's id on the way
        back so its pipeline still matches the response.
        """
        outbound = replace(request, id=0) if request.id != 0 else request
        response = await self.backends[name].request(outbound)
        if response.id != request.id:
            response = replace(response, id=request.id)
        return response

    async def _route(self, request: Request) -> Response:
        registry = obs_runtime.metrics()
        start_t = time.perf_counter()
        try:
            if request.op == "stats":
                return Response(
                    id=request.id, status="ok", stats=await self._stats()
                )
            if request.op == "assign":
                return await self._route_assign(request)
            if request.op == "release":
                return await self._route_release(request)
            return Response(
                id=request.id, status="error",
                detail=f"router does not accept op {request.op!r}",
            )
        finally:
            registry.timer(obs_names.SHARD_ROUTE_LATENCY).observe(
                time.perf_counter() - start_t
            )

    async def _route_assign(self, request: Request) -> Response:
        registry = obs_runtime.metrics()
        device = int(request.device)
        if not 0 <= device < self.plan.n_devices:
            return Response(
                id=request.id, status="error",
                detail=f"device {device} out of range "
                       f"[0, {self.plan.n_devices})",
            )
        preference = self.plan.preference_of_device(device)
        for rank, name in enumerate(preference):
            if not self.backends[name].breaker.allows():
                continue
            try:
                response = await self._forward(name, request)
            except ShardUnavailableError:
                self._note_breaker(name)
                continue
            if response.status == "infeasible":
                # this shard is full for the device: spill to successor
                continue
            if response.ok:
                registry.counter(
                    obs_names.SHARD_ROUTED, {"shard": name, "op": "assign"}
                ).inc()
                if rank > 0:
                    self.spillovers_total += 1
                    registry.counter(obs_names.SHARD_SPILLOVERS).inc()
                self._locations[device] = name
                self._shaved.discard(device)  # fresh assign resets intent
                registry.gauge(obs_names.SHARD_ACTIVE_DEVICES).set(
                    len(self._locations)
                )
                return self._globalize(name, response)
            return response  # rejected/error pass through untranslated
        self.unroutable_total += 1
        registry.counter(obs_names.SHARD_UNROUTABLE).inc()
        return Response(
            id=request.id, status="rejected",
            detail="no shard available for device",
            retry_after_ms=50.0,
        )

    async def _route_release(self, request: Request) -> Response:
        registry = obs_runtime.metrics()
        device = int(request.device)
        name = self._locations.get(device)
        if name is None:
            # not tracked: let the home shard produce the protocol error
            name = self.plan.shard_of_device(device) \
                if 0 <= device < self.plan.n_devices \
                else self.plan.shards[0].name
        try:
            response = await self._forward(name, request)
        except ShardUnavailableError:
            self._note_breaker(name)
            # the holder died and its state died with it: the device
            # IS released, just by crash instead of by request
            self._forget(device)
            return Response(
                id=request.id, status="ok",
                detail=f"released by failure of shard {name}",
            )
        if response.ok:
            registry.counter(
                obs_names.SHARD_ROUTED, {"shard": name, "op": "release"}
            ).inc()
            self._forget(device)
            registry.gauge(obs_names.SHARD_ACTIVE_DEVICES).set(
                len(self._locations)
            )
            return self._globalize(name, response)
        if (
            response.status == "error"
            and "not assigned" in response.detail
            and self._locations.get(device) == name
        ):
            # the router saw this device assigned but the shard no
            # longer holds it — the shard crashed and came back empty.
            # Reconcile: the assignment is gone, so the release is done.
            # The post-await re-check keeps a concurrent release's
            # legitimate duplicate-release error from being rewritten,
            # and the detail match keeps real shard faults visible.
            self._forget(device)
            return Response(
                id=request.id, status="ok",
                detail=f"reconciled after restart of shard {name}",
            )
        return response

    def _forget(self, device: int) -> None:
        """Drop all per-device routing state (location + shave mark)."""
        self._locations.pop(device, None)
        self._shaved.discard(device)

    def _globalize(self, name: str, response: Response) -> Response:
        """Rewrite a shard-local server index to the global one."""
        if response.server is None:
            return response
        return Response(
            id=response.id,
            status=response.status,
            server=self.plan.global_server(name, int(response.server)),
            latency_ms=response.latency_ms,
            retry_after_ms=response.retry_after_ms,
            detail=response.detail,
            stats=response.stats,
        )

    def _note_breaker(self, name: str) -> None:
        """Publish any new breaker trips for ``name`` as counter increments."""
        trips = self.backends[name].breaker.trips
        seen = self._trips_seen.get(name, 0)
        if trips > seen:
            self._trips_seen[name] = trips
            obs_runtime.metrics().counter(
                obs_names.SHARD_BREAKER_TRIPS, {"shard": name}
            ).inc(trips - seen)

    # ------------------------------------------------------------------
    # stats aggregation
    # ------------------------------------------------------------------
    async def _stats(self) -> dict:
        """Cluster-wide snapshot: per-shard stats plus aggregates."""
        per_shard: "dict[str, dict]" = {}
        results = await asyncio.gather(
            *(self._shard_stats(name) for name in self.backends),
            return_exceptions=True,
        )
        for name, result in zip(self.backends, results):
            if isinstance(result, dict):
                per_shard[name] = result
                self._gossip[name] = result
        totals = {
            "devices": int(self.plan.n_devices),
            "servers": int(self.plan.n_servers),
            "shards": len(self.backends),
            "shards_up": len(per_shard),
            "active_devices": sum(
                s.get("active_devices", 0) for s in per_shard.values()
            ),
            "assigns_total": sum(
                s.get("assigns_total", 0) for s in per_shard.values()
            ),
            "releases_total": sum(
                s.get("releases_total", 0) for s in per_shard.values()
            ),
            "total_delay_ms": round(
                sum(s.get("total_delay_ms", 0.0) for s in per_shard.values()),
                6,
            ),
            "spillovers_total": self.spillovers_total,
            "unroutable_total": self.unroutable_total,
            "migrated_total": self.migrated_total,
            "migration_lost_total": self.migration_lost_total,
            "breaker_states": {
                name: backend.breaker.state
                for name, backend in self.backends.items()
            },
            "per_shard": per_shard,
        }
        return totals

    async def _shard_stats(self, name: str) -> dict:
        backend = self.backends[name]
        if not backend.breaker.allows():
            raise ShardUnavailableError(f"shard {name!r} circuit open")
        response = await backend.request(Request(op="stats"))
        if not response.ok or response.stats is None:
            raise ShardUnavailableError(f"shard {name!r} gave no stats")
        return response.stats

    # ------------------------------------------------------------------
    # rebalance loop
    # ------------------------------------------------------------------
    async def _rebalance_loop(self) -> None:
        assert self.config.rebalance_interval_s is not None
        while True:
            await asyncio.sleep(self.config.rebalance_interval_s)
            try:
                with obs_runtime.tracer().span(obs_names.SPAN_REBALANCE):
                    await self.rebalance_once()
            except ShardUnavailableError:
                obs_runtime.metrics().counter(
                    obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "failed"}
                ).inc()

    async def rebalance_once(self) -> int:
        """One gossip + bounded-migration round; returns devices moved."""
        registry = obs_runtime.metrics()
        # gossip: refresh every reachable shard's stats (epochs included)
        await self._stats()
        batch = self._pick_migration_batch()
        if not batch:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "skipped"}
            ).inc()
            return 0
        donor, target, devices, kind = batch
        gossip = self._gossip.get(donor)
        if gossip is None or "epoch" not in gossip:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "skipped"}
            ).inc()
            return 0
        migrate = Request(
            op="migrate",
            devices=tuple(int(d) for d in devices),
            epoch=int(gossip["epoch"]),
        )
        try:
            response = await self.backends[donor].request(migrate)
        except ShardUnavailableError:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "failed"}
            ).inc()
            return 0
        if response.status == "rejected":
            # epoch CAS lost to foreground traffic: retry next round
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "stale"}
            ).inc()
            return 0
        if not response.ok or response.stats is None:
            registry.counter(
                obs_names.SHARD_MIGRATION_ROUNDS, {"outcome": "failed"}
            ).inc()
            return 0
        released = [int(d) for d in response.stats.get("released", ())]
        moved = 0
        for device in released:
            self._forget(device)
            landed = await self._readmit(device, target, donor)
            if landed is None:
                self.migration_lost_total += 1
                registry.counter(obs_names.SHARD_MIGRATION_LOST).inc()
            else:
                self._locations[device] = landed
                if kind == "shave" and landed != self.plan.shard_of_device(
                    device
                ):
                    # deliberately off home: exempt from repatriation so
                    # the next round doesn't drag it straight back to
                    # the donor and undo the shave
                    self._shaved.add(device)
                if landed == target:
                    moved += 1
        self.migrated_total += moved
        registry.counter(obs_names.SHARD_MIGRATIONS).inc(moved)
        registry.counter(
            obs_names.SHARD_MIGRATION_ROUNDS,
            {"outcome": "moved" if moved else "failed"},
        ).inc()
        return moved

    async def _readmit(
        self, device: int, target: str, donor: str
    ) -> "str | None":
        """Re-place a released device: target first, donor as rollback,
        then the rest of the ring.  Returns the shard that took it."""
        order = [target, donor] + [
            n for n in self.plan.preference_of_device(device)
            if n not in (target, donor)
        ]
        request = Request(op="assign", device=device)
        for name in order:
            backend = self.backends[name]
            if not backend.breaker.allows():
                continue
            try:
                response = await backend.request(request)
            except ShardUnavailableError:
                continue
            if response.ok:
                return name
        return None

    def _pick_migration_batch(
        self,
    ) -> "tuple[str, str, list[int], str] | None":
        """Choose (donor, target, devices, kind) for this round, or ``None``.

        Priority 1 — repatriation: devices stranded off their home
        shard (failover debt) go home as soon as home is reachable —
        except devices the shaver moved on purpose, which would
        otherwise ping-pong between donor and target forever.
        Priority 2 — load shaving: when the gossip utilization gap
        exceeds the threshold, move the most-loaded shard's devices
        toward the least-loaded one, preferring devices not homed on
        the donor so a shave retires failover debt first.
        """
        limit = self.config.migration_batch
        # repatriation: group strays by (current shard, home shard)
        strays: "dict[tuple[str, str], list[int]]" = {}
        for device, current in self._locations.items():
            if device in self._shaved:
                continue
            home = self.plan.shard_of_device(device)
            if home != current and self.backends[home].breaker.allows():
                strays.setdefault((current, home), []).append(device)
        if strays:
            (donor, home), devices = max(
                strays.items(), key=lambda kv: (len(kv[1]), kv[0])
            )
            return donor, home, sorted(devices)[:limit], "repatriate"
        # load shaving needs fresh gossip from at least two shards
        utils = {
            name: float(g.get("mean_utilization", 0.0))
            for name, g in self._gossip.items()
            if self.backends[name].breaker.allows()
        }
        if len(utils) < 2:
            return None
        donor = max(utils, key=lambda n: (utils[n], n))
        target = min(utils, key=lambda n: (utils[n], n))
        if utils[donor] - utils[target] < self.config.utilization_gap:
            return None
        held = sorted(
            d for d, where in self._locations.items() if where == donor
        )
        devices = (
            [d for d in held if self.plan.shard_of_device(d) != donor]
            + [d for d in held if self.plan.shard_of_device(d) == donor]
        )[:limit]
        if not devices:
            return None
        return donor, target, devices, "shave"

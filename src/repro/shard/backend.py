"""Shard backends: how the router talks to one shard.

Two transports behind one surface (mirroring the client split in
:mod:`repro.serve.server`):

* :class:`InProcessBackend` — the shard's
  :class:`~repro.serve.service.AssignmentService` lives in the same
  event loop (tests, single-process demos);
* :class:`TCPBackend` — the shard is a separate process reached over
  the line-JSON protocol, with lazy connect and automatic reconnect
  after a connection death.

Every backend carries a :class:`CircuitBreaker`.  The breaker is what
turns a crashed shard from a per-request timeout storm into a fast
local decision: after ``failure_threshold`` consecutive transport
failures the circuit opens and the router skips the shard outright,
sending its traffic down the ring's preference order instead.  After
``reset_after_s`` the circuit goes half-open and admits one probe
request; success closes it again, failure re-opens it.
"""

from __future__ import annotations

import asyncio
import time

from repro.errors import DeadlineExceededError, ShardUnavailableError
from repro.serve.deadline import bounded, remaining_s
from repro.serve.protocol import Request, Response
from repro.serve.server import TCPClient
from repro.serve.service import AssignmentService
from repro.utils.validation import require

#: breaker defaults: trip fast, probe again after a short cooldown
DEFAULT_FAILURE_THRESHOLD = 3
DEFAULT_RESET_AFTER_S = 1.0


class CircuitBreaker:
    """Consecutive-failure circuit with a half-open probe state."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_after_s: float = DEFAULT_RESET_AFTER_S,
        clock=time.monotonic,
    ) -> None:
        require(failure_threshold >= 1, "failure_threshold must be >= 1")
        require(reset_after_s > 0, "reset_after_s must be > 0")
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._failures = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False  # half-open admits exactly one trial
        self.trips = 0  # lifetime open transitions (observability)

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when cooled down."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allows(self) -> bool:
        """Whether a request *could* be attempted right now (pure check).

        Read-only: used by gossip / migration planning to ask "is this
        shard reachable in principle".  The request path must use
        :meth:`acquire` instead, which also reserves the half-open
        probe slot.
        """
        return self.state != self.OPEN

    def acquire(self) -> bool:
        """Claim permission to send one request (consumes the probe slot).

        In half-open state exactly one caller wins until the probe's
        :meth:`record_success`/:meth:`record_failure` settles it (or
        :meth:`release_probe` frees it without a verdict) — two
        concurrent requests racing the cooldown boundary must not both
        probe a shard that is presumed down (the half-open race the
        tests pin).  Closed state admits everyone; open admits no one.
        """
        state = self.state
        if state == self.OPEN:
            return False
        if state == self.HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
        return True

    def release_probe(self) -> None:
        """Free the half-open probe slot without a verdict.

        A deadline-expired probe proves nothing about shard health —
        the budget ran out, not the shard — so the breaker must neither
        close nor re-open.  But the probe slot was consumed by
        :meth:`acquire`, and only success/failure clears it; without
        this release a deadline-cut probe would wedge the breaker in
        half-open with the slot taken forever, and the shard could
        never be probed again.  Every ``DeadlineExceededError`` path
        after an :meth:`acquire` must call this.
        """
        self._probe_in_flight = False

    def record_success(self) -> None:
        """A request went through: close the circuit."""
        self._failures = 0
        self._state = self.CLOSED
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """A transport failure: count it; trip when the threshold hits.

        A failure during half-open re-opens immediately — the probe
        said the shard is still down.
        """
        self._failures += 1
        self._probe_in_flight = False
        if (
            self._state == self.HALF_OPEN
            or self._failures >= self.failure_threshold
        ):
            if self._state != self.OPEN:
                self.trips += 1
            self._state = self.OPEN
            self._opened_at = self._clock()
            self._failures = 0


class InProcessBackend:
    """A shard service living in the router's own event loop."""

    def __init__(
        self,
        name: str,
        service: AssignmentService,
        breaker: "CircuitBreaker | None" = None,
    ) -> None:
        self.name = name
        self.service = service
        self.breaker = breaker or CircuitBreaker()

    async def request(self, request: Request) -> Response:
        """Forward one request; raises ShardUnavailableError when down.

        A request deadline bounds the await; its expiry raises the
        typed :class:`~repro.errors.DeadlineExceededError` *without*
        tripping the breaker — a short budget is the client's problem,
        not evidence the shard is down — but it must still free the
        half-open probe slot the caller acquired.
        """
        if not self.service.started:
            self.breaker.record_failure()
            raise ShardUnavailableError(f"shard {self.name!r} is stopped")
        try:
            response = await bounded(
                self.service.submit_nowait(request),
                deadline_ms=request.deadline_ms,
                where=f"shard {self.name!r}",
            )
        except DeadlineExceededError:
            self.breaker.release_probe()
            raise
        except Exception as exc:
            self.breaker.record_failure()
            raise ShardUnavailableError(
                f"shard {self.name!r} failed: {exc}"
            ) from exc
        self.breaker.record_success()
        return response

    async def close(self) -> None:
        """The service's lifecycle belongs to its owner; nothing to do."""


class TCPBackend:
    """A shard process reached over line-JSON TCP, with reconnect."""

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        breaker: "CircuitBreaker | None" = None,
        connect_timeout_s: float = 2.0,
        request_timeout_s: float = 5.0,
    ) -> None:
        self.name = name
        self.host = host
        self.port = int(port)
        self.breaker = breaker or CircuitBreaker()
        self.connect_timeout_s = float(connect_timeout_s)
        self.request_timeout_s = float(request_timeout_s)
        self._client: "TCPClient | None" = None
        self._connect_lock = asyncio.Lock()

    async def _ensure_client(self) -> TCPClient:
        # serialized: concurrent requests racing a reconnect must share
        # one client, not each open (and mostly leak) their own
        async with self._connect_lock:
            if self._client is None:
                client = TCPClient(self.host, self.port)
                try:
                    await asyncio.wait_for(
                        client.connect(), timeout=self.connect_timeout_s
                    )
                except (OSError, TimeoutError) as exc:
                    # a timeout can cancel connect() after the socket
                    # opened: close the half-built client so nothing leaks
                    try:
                        await client.close()
                    except (OSError, RuntimeError):
                        pass
                    raise ShardUnavailableError(
                        f"shard {self.name!r} unreachable at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
                self._client = client
            return self._client

    async def request(self, request: Request) -> Response:
        """Forward one request; transport failure drops the connection.

        The dead client is discarded so the next attempt reconnects —
        which is what lets a restarted shard rejoin without router
        intervention.  The await is bounded by the *tighter* of the
        fixed transport timeout and the request's propagated deadline;
        when the deadline is the binding constraint its expiry raises
        :class:`~repro.errors.DeadlineExceededError` and does **not**
        trip the breaker or drop the connection — the shard may be
        healthy, the budget just ran out.
        """
        timeout_s = self.request_timeout_s
        remaining = remaining_s(request.deadline_ms)
        if remaining is not None:
            if remaining <= 0:
                self.breaker.release_probe()
                raise DeadlineExceededError(
                    f"shard {self.name!r}: deadline passed before send"
                )
            timeout_s = min(timeout_s, remaining)
        try:
            client = await self._ensure_client()
            response = await asyncio.wait_for(
                client.request(request), timeout=timeout_s
            )
        except ShardUnavailableError:
            self.breaker.record_failure()
            raise
        except (asyncio.TimeoutError, TimeoutError) as exc:
            if timeout_s < self.request_timeout_s:
                # the deadline was the binding bound: typed fail-fast,
                # connection kept (pipelined siblings are still live),
                # probe slot freed (no verdict on shard health)
                self.breaker.release_probe()
                raise DeadlineExceededError(
                    f"shard {self.name!r}: no answer within the deadline"
                ) from exc
            self.breaker.record_failure()
            await self._drop_client()
            raise ShardUnavailableError(
                f"shard {self.name!r} transport failed: {exc}"
            ) from exc
        except OSError as exc:
            self.breaker.record_failure()
            await self._drop_client()
            raise ShardUnavailableError(
                f"shard {self.name!r} transport failed: {exc}"
            ) from exc
        if response.status == "error" and "connection" in response.detail:
            # the client's reader resolved the future with a synthetic
            # connection-death response: treat as transport failure
            self.breaker.record_failure()
            await self._drop_client()
            raise ShardUnavailableError(
                f"shard {self.name!r} dropped the connection"
            )
        self.breaker.record_success()
        return response

    async def _drop_client(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            try:
                await client.close()
            except (OSError, RuntimeError):
                pass

    async def close(self) -> None:
        """Close the connection if one is open."""
        await self._drop_client()

"""Path→link incidence: which links an assignment actually routes over.

The static delay matrix collapses each device/server pair to a scalar,
which is exactly what makes it blind to contention: two devices whose
shortest paths share a thin uplink look independent.  The incidence
structure keeps the link-level information around — for every
(device, server) pair, the ordered set of links its routed path
traverses — so the flow-based cost model can attribute offered load to
individual links and price their congestion.

Construction runs one Dijkstra per server (rooted at the server, like
:func:`repro.topology.routing.all_pairs_delay`) and resolves node
sequences to links through :meth:`NetworkGraph.links_on_path`, sharing
its validation with the routing layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ContentionError
from repro.model.problem import AssignmentProblem
from repro.topology.delay import DelayModel, TransmissionDelayModel
from repro.topology.graph import Link, NetworkGraph
from repro.topology.routing import routing_paths


def _canonical(link: Link) -> tuple[int, int]:
    """Order-independent key of an undirected link."""
    return (link.u, link.v) if link.u < link.v else (link.v, link.u)


@dataclass(frozen=True)
class PathIncidence:
    """Per-assignment path→link incidence of one problem instance.

    Attributes
    ----------
    links:
        Every link traversed by at least one routed path, in first-seen
        order (deterministic: servers then devices are walked in index
        order).
    link_index:
        Canonical ``(min(u, v), max(u, v))`` endpoint pair → position
        in :attr:`links`.
    bandwidth:
        ``(L,)`` capacities in bits/second, aligned with :attr:`links`.
    base_delay:
        ``(N, M)`` unloaded routed-path delay in seconds — propagation
        + transmission + processing, no queueing.
    path_links:
        ``path_links[i][j]`` is an int array of link indices device
        ``i``'s routed path to server ``j`` traverses (possibly empty
        when both sit on the same node).
    """

    links: tuple[Link, ...]
    link_index: dict[tuple[int, int], int]
    bandwidth: np.ndarray
    base_delay: np.ndarray
    path_links: tuple[tuple[np.ndarray, ...], ...]

    @property
    def n_links(self) -> int:
        """Number of distinct links any routed path uses."""
        return len(self.links)

    @property
    def n_devices(self) -> int:
        """Number of devices (rows)."""
        return self.base_delay.shape[0]

    @property
    def n_servers(self) -> int:
        """Number of servers (columns)."""
        return self.base_delay.shape[1]


def build_incidence(
    problem: AssignmentProblem,
    delay_model: "DelayModel | None" = None,
) -> PathIncidence:
    """Route every (device, server) pair and record the links used.

    Requires a topology-backed problem (``graph``, ``devices`` and
    ``servers`` present); matrix-only instances carry no link
    information to attribute load to.
    """
    graph = problem.graph
    if graph is None or problem.devices is None or problem.servers is None:
        raise ContentionError(
            "contention model needs a topology-backed problem "
            "(graph, devices and servers); matrix-only instances have "
            "no links to attribute load to"
        )
    model = delay_model if delay_model is not None else TransmissionDelayModel()
    weight_fn = getattr(model, "link_weight", None)
    if weight_fn is None:
        raise ContentionError(
            f"delay model {model.name!r} has no per-link weight; the "
            f"contention model requires a routed-path model"
        )
    device_nodes = [d.node_id for d in problem.devices]
    links: list[Link] = []
    link_index: dict[tuple[int, int], int] = {}
    columns: list[list[np.ndarray]] = []
    base = np.empty((problem.n_devices, problem.n_servers), dtype=np.float64)
    for j, server in enumerate(problem.servers):
        paths = routing_paths(graph, device_nodes, server.node_id, weight_fn)
        column: list[np.ndarray] = []
        for i, source in enumerate(device_nodes):
            path = paths[source]
            base[i, j] = path.cost
            indices = []
            for link in graph.links_on_path(path.nodes):
                key = _canonical(link)
                idx = link_index.get(key)
                if idx is None:
                    idx = len(links)
                    link_index[key] = idx
                    links.append(link)
                indices.append(idx)
            column.append(np.asarray(indices, dtype=np.intp))
        columns.append(column)
    # transpose to [device][server] for cache-friendly device-major reads
    path_links = tuple(
        tuple(columns[j][i] for j in range(problem.n_servers))
        for i in range(problem.n_devices)
    )
    bandwidth = np.array([link.bandwidth_bps for link in links], dtype=np.float64)
    return PathIncidence(
        links=tuple(links),
        link_index=link_index,
        bandwidth=bandwidth,
        base_delay=base,
        path_links=path_links,
    )

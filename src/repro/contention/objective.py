"""The contention objective: flow-based effective delay of an assignment.

Adapts :class:`~repro.contention.model.ContentionModel` to the standard
:class:`~repro.model.objectives.Objective` interface so a problem
declaring ``objective="congestion"`` is scored by effective delay no
matter which solver produced the assignment — delay-only and
congestion-aware solvers compete under the same metric.
"""

from __future__ import annotations

from repro.contention.model import ContentionConfig, ContentionModel
from repro.model.objectives import Objective
from repro.model.solution import Assignment

__all__ = ["ContentionObjective"]


class ContentionObjective(Objective):
    """Total effective delay: propagation + transmission + contention.

    Building the underlying contention model means routing every
    device/server pair, so models are cached per problem identity —
    evaluating many assignments of the same instance (the common case
    in experiment sweeps) routes once.
    """

    name = "effective_delay"

    def __init__(self, config: "ContentionConfig | None" = None) -> None:
        self.config = config if config is not None else ContentionConfig()
        self._models: dict[int, ContentionModel] = {}

    def _model(self, assignment: Assignment) -> ContentionModel:
        key = id(assignment.problem)
        model = self._models.get(key)
        if model is None:
            model = ContentionModel(assignment.problem, self.config)
            self._models[key] = model
        return model

    def evaluate(self, assignment: Assignment) -> float:
        """Objective value of ``assignment`` (lower is better)."""
        return self._model(assignment).total_cost(assignment.vector)

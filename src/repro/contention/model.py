"""Flow-based contention cost model.

The static delay matrix prices a (device, server) pair as if its
packets traveled alone.  This module prices what actually happens when
an assignment routes many flows over shared links:

* per-link **offered load** — the sum of the bit rates of every flow
  whose routed path crosses the link;
* per-link **utilization** ``rho = load / bandwidth``;
* per-flow **queueing wait** on each link, M/M/1-style
  ``rho / (1 - rho) * service_time`` (linearized past a utilization
  cap so the cost stays finite, monotone and convex even when a link
  is offered more than its capacity), or a budget-style overload
  penalty;
* per-device **effective delay** — the unloaded routed-path delay plus
  the queueing waits of every link on the path.

The solver-facing total cost is the sum of per-device effective
delays, reorganized as a sum of *per-link* terms::

    total = sum_i base[i, a(i)]  +  sum_l  n_l * wait_l(load_l)

where ``n_l`` counts the flows crossing link ``l``.  Both ``load_l``
and ``n_l`` change only on the links of the paths a move touches, so a
shift or swap re-prices O(links-on-path) links instead of the whole
network — the :class:`IncrementalEvaluator` below is what makes
congestion-aware local search affordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.contention.incidence import PathIncidence, build_incidence
from repro.errors import ContentionError
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED, Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.topology.delay import DEFAULT_PACKET_BITS, DelayModel
from repro.utils.validation import check_positive, require


@dataclass(frozen=True)
class ContentionConfig:
    """Knobs of the congestion penalty.

    Attributes
    ----------
    packet_bits:
        Reference packet size; a device's flow rate is
        ``rate_hz * packet_bits * flow_scale`` bits/second.
    mode:
        ``"mm1"`` — queueing wait ``rho/(1-rho) * service_time`` per
        link traversal, linearized past :attr:`utilization_cap`;
        ``"budget"`` — zero below capacity, ``overload_penalty_s``
        scaled by the relative overload above it (the shared-bottleneck
        budget formulation).
    utilization_cap:
        Where the M/M/1 curve switches to its tangent line.  Keeps the
        cost finite at ``rho >= 1`` while preserving value, slope,
        monotonicity and convexity.
    overload_penalty_s:
        Budget-mode penalty (seconds per traversal per unit of
        relative overload).
    flow_scale:
        Multiplier on every device's flow.  Experiments use it to
        position the saturation knee inside an oversubscription sweep
        without touching the simulator-facing device rates.
    """

    packet_bits: float = DEFAULT_PACKET_BITS
    mode: str = "mm1"
    utilization_cap: float = 0.95
    overload_penalty_s: float = 0.05
    flow_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive(self.packet_bits, "packet_bits")
        require(self.mode in ("mm1", "budget"),
                f"unknown contention mode {self.mode!r}")
        require(0.0 < self.utilization_cap < 1.0,
                f"utilization_cap must be in (0, 1), got {self.utilization_cap}")
        check_positive(self.overload_penalty_s, "overload_penalty_s")
        check_positive(self.flow_scale, "flow_scale")


@dataclass(frozen=True)
class ContentionEvaluation:
    """Full evaluation of one assignment under the contention model."""

    total_cost: float
    base_total: float
    contention_total: float
    effective_delay: np.ndarray
    link_load: np.ndarray
    link_flows: np.ndarray
    utilization: np.ndarray

    @property
    def p99_effective_delay(self) -> float:
        """99th percentile of per-device effective delay (seconds)."""
        return float(np.percentile(self.effective_delay, 99))

    @property
    def mean_effective_delay(self) -> float:
        """Mean per-device effective delay (seconds)."""
        return float(np.mean(self.effective_delay))

    @property
    def max_utilization(self) -> float:
        """Utilization of the most loaded link."""
        return float(np.max(self.utilization)) if self.utilization.size else 0.0

    @property
    def saturated_links(self) -> int:
        """Number of links offered at least their capacity."""
        return int(np.sum(self.utilization >= 1.0))


class ContentionModel:
    """Exact oracle for the flow-based cost of an assignment.

    Holds the routed incidence, per-device flows, and the per-link wait
    curve; :class:`IncrementalEvaluator` layers O(links-on-path) move
    deltas on top of it.
    """

    def __init__(
        self,
        problem: AssignmentProblem,
        config: "ContentionConfig | None" = None,
        delay_model: "DelayModel | None" = None,
        incidence: "PathIncidence | None" = None,
    ) -> None:
        self.problem = problem
        self.config = config if config is not None else ContentionConfig()
        self.incidence = (
            incidence if incidence is not None
            else build_incidence(problem, delay_model)
        )
        if problem.devices is None:
            raise ContentionError("contention model needs device entities")
        self.flows = np.array(
            [
                d.rate_hz * self.config.packet_bits * self.config.flow_scale
                for d in problem.devices
            ],
            dtype=np.float64,
        )
        #: per-traversal service time of the reference packet, per link
        self.service_s = self.config.packet_bits / self.incidence.bandwidth
        cap = self.config.utilization_cap
        self._cap_value = cap / (1.0 - cap)
        self._cap_slope = 1.0 / (1.0 - cap) ** 2

    # ------------------------------------------------------------------
    # per-link physics
    # ------------------------------------------------------------------
    def link_wait(self, load: np.ndarray) -> np.ndarray:
        """Per-traversal queueing wait (seconds) of each link at ``load``.

        Vectorized over the link axis; also accepts scalars.
        """
        rho = load / self.incidence.bandwidth
        if self.config.mode == "budget":
            return self.config.overload_penalty_s * np.maximum(0.0, rho - 1.0)
        cap = self.config.utilization_cap
        factor = np.where(
            rho < cap,
            rho / np.maximum(1.0 - rho, 1e-12),
            self._cap_value + self._cap_slope * (rho - cap),
        )
        return factor * self.service_s

    def _link_cost(self, load: float, flows: int, index: int) -> float:
        """Solver-objective term of one link: flows × per-traversal wait."""
        if flows == 0:
            return 0.0
        rho = load / self.incidence.bandwidth[index]
        if self.config.mode == "budget":
            wait = self.config.overload_penalty_s * max(0.0, rho - 1.0)
        else:
            cap = self.config.utilization_cap
            if rho < cap:
                factor = rho / max(1.0 - rho, 1e-12)
            else:
                factor = self._cap_value + self._cap_slope * (rho - cap)
            wait = factor * self.service_s[index]
        return flows * wait

    # ------------------------------------------------------------------
    # exact recompute oracle
    # ------------------------------------------------------------------
    def link_loads(self, vector: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Offered load (bits/s) and flow count per link under ``vector``."""
        load = np.zeros(self.incidence.n_links, dtype=np.float64)
        count = np.zeros(self.incidence.n_links, dtype=np.int64)
        for device, server in enumerate(vector):
            if server == UNASSIGNED:
                continue
            indices = self.incidence.path_links[device][server]
            load[indices] += self.flows[device]
            count[indices] += 1
        return load, count

    def utilization(self, vector: np.ndarray) -> np.ndarray:
        """Per-link utilization ``load / bandwidth`` under ``vector``."""
        load, _ = self.link_loads(vector)
        return load / self.incidence.bandwidth

    def total_cost(self, vector: np.ndarray) -> float:
        """Exact solver objective: base delays plus per-link congestion."""
        load, count = self.link_loads(vector)
        assigned = vector != UNASSIGNED
        base = float(
            np.sum(self.incidence.base_delay[np.nonzero(assigned)[0],
                                             vector[assigned]])
        )
        contention = float(np.sum(count * self.link_wait(load)))
        return base + contention

    def evaluate(self, vector: np.ndarray) -> ContentionEvaluation:
        """Full exact evaluation: totals, per-device delays, link stats."""
        load, count = self.link_loads(vector)
        wait = self.link_wait(load)
        utilization = load / self.incidence.bandwidth
        effective = np.zeros(len(vector), dtype=np.float64)
        base_total = 0.0
        for device, server in enumerate(vector):
            if server == UNASSIGNED:
                continue
            base = self.incidence.base_delay[device, server]
            base_total += base
            indices = self.incidence.path_links[device][server]
            effective[device] = base + float(np.sum(wait[indices]))
        contention_total = float(np.sum(count * wait))
        registry = obs_runtime.metrics()
        registry.counter(obs_names.CONTENTION_EVALUATIONS).inc()
        if utilization.size:
            registry.gauge(obs_names.CONTENTION_MAX_UTILIZATION).set(
                float(np.max(utilization))
            )
            registry.gauge(obs_names.CONTENTION_SATURATED_LINKS).set(
                int(np.sum(utilization >= 1.0))
            )
        return ContentionEvaluation(
            total_cost=base_total + contention_total,
            base_total=base_total,
            contention_total=contention_total,
            effective_delay=effective,
            link_load=load,
            link_flows=count,
            utilization=utilization,
        )

    def evaluate_assignment(self, assignment: Assignment) -> ContentionEvaluation:
        """Convenience wrapper over :meth:`evaluate`."""
        return self.evaluate(assignment.vector)

    def bottleneck_links(
        self, vector: np.ndarray, top: int = 5
    ) -> list[dict]:
        """The ``top`` most-utilized links, as report-ready dicts."""
        load, count = self.link_loads(vector)
        utilization = load / self.incidence.bandwidth
        order = np.argsort(-utilization, kind="stable")[:top]
        rows = []
        for idx in order:
            link = self.incidence.links[int(idx)]
            rows.append({
                "u": link.u,
                "v": link.v,
                "bandwidth_bps": float(link.bandwidth_bps),
                "load_bps": float(load[idx]),
                "utilization": float(utilization[idx]),
                "flows": int(count[idx]),
            })
        return rows


@dataclass
class IncrementalEvaluator:
    """Running link state with O(links-on-path) move/swap deltas.

    Maintains per-link load, flow count and congestion cost for one
    assignment vector.  ``shift_delta`` / ``swap_delta`` price a move
    by re-costing only the links the affected paths traverse;
    ``apply_*`` commit it.  The running :attr:`total_cost` always
    equals ``ContentionModel.total_cost`` of the same vector (the
    Hypothesis suite pins this to ~1e-9 relative).
    """

    model: ContentionModel
    vector: np.ndarray
    load: np.ndarray = field(init=False)
    count: np.ndarray = field(init=False)
    link_cost: np.ndarray = field(init=False)
    total_cost: float = field(init=False)

    def __post_init__(self) -> None:
        self.vector = np.asarray(self.vector, dtype=np.int64).copy()
        self.load, self.count = self.model.link_loads(self.vector)
        wait = self.model.link_wait(self.load)
        self.link_cost = self.count * wait
        assigned = self.vector != UNASSIGNED
        base = float(
            np.sum(self.model.incidence.base_delay[np.nonzero(assigned)[0],
                                                   self.vector[assigned]])
        )
        self.total_cost = base + float(np.sum(self.link_cost))

    # ------------------------------------------------------------------
    def _path(self, device: int, server: int) -> np.ndarray:
        if server == UNASSIGNED:
            return _EMPTY
        return self.model.incidence.path_links[device][server]

    def _changes(self, moves: list[tuple[int, int, int]]) -> dict[int, tuple[float, int]]:
        """Net (load, flow-count) change per affected link for ``moves``.

        Each move is ``(device, from_server, to_server)``.  Links shared
        by a device's old and new path net out to zero and drop from
        the re-pricing entirely.
        """
        changes: dict[int, tuple[float, int]] = {}
        for device, old, new in moves:
            flow = self.model.flows[device]
            for idx in self._path(device, old):
                d_load, d_count = changes.get(idx, (0.0, 0))
                changes[idx] = (d_load - flow, d_count - 1)
            for idx in self._path(device, new):
                d_load, d_count = changes.get(idx, (0.0, 0))
                changes[idx] = (d_load + flow, d_count + 1)
        return changes

    def _cost_delta(self, changes: dict[int, tuple[float, int]]) -> float:
        delta = 0.0
        for idx, (d_load, d_count) in changes.items():
            if d_load == 0.0 and d_count == 0:
                continue
            new_cost = self.model._link_cost(
                self.load[idx] + d_load, int(self.count[idx]) + d_count, idx
            )
            delta += new_cost - self.link_cost[idx]
        return delta

    def _base_delta(self, device: int, old: int, new: int) -> float:
        base = self.model.incidence.base_delay
        delta = 0.0
        if new != UNASSIGNED:
            delta += base[device, new]
        if old != UNASSIGNED:
            delta -= base[device, old]
        return delta

    def _commit(self, changes: dict[int, tuple[float, int]]) -> None:
        for idx, (d_load, d_count) in changes.items():
            self.load[idx] += d_load
            self.count[idx] += d_count
            self.link_cost[idx] = self.model._link_cost(
                self.load[idx], int(self.count[idx]), idx
            )
        obs_runtime.metrics().counter(obs_names.CONTENTION_DELTA_EVALS).inc()

    # ------------------------------------------------------------------
    def shift_delta(self, device: int, server: int) -> float:
        """Cost change of reassigning ``device`` to ``server``."""
        current = int(self.vector[device])
        if current == server:
            return 0.0
        moves = [(device, current, server)]
        return (self._base_delta(device, current, server)
                + self._cost_delta(self._changes(moves)))

    def apply_shift(self, device: int, server: int) -> None:
        """Commit a shift, updating link state and the running total."""
        current = int(self.vector[device])
        if current == server:
            return
        moves = [(device, current, server)]
        changes = self._changes(moves)
        self.total_cost += (self._base_delta(device, current, server)
                            + self._cost_delta(changes))
        self._commit(changes)
        self.vector[device] = server

    def swap_delta(self, first: int, second: int) -> float:
        """Cost change of exchanging the servers of two devices."""
        a = int(self.vector[first])
        b = int(self.vector[second])
        if a == b:
            return 0.0
        moves = [(first, a, b), (second, b, a)]
        return (self._base_delta(first, a, b)
                + self._base_delta(second, b, a)
                + self._cost_delta(self._changes(moves)))

    def apply_swap(self, first: int, second: int) -> None:
        """Commit a swap, updating link state and the running total."""
        a = int(self.vector[first])
        b = int(self.vector[second])
        if a == b:
            return
        moves = [(first, a, b), (second, b, a)]
        changes = self._changes(moves)
        self.total_cost += (self._base_delta(first, a, b)
                            + self._base_delta(second, b, a)
                            + self._cost_delta(changes))
        self._commit(changes)
        self.vector[first] = b
        self.vector[second] = a


_EMPTY = np.asarray([], dtype=np.intp)

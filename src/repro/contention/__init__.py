"""Bandwidth- and contention-aware cost model (``repro.contention``).

Prices an assignment by the load it actually offers to shared links —
``effective_delay = propagation + transmission + contention`` — with an
exact recompute oracle, an O(links-on-path) incremental evaluator for
move/swap neighbourhoods, and congestion-aware solver variants.  See
``docs/cost_model.md`` for the model and the tail-amplification
crossover it reproduces.
"""

from repro.contention.incidence import PathIncidence, build_incidence
from repro.contention.model import (
    ContentionConfig,
    ContentionEvaluation,
    ContentionModel,
    IncrementalEvaluator,
)
from repro.contention.objective import ContentionObjective
from repro.contention.solvers import (
    CongestionBottleneckSolver,
    CongestionGreedySolver,
    CongestionLocalSearchSolver,
)

__all__ = [
    "PathIncidence",
    "build_incidence",
    "ContentionConfig",
    "ContentionEvaluation",
    "ContentionModel",
    "ContentionObjective",
    "IncrementalEvaluator",
    "CongestionBottleneckSolver",
    "CongestionGreedySolver",
    "CongestionLocalSearchSolver",
]

"""Congestion-aware assignment solvers.

Variants of the greedy / local-search / bottleneck family that score
moves under the flow-based contention cost instead of the static delay
matrix, using :class:`~repro.contention.model.IncrementalEvaluator`
so every candidate move is priced in O(links-on-path).

All three degrade gracefully: on a matrix-only problem (no graph to
route over) they fall back to their delay-only counterpart's
construction, so the registry-wide solver contracts hold on every
instance kind.  Reported ``objective_value`` stays the standard
resolved objective (total delay by default) — the contention cost is
what the *search* minimizes, and the full evaluation is returned in
``extra`` for the experiment harness.
"""

from __future__ import annotations

import numpy as np

from repro.contention.model import (
    ContentionConfig,
    ContentionModel,
    IncrementalEvaluator,
)
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED, Assignment
from repro.solvers.base import Solver
from repro.solvers.greedy import feasible_start, greedy_feasible_assignment
from repro.utils.validation import require

#: capacity slack tolerance, matching the delay-only neighbourhood code
_EPS = 1e-12


class _CongestionSolver(Solver):
    """Shared plumbing: config handling and the matrix-only fallback."""

    def __init__(self, config: "ContentionConfig | None" = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.config = config if config is not None else ContentionConfig()

    def _has_topology(self, problem: AssignmentProblem) -> bool:
        return (
            problem.graph is not None
            and problem.devices is not None
            and problem.servers is not None
        )

    def _model(self, problem: AssignmentProblem) -> ContentionModel:
        return ContentionModel(problem, self.config)

    def _healthy(self, problem: AssignmentProblem) -> np.ndarray:
        return problem.healthy_mask()


def _greedy_construct(
    model: ContentionModel, problem: AssignmentProblem
) -> tuple[IncrementalEvaluator, np.ndarray, int]:
    """Decreasing-demand greedy scored by the incremental cost delta.

    Returns the evaluator (holding the built vector), the residual
    capacities, and the number of devices placed.
    """
    n, m = problem.n_devices, problem.n_servers
    evaluator = IncrementalEvaluator(
        model, np.full(n, UNASSIGNED, dtype=np.int64)
    )
    residual = problem.capacity.copy()
    healthy = problem.healthy_mask()
    order = np.argsort(-np.mean(problem.demand, axis=1), kind="stable")
    placed = 0
    for device in (int(d) for d in order):
        best_server = -1
        best_delta = np.inf
        for server in range(m):
            if not healthy[server]:
                continue
            if problem.demand[device, server] > residual[server] + _EPS:
                continue
            delta = evaluator.shift_delta(device, server)
            if delta < best_delta - 1e-15:
                best_delta = delta
                best_server = server
        if best_server < 0:
            continue  # unfittable: left unassigned, result will be infeasible
        evaluator.apply_shift(device, best_server)
        residual[best_server] -= problem.demand[device, best_server]
        placed += 1
    return evaluator, residual, placed


class CongestionGreedySolver(_CongestionSolver):
    """Greedy construction scored by the flow-based effective delay.

    Devices are placed in decreasing mean-demand order; each takes the
    fitting server whose *marginal* cost — base path delay plus the
    congestion its flow adds to every link it would cross — is lowest.
    Unlike the delay-only greedy it naturally spreads flows away from
    uplinks that earlier placements already loaded.
    """

    name = "congestion_greedy"

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        if not self._has_topology(problem):
            with self.phase("construct"):
                assignment = greedy_feasible_assignment(problem)
            return assignment, {"iterations": 0, "fallback": "greedy"}
        with self.phase("route"):
            model = self._model(problem)
        with self.phase("construct"):
            evaluator, _, placed = _greedy_construct(model, problem)
        return (
            Assignment(problem, evaluator.vector),
            {"iterations": placed, "contention_cost": evaluator.total_cost},
        )


class CongestionLocalSearchSolver(_CongestionSolver):
    """Best-improvement shift/swap descent on the contention cost.

    Identical neighbourhood and feasibility rules to
    :class:`~repro.solvers.local_search.LocalSearchSolver`, but move
    deltas come from the incremental link re-pricing, so the search
    actively drains saturated links — the configuration that wins the
    p99 tail once oversubscription passes the knee.
    """

    name = "congestion_local_search"

    def __init__(self, use_swaps: bool = True, max_passes: int = 200, **kwargs) -> None:
        super().__init__(**kwargs)
        require(max_passes >= 1, "max_passes must be >= 1")
        self.use_swaps = use_swaps
        self.max_passes = max_passes

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        if not self._has_topology(problem):
            with self.phase("construct"):
                assignment = feasible_start(problem, rng)
            return assignment, {"iterations": 0, "fallback": "local_search"}
        with self.phase("route"):
            model = self._model(problem)
        with self.phase("construct"):
            evaluator, _, _ = _greedy_construct(model, problem)
            if np.any(evaluator.vector == UNASSIGNED):
                # congestion greedy could not complete; retry from the
                # delay-only feasibility chain before giving up
                fallback = feasible_start(problem, rng)
                if not fallback.is_complete:
                    return fallback, {"iterations": 0}
                evaluator = IncrementalEvaluator(model, fallback.vector)
        vector = evaluator.vector
        loads = Assignment(problem, vector.copy()).loads()
        n, m = problem.n_devices, problem.n_servers
        healthy = problem.healthy_mask()
        passes = 0
        moves = 0
        improved = True
        with self.phase("descend"):
            while improved and passes < self.max_passes:
                passes += 1
                improved = False
                best_delta = -1e-15
                best_move = None
                for device in range(n):
                    current = int(vector[device])
                    for server in range(m):
                        if server == current or not healthy[server]:
                            continue
                        if (loads[server] + problem.demand[device, server]
                                > problem.capacity[server] + _EPS):
                            continue
                        delta = evaluator.shift_delta(device, server)
                        if delta < best_delta:
                            best_delta = delta
                            best_move = ("shift", device, server)
                if self.use_swaps:
                    for a in range(n):
                        for b in range(a + 1, n):
                            sa, sb = int(vector[a]), int(vector[b])
                            if sa == sb:
                                continue
                            load_a = (loads[sa] - problem.demand[a, sa]
                                      + problem.demand[b, sa])
                            load_b = (loads[sb] - problem.demand[b, sb]
                                      + problem.demand[a, sb])
                            if (load_a > problem.capacity[sa] + _EPS
                                    or load_b > problem.capacity[sb] + _EPS):
                                continue
                            delta = evaluator.swap_delta(a, b)
                            if delta < best_delta:
                                best_delta = delta
                                best_move = ("swap", a, b)
                if best_move is not None:
                    kind, x, y = best_move
                    if kind == "shift":
                        current = int(vector[x])
                        loads[current] -= problem.demand[x, current]
                        loads[y] += problem.demand[x, y]
                        evaluator.apply_shift(x, y)
                    else:
                        sa, sb = int(vector[x]), int(vector[y])
                        loads[sa] += problem.demand[y, sa] - problem.demand[x, sa]
                        loads[sb] += problem.demand[x, sb] - problem.demand[y, sb]
                        evaluator.apply_swap(x, y)
                    moves += 1
                    improved = True
        return (
            Assignment(problem, vector),
            {
                "iterations": moves,
                "passes": passes,
                "contention_cost": evaluator.total_cost,
            },
        )


class CongestionBottleneckSolver(_CongestionSolver):
    """Min-max link utilization: drain the worst uplink first.

    Starts from the congestion-greedy construction, then repeatedly
    finds the most-utilized link and tries to move one device whose
    path crosses it to a feasible server that lowers the network-wide
    maximum utilization (tie-broken by total contention cost).  Stops
    when no such move exists.  This is the budget-formulation
    ``min max_j sum flow/bw`` heuristic from the shared-bottleneck
    model.
    """

    name = "congestion_bottleneck"

    def __init__(self, max_moves: int = 200, **kwargs) -> None:
        super().__init__(**kwargs)
        require(max_moves >= 1, "max_moves must be >= 1")
        self.max_moves = max_moves

    def _solve(self, problem: AssignmentProblem, rng) -> tuple[Assignment, dict]:
        if not self._has_topology(problem):
            with self.phase("construct"):
                assignment = greedy_feasible_assignment(problem)
            return assignment, {"iterations": 0, "fallback": "greedy"}
        with self.phase("route"):
            model = self._model(problem)
        with self.phase("construct"):
            evaluator, residual, _ = _greedy_construct(model, problem)
        vector = evaluator.vector
        healthy = problem.healthy_mask()
        bandwidth = model.incidence.bandwidth
        moves = 0
        with self.phase("drain"):
            for _ in range(self.max_moves):
                utilization = evaluator.load / bandwidth
                if utilization.size == 0:
                    break
                worst = int(np.argmax(utilization))
                worst_util = float(utilization[worst])
                if worst_util <= 0.0:
                    break
                best = None  # (new_max, cost_delta, device, server)
                for device in range(problem.n_devices):
                    server = int(vector[device])
                    if server == UNASSIGNED:
                        continue
                    if worst not in model.incidence.path_links[device][server]:
                        continue
                    for target in range(problem.n_servers):
                        if target == server or not healthy[target]:
                            continue
                        if (problem.demand[device, target]
                                > residual[target] + _EPS):
                            continue
                        delta = evaluator.shift_delta(device, target)
                        changes = evaluator._changes([(device, server, target)])
                        new_max = 0.0
                        for idx, (d_load, _) in changes.items():
                            new_max = max(
                                new_max,
                                (evaluator.load[idx] + d_load) / bandwidth[idx],
                            )
                        untouched = np.delete(
                            utilization, list(changes.keys())
                        ) if changes else utilization
                        if untouched.size:
                            new_max = max(new_max, float(np.max(untouched)))
                        candidate = (new_max, delta, device, target)
                        if best is None or candidate < best:
                            best = candidate
                if best is None or best[0] >= worst_util - 1e-12:
                    break
                _, _, device, target = best
                source = int(vector[device])
                residual[source] += problem.demand[device, source]
                residual[target] -= problem.demand[device, target]
                evaluator.apply_shift(device, target)
                moves += 1
        max_util = (
            float(np.max(evaluator.load / bandwidth)) if bandwidth.size else 0.0
        )
        return (
            Assignment(problem, vector),
            {
                "iterations": moves,
                "contention_cost": evaluator.total_cost,
                "max_utilization": max_util,
            },
        )

"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
catching unrelated bugs::

    try:
        result = solver.solve(problem)
    except repro.errors.ReproError as exc:
        log.warning("solver failed: %s", exc)
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument or data structure failed validation.

    Also a :class:`ValueError` so that generic callers relying on
    standard exception types keep working.
    """


class TopologyError(ReproError):
    """A network topology is malformed or an operation on it is invalid.

    Examples: querying a link that does not exist, generating a graph
    with contradictory parameters, or routing between disconnected
    components.
    """


class RoutingError(TopologyError):
    """No route exists between two nodes that must communicate."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no route from node {source} to node {target}")
        self.source = source
        self.target = target


class InfeasibleProblemError(ReproError):
    """The problem instance admits no feasible assignment at all.

    Raised by exact solvers when they prove infeasibility, and by
    instance generators when asked for parameters that cannot produce
    a feasible instance.
    """


class InfeasibleSolutionError(ReproError):
    """A solution violates a hard constraint (capacity or completeness)."""


class SolverError(ReproError):
    """A solver failed to run (bad configuration, internal failure)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an invalid state."""


class EngineError(ReproError):
    """The sweep execution engine failed to run a job set.

    Raised when jobs crash or time out (the message lists every failed
    job), or when an engine configuration is invalid.
    """


class JobTimeoutError(EngineError):
    """A single job exceeded its per-job timeout."""


class SerializationError(ReproError):
    """A problem/solution/trace could not be (de)serialized."""


class ShardError(ReproError):
    """The sharded serving tier failed (routing, backend, or plan)."""


class ShardUnavailableError(ShardError):
    """A shard backend cannot take requests right now (down or circuit open)."""


class DeadlineExceededError(ReproError):
    """A request's absolute deadline passed before the awaited step finished.

    Raised by the deadline-bounded awaits on the serve/shard request
    path (:mod:`repro.serve.deadline`) so a slow hop fails fast and
    typed instead of hanging the caller.
    """


class ContentionError(ReproError):
    """The flow-based contention model cannot be built or evaluated.

    Raised when a problem lacks the topology backing (graph, entity
    lists) the link-level cost model needs, or when a configuration is
    internally inconsistent.
    """


class NetemError(ReproError):
    """A network-emulation script or engine operation is invalid."""


class WalError(ReproError):
    """The assignment write-ahead log is corrupt or cannot be replayed."""

"""Argument parsing and dispatch for the repro CLI."""

from __future__ import annotations

import argparse
import sys

import repro
from repro.cli import commands
from repro.cluster.online import ONLINE_RULES
from repro.serve.loadtest import PROFILES
from repro.solvers.registry import available_solvers
from repro.topology.generators import TOPOLOGY_FAMILIES
from repro.topology.placement import PLACEMENT_STRATEGIES


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed for tests and shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Topology Aware Cluster Configuration for edge computing "
            "(ICDCS 2022 reproduction)"
        ),
    )
    parser.add_argument("--version", action="version", version=repro.__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flag(subparser) -> None:
        """Commands that do real work can stream telemetry to a file."""
        subparser.add_argument(
            "--obs",
            default=None,
            metavar="PATH",
            help="enable observability and write the metrics/span JSONL here "
            "(render it with `repro obs PATH`)",
        )
        subparser.add_argument(
            "--ledger",
            default=None,
            metavar="PATH",
            help="append run-lifecycle events (jobs, cache hits, faults, "
            "retries) as JSONL here (summarize with `repro ledger PATH`)",
        )

    def add_trace_flags(subparser) -> None:
        """Serving-tier commands can export distributed-trace spans."""
        subparser.add_argument(
            "--trace-dir",
            default=None,
            metavar="DIR",
            help="export trace spans as per-process JSONL files under DIR "
            "(stitch them with `repro trace DIR`)",
        )
        subparser.add_argument(
            "--trace-sample",
            type=float,
            default=1.0,
            metavar="RATE",
            help="head-based sampling rate in [0, 1]; the decision is "
            "seeded and rides the wire, so a trace is either recorded "
            "everywhere or nowhere (default: 1.0)",
        )

    def add_engine_flags(subparser) -> None:
        """Sweep-shaped commands can fan out on the execution engine."""
        subparser.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for sweep cells (default: 1 = serial)",
        )
        subparser.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed result cache directory; re-runs with "
            "identical parameters are answered from disk (off unless set)",
        )
        subparser.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir: recompute every cell and write nothing",
        )
        subparser.add_argument(
            "--profile",
            action="store_true",
            help="run every executed cell under cProfile and print a top-15 "
            "cumulative-time table (cache hits are not profiled)",
        )

    generate = sub.add_parser("generate", help="generate an instance JSON")
    generate.add_argument("--output", required=True, help="path for the instance JSON")
    generate.add_argument(
        "--kind",
        choices=["topology", "random", "gap"],
        default="topology",
        help="instance pipeline (default: topology)",
    )
    generate.add_argument(
        "--family", choices=sorted(TOPOLOGY_FAMILIES), default="random_geometric"
    )
    generate.add_argument("--routers", type=int, default=50)
    generate.add_argument("--devices", type=int, default=60)
    generate.add_argument("--servers", type=int, default=6)
    generate.add_argument("--tightness", type=float, default=0.75)
    generate.add_argument(
        "--placement", choices=sorted(PLACEMENT_STRATEGIES), default="spread"
    )
    generate.add_argument("--gap-class", choices=["a", "b", "c", "d"], default="c")
    generate.add_argument("--deadline", type=float, default=None,
                          help="per-device deadline in seconds")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=commands.cmd_generate)

    solve = sub.add_parser("solve", help="solve an instance file")
    solve.add_argument("instance", help="instance JSON from `repro generate`")
    solve.add_argument("--solver", default="tacc", choices=available_solvers())
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--episodes", type=int, default=None,
                       help="episode budget for RL solvers")
    solve.add_argument("--output", default=None,
                       help="write the assignment vector JSON here")
    add_obs_flag(solve)
    solve.set_defaults(handler=commands.cmd_solve)

    compare = sub.add_parser("compare", help="run a solver field on one instance")
    compare.add_argument("instance")
    compare.add_argument(
        "--solvers",
        default="greedy,regret,local_search,lp_rounding,tacc",
        help="comma-separated registry names",
    )
    compare.add_argument("--seed", type=int, default=0)
    add_obs_flag(compare)
    add_engine_flags(compare)
    compare.set_defaults(handler=commands.cmd_compare)

    simulate = sub.add_parser(
        "simulate", help="replay a solved assignment in the DES (topology instances only)"
    )
    simulate.add_argument("--solver", default="tacc", choices=available_solvers())
    simulate.add_argument("--family", choices=sorted(TOPOLOGY_FAMILIES),
                          default="random_geometric")
    simulate.add_argument("--routers", type=int, default=40)
    simulate.add_argument("--devices", type=int, default=40)
    simulate.add_argument("--servers", type=int, default=5)
    simulate.add_argument("--tightness", type=float, default=0.75)
    simulate.add_argument("--deadline", type=float, default=0.05)
    simulate.add_argument("--duration", type=float, default=30.0)
    simulate.add_argument("--rate-scale", type=float, default=1.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--faults",
        default=None,
        metavar="SCENARIO.json",
        help="fault scenario JSON to inject during the run "
        "(see docs/faults.md; examples/scenarios/ has samples)",
    )
    simulate.add_argument(
        "--dispatch",
        choices=["none", "retry", "failover"],
        default="failover",
        help="task re-dispatch policy under faults (default: failover)",
    )
    simulate.add_argument("--max-retries", type=int, default=3,
                          help="retry budget per task under faults")
    simulate.add_argument("--task-timeout", type=float, default=0.25,
                          help="per-attempt timeout in seconds under faults")
    add_obs_flag(simulate)
    simulate.set_defaults(handler=commands.cmd_simulate)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=["t1", "f2", "f3", "f4", "f5", "f6", "t2", "f7", "f8", "t3",
                 "x1", "x2", "x3", "x4", "x5", "x6", "x7"],
    )
    experiment.add_argument("--scale", choices=["quick", "full"], default="quick")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--json", default=None, help="also save the table here")
    add_obs_flag(experiment)
    add_engine_flags(experiment)
    experiment.set_defaults(handler=commands.cmd_experiment)

    def add_instance_flags(subparser) -> None:
        """Commands that build a serving instance share these knobs."""
        subparser.add_argument(
            "--instance", default=None, metavar="PATH",
            help="instance JSON from `repro generate` (overrides the "
            "topology parameters below)",
        )
        subparser.add_argument(
            "--family", choices=sorted(TOPOLOGY_FAMILIES),
            default="random_geometric",
        )
        subparser.add_argument("--routers", type=int, default=40)
        subparser.add_argument("--devices", type=int, default=120)
        subparser.add_argument("--servers", type=int, default=8)
        subparser.add_argument("--tightness", type=float, default=0.7)
        subparser.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the online assignment service (line-JSON over TCP)"
    )
    add_instance_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default: 0 = pick a free one and print it)")
    serve.add_argument("--rule", choices=ONLINE_RULES, default="reserve",
                       help="online assignment rule (default: reserve)")
    serve.add_argument("--headroom", type=float, default=0.85,
                       help="reserve-rule utilization headroom (default: 0.85)")
    serve.add_argument("--batch-max", type=int, default=32,
                       help="micro-batch size bound (default: 32)")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       help="micro-batch deadline in ms (default: 2.0)")
    serve.add_argument("--queue-max", type=int, default=1024,
                       help="admission hard queue bound (default: 1024)")
    serve.add_argument("--watermark", type=float, default=0.5,
                       help="queue fraction where low-priority shedding starts "
                       "(default: 0.5)")
    serve.add_argument("--reopt-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="run the background re-optimization loop every "
                       "SECONDS (default: off)")
    serve.add_argument("--reopt-solver", default="local_search",
                       choices=available_solvers(),
                       help="solver for re-optimization snapshots "
                       "(default: local_search)")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="stop after this long (default: run until "
                       "SIGINT/SIGTERM)")
    serve.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="journal every assignment mutation here and "
                       "replay it on restart (default: no durability)")
    serve.add_argument("--snapshot-every", type=int, default=256,
                       metavar="N",
                       help="roll a WAL snapshot every N records "
                       "(default: 256)")
    add_obs_flag(serve)
    add_trace_flags(serve)
    serve.set_defaults(handler=commands.cmd_serve)

    loadtest = sub.add_parser(
        "loadtest", help="drive an assignment service and measure latency"
    )
    loadtest.add_argument("--host", default="127.0.0.1")
    loadtest.add_argument("--port", type=int, default=None,
                          help="port of a running `repro serve` (omit with "
                          "--in-process)")
    loadtest.add_argument("--in-process", action="store_true",
                          help="spin up the service inside the load generator "
                          "(measures the service without the TCP hop)")
    add_instance_flags(loadtest)
    loadtest.add_argument("--requests", type=int, default=1000,
                          help="total requests to issue (default: 1000)")
    loadtest.add_argument("--rate", type=float, default=2000.0,
                          help="offered rate in req/s for open-loop profiles "
                          "(default: 2000)")
    loadtest.add_argument("--profile", choices=sorted(PROFILES),
                          default="poisson",
                          help="arrival profile (default: poisson)")
    loadtest.add_argument("--concurrency", type=int, default=32,
                          help="closed-loop worker count (default: 32)")
    loadtest.add_argument("--release-ratio", type=float, default=0.45,
                          help="fraction of ops that release a held device "
                          "(default: 0.45)")
    loadtest.add_argument("--load-seed", type=int, default=0,
                          help="seed for the load generator's RNG (default: 0)")
    loadtest.add_argument("--deadline-ms", type=float, default=None,
                          metavar="BUDGET",
                          help="stamp every request with this absolute "
                          "deadline budget and report per-request "
                          "remaining-at-completion (default: none)")
    loadtest.add_argument("--json", default=None, metavar="PATH",
                          help="also save the report JSON here")
    add_obs_flag(loadtest)
    add_trace_flags(loadtest)
    loadtest.set_defaults(handler=commands.cmd_loadtest)

    shard = sub.add_parser(
        "shard", help="topology-sharded serving tier (plan/serve/router/loadtest)"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    def add_shard_flags(subparser) -> None:
        """Flags that pin the deterministic shard plan."""
        add_instance_flags(subparser)
        subparser.add_argument("--shards", type=int, default=3,
                               help="requested shard count (default: 3; "
                               "empty shards are eliminated)")
        subparser.add_argument("--vnodes", type=int, default=64,
                               help="virtual nodes per shard on the hash ring "
                               "(default: 64)")
        subparser.add_argument("--plan-seed", type=int, default=0,
                               help="seed of the consistent-hash ring "
                               "(default: 0)")

    shard_plan = shard_sub.add_parser(
        "plan", help="print the deterministic region -> shard cut"
    )
    add_shard_flags(shard_plan)
    shard_plan.add_argument("--json", default=None, metavar="PATH",
                            help="also save the plan JSON here")
    shard_plan.set_defaults(handler=commands.cmd_shard_plan)

    shard_serve = shard_sub.add_parser(
        "serve", help="serve one shard's slice of the cluster over TCP"
    )
    add_shard_flags(shard_serve)
    shard_serve.add_argument("--shard", required=True, metavar="NAME",
                             help="shard to serve (e.g. shard-0; see "
                             "`repro shard plan`)")
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument("--port", type=int, default=0,
                             help="TCP port (default: 0 = pick a free one "
                             "and print it)")
    shard_serve.add_argument("--rule", choices=ONLINE_RULES, default="reserve")
    shard_serve.add_argument("--headroom", type=float, default=0.85)
    shard_serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                             help="micro-batch deadline in ms (default: 2.0)")
    shard_serve.add_argument("--max-seconds", type=float, default=None,
                             help="stop after this long (default: run until "
                             "SIGINT/SIGTERM)")
    shard_serve.add_argument("--wal-dir", default=None, metavar="DIR",
                             help="journal this shard's mutations here and "
                             "replay them on restart (default: none)")
    shard_serve.add_argument("--snapshot-every", type=int, default=256,
                             metavar="N",
                             help="roll a WAL snapshot every N records "
                             "(default: 256)")
    add_trace_flags(shard_serve)
    shard_serve.set_defaults(handler=commands.cmd_shard_serve)

    shard_router = shard_sub.add_parser(
        "router", help="front running shard processes with a TCP router"
    )
    add_shard_flags(shard_router)
    shard_router.add_argument("--backend", action="append", default=[],
                              metavar="NAME=HOST:PORT",
                              help="address of one running shard "
                              "(repeat per shard)")
    shard_router.add_argument("--host", default="127.0.0.1")
    shard_router.add_argument("--port", type=int, default=0)
    shard_router.add_argument("--rebalance-interval", type=float, default=None,
                              metavar="SECONDS",
                              help="run the cross-shard rebalance loop every "
                              "SECONDS (default: off)")
    shard_router.add_argument("--max-seconds", type=float, default=None)
    shard_router.set_defaults(handler=commands.cmd_shard_router)

    shard_loadtest = shard_sub.add_parser(
        "loadtest",
        help="spawn a sharded cluster, load it, optionally kill a shard",
    )
    add_shard_flags(shard_loadtest)
    shard_loadtest.add_argument("--requests", type=int, default=1000)
    shard_loadtest.add_argument("--rate", type=float, default=2000.0)
    shard_loadtest.add_argument("--profile", choices=sorted(PROFILES),
                                default="poisson")
    shard_loadtest.add_argument("--concurrency", type=int, default=32)
    shard_loadtest.add_argument("--release-ratio", type=float, default=0.45)
    shard_loadtest.add_argument("--load-seed", type=int, default=0)
    shard_loadtest.add_argument("--batch-wait-ms", type=float, default=2.0)
    shard_loadtest.add_argument("--rebalance-interval", type=float,
                                default=None, metavar="SECONDS")
    shard_loadtest.add_argument("--kill-shard", type=int, default=None,
                                metavar="INDEX",
                                help="SIGKILL this shard index mid-run")
    shard_loadtest.add_argument("--kill-at", type=float, default=1.0,
                                metavar="SECONDS",
                                help="when to kill it (default: 1.0s)")
    shard_loadtest.add_argument("--repair-at", type=float, default=None,
                                metavar="SECONDS",
                                help="restart the killed shard at this time "
                                "(default: leave it dead)")
    shard_loadtest.add_argument("--scenario", default=None, metavar="PATH",
                                help="fault scenario JSON driving kills/"
                                "repairs (server = shard index)")
    shard_loadtest.add_argument("--netem", default=None, metavar="PATH",
                                help="network-emulation script JSON (or a "
                                "scenario with an embedded 'netem' object) "
                                "injecting on-wire drop/delay/partition "
                                "chaos between router and shards")
    shard_loadtest.add_argument("--wal-root", default=None, metavar="DIR",
                                help="give each shard a WAL under DIR so a "
                                "restarted shard replays its pre-crash "
                                "state (default: restart empty)")
    shard_loadtest.add_argument("--deadline-ms", type=float, default=None,
                                metavar="BUDGET",
                                help="absolute per-request deadline budget "
                                "stamped by the router (default: none)")
    shard_loadtest.add_argument("--no-hedge", action="store_true",
                                help="disable hedged requests and latency "
                                "ejection (the gray-failure baseline)")
    shard_loadtest.add_argument("--max-recovery-ms", type=float, default=None,
                                metavar="BOUND",
                                help="fail (exit 3) when any shard's WAL "
                                "replay takes longer than BOUND ms")
    shard_loadtest.add_argument("--window", type=float, default=0.5,
                                help="goodput timeline window in seconds "
                                "(default: 0.5)")
    shard_loadtest.add_argument("--min-goodput", type=float, default=None,
                                metavar="FLOOR",
                                help="fail (exit 3) when overall goodput "
                                "drops below FLOOR or any response errors")
    shard_loadtest.add_argument("--json", default=None, metavar="PATH",
                                help="also save the full report JSON here")
    add_trace_flags(shard_loadtest)
    shard_loadtest.set_defaults(handler=commands.cmd_shard_loadtest)

    trace = sub.add_parser(
        "trace",
        help="stitch per-process span files into waterfall/critical-path "
        "views",
    )
    trace.add_argument("trace_dir", nargs="?", default=None,
                       help="directory holding spans-*.jsonl files "
                       "(written by --trace-dir)")
    trace.add_argument("--trace-id", default=None, metavar="ID",
                       help="trace to render (default: list every trace)")
    trace.add_argument("--critical-path", action="store_true",
                       help="render the critical path instead of the "
                       "waterfall")
    trace.add_argument("--min-attribution", type=float, default=None,
                       metavar="FRAC",
                       help="with --critical-path: fail (exit 3) when less "
                       "than FRAC of end-to-end latency is attributed to "
                       "named spans (broken links or clock skew)")
    trace.add_argument("--overhead", nargs=2, default=None,
                       metavar=("TRACED.json", "UNTRACED.json"),
                       help="diff two loadtest report JSONs and bound the "
                       "tracing overhead on p99 latency")
    trace.add_argument("--max-overhead", type=float, default=None,
                       metavar="FRAC",
                       help="with --overhead: fail (exit 3) when the traced "
                       "p99 exceeds untraced * (1 + FRAC)")
    trace.set_defaults(handler=commands.cmd_trace)

    obs = sub.add_parser(
        "obs", help="render an observability JSONL file as an ASCII dashboard"
    )
    obs.add_argument("snapshot", help="JSONL file written by --obs")
    obs.add_argument("--width", type=int, default=64, help="chart width in columns")
    obs.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus text format instead of the dashboard",
    )
    obs.set_defaults(handler=commands.cmd_obs)

    ledger = sub.add_parser(
        "ledger", help="summarize a run-ledger JSONL file written by --ledger"
    )
    ledger.add_argument("path", help="JSONL file written by --ledger")
    ledger.add_argument(
        "--events",
        action="store_true",
        help="also print every event record, one line each",
    )
    ledger.set_defaults(handler=commands.cmd_ledger)

    perf = sub.add_parser(
        "perf", help="benchmark history: record runs, gate regressions"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    perf_record = perf_sub.add_parser(
        "record", help="run the perf probes and append results to the history"
    )
    perf_record.add_argument(
        "--history",
        default="benchmarks/results/history.jsonl",
        metavar="PATH",
        help="history JSONL to append to (default: benchmarks/results/history.jsonl)",
    )
    perf_record.add_argument(
        "--probes", default=None, metavar="NAMES",
        help="comma-separated probe subset (default: all probes)",
    )
    perf_record.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per probe; the minimum is recorded (default: 3)",
    )
    perf_record.add_argument(
        "--baseline", action="store_true",
        help="mark this record as the comparison baseline for `perf check`",
    )
    perf_record.set_defaults(handler=commands.cmd_perf_record)
    perf_check = perf_sub.add_parser(
        "check", help="measure now and compare against the recorded baseline"
    )
    perf_check.add_argument(
        "--history",
        default="benchmarks/results/history.jsonl",
        metavar="PATH",
        help="history JSONL holding the baseline",
    )
    perf_check.add_argument(
        "--probes", default=None, metavar="NAMES",
        help="comma-separated probe subset (default: all probes)",
    )
    perf_check.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per probe; the minimum is compared (default: 3)",
    )
    perf_check.add_argument(
        "--max-regression", type=float, default=0.5, metavar="FRAC",
        help="fail when a probe is slower than baseline * (1 + FRAC) "
        "(default: 0.5 = 50%% headroom)",
    )
    perf_check.set_defaults(handler=commands.cmd_perf_check)
    perf_list = perf_sub.add_parser(
        "list", help="show the recorded history and which record is the baseline"
    )
    perf_list.add_argument(
        "--history",
        default="benchmarks/results/history.jsonl",
        metavar="PATH",
        help="history JSONL to list",
    )
    perf_list.set_defaults(handler=commands.cmd_perf_list)

    report = sub.add_parser("report", help="render EXPERIMENTS.md from results")
    report.add_argument("--results", default="benchmarks/results/full")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--note", default="", help="scale note to embed")
    report.set_defaults(handler=commands.cmd_report)

    contention = sub.add_parser(
        "contention",
        help="per-link utilization report under the flow-based cost model",
    )
    contention.add_argument(
        "--family", choices=sorted(TOPOLOGY_FAMILIES), default="edge_hierarchy"
    )
    contention.add_argument("--routers", type=int, default=40)
    contention.add_argument("--devices", type=int, default=40)
    contention.add_argument("--servers", type=int, default=5)
    contention.add_argument("--tightness", type=float, default=0.8)
    contention.add_argument("--seed", type=int, default=0)
    contention.add_argument(
        "--oversubscription", type=float, default=8.0,
        help="bandwidth-thinning factor applied to tier-crossing uplinks "
        "(default: 8.0; 1.0 leaves the topology untouched)",
    )
    contention.add_argument(
        "--flow-scale", type=float, default=300.0,
        help="multiplier on every device's offered flow (default: 300.0)",
    )
    contention.add_argument(
        "--solver", default="congestion_local_search",
        choices=available_solvers(),
        help="configuration to evaluate (default: congestion_local_search)",
    )
    contention.add_argument(
        "--baseline", default="local_search", choices=available_solvers(),
        help="delay-only reference configuration (default: local_search)",
    )
    contention.add_argument(
        "--top", type=int, default=5,
        help="bottleneck links to list per configuration (default: 5)",
    )
    contention.add_argument("--json", default=None,
                            help="also write the comparison as JSON here")
    add_obs_flag(contention)
    contention.set_defaults(handler=commands.cmd_contention)

    inspect = sub.add_parser("inspect", help="difficulty diagnostics of an instance")
    inspect.add_argument("instance", help="instance JSON from `repro generate`")
    inspect.set_defaults(handler=commands.cmd_inspect)

    info = sub.add_parser("info", help="version and registered components")
    info.set_defaults(handler=commands.cmd_info)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    obs_path = getattr(args, "obs", None)
    ledger_path = getattr(args, "ledger", None)
    session = None
    if obs_path:
        from repro import obs as obs_module

        session = obs_module.enable()
    try:
        if ledger_path:
            from repro.obs import runtime as obs_runtime

            with obs_runtime.ledgered(ledger_path):
                code = args.handler(args)
            print(f"run ledger written to {ledger_path} "
                  f"(summarize with `repro ledger {ledger_path}`)")
            return code
        return args.handler(args)
    except repro.errors.ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if session is not None:
            from repro import obs as obs_module

            path = session.write_jsonl(obs_path)
            obs_module.disable()
            print(f"observability data written to {path} "
                  f"(render with `repro obs {path}`)")

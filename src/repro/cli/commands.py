"""Implementations of the CLI subcommands.

Each handler takes the parsed ``argparse.Namespace`` and returns an
exit code.  Handlers print human-readable tables; machine-readable
output goes to the ``--output``/``--json`` paths.
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path

import repro
from repro import obs
from repro.experiments.report import render_report
from repro.model.instances import gap_instance, random_instance, topology_instance
from repro.model.problem import AssignmentProblem
from repro.solvers.registry import available_solvers, get_solver
from repro.topology.generators import TOPOLOGY_FAMILIES
from repro.topology.placement import PLACEMENT_STRATEGIES
from repro.utils.rng import derive_seed
from repro.utils.tables import format_table


def _engine_options(args):
    """EngineOptions from the --jobs/--cache-dir/--no-cache/--profile flags.

    Returns ``None`` when the flags ask for the historical behavior
    (one in-process worker, no cache, no profiling) so those
    invocations skip the engine report line entirely.
    """
    jobs = getattr(args, "jobs", 1)
    cache_dir = getattr(args, "cache_dir", None)
    no_cache = getattr(args, "no_cache", False)
    profile = getattr(args, "profile", False)
    if jobs == 1 and (cache_dir is None or no_cache) and not profile:
        return None
    from repro.engine import EngineOptions

    return EngineOptions(
        jobs=jobs, cache_dir=cache_dir, no_cache=no_cache, profile=profile
    )


def _print_engine_report(engine) -> None:
    """Echo the engine summary (and profile, if collected) to stderr."""
    if engine is not None:
        from repro.engine import print_profile, print_report

        print_report(engine)
        print_profile(engine)


def _rl_kwargs(args) -> dict:
    """Optional solver overrides available on the command line."""
    kwargs = {}
    episodes = getattr(args, "episodes", None)
    if episodes is not None:
        kwargs["episodes"] = episodes
    return kwargs


def cmd_generate(args) -> int:
    """Build an instance and write its matrix form to JSON."""
    if args.kind == "topology":
        problem = topology_instance(
            family=args.family,
            n_routers=args.routers,
            n_devices=args.devices,
            n_servers=args.servers,
            tightness=args.tightness,
            placement=args.placement,
            seed=args.seed,
            deadline_s=args.deadline,
        )
    elif args.kind == "random":
        problem = random_instance(
            args.devices, args.servers, tightness=args.tightness, seed=args.seed
        )
    else:
        problem = gap_instance(
            args.devices, args.servers, klass=args.gap_class, seed=args.seed
        )
    Path(args.output).write_text(problem.to_json(), encoding="utf-8")
    print(
        f"wrote {problem.name}: {problem.n_devices} devices x "
        f"{problem.n_servers} servers (tightness {problem.tightness:.2f}) "
        f"to {args.output}"
    )
    if args.kind == "topology":
        print(
            "note: the JSON carries the matrix form only; `repro simulate` "
            "rebuilds topology instances from parameters instead"
        )
    return 0


def _load_problem(path: str) -> AssignmentProblem:
    return AssignmentProblem.from_json(Path(path).read_text(encoding="utf-8"))


def cmd_solve(args) -> int:
    """Solve one instance file and report the outcome."""
    problem = _load_problem(args.instance)
    solver = get_solver(args.solver, seed=args.seed, **_rl_kwargs(args))
    result = solver.solve(problem)
    print(
        format_table(
            ["solver", "total delay (ms)", "max delay (ms)", "max utilization",
             "feasible", "runtime (s)"],
            [[
                result.solver,
                result.objective_value * 1e3,
                result.assignment.max_delay() * 1e3,
                float(result.assignment.utilization().max()),
                result.feasible,
                result.runtime_s,
            ]],
        )
    )
    if args.output:
        Path(args.output).write_text(result.assignment.to_json(), encoding="utf-8")
        print(f"assignment written to {args.output}")
    return 0 if result.feasible else 2


def compare_cell(params: dict, seed: int) -> list[dict]:
    """One solver on one serialized instance — the ``compare`` engine cell."""
    problem = AssignmentProblem.from_json(params["instance_json"])
    solver = get_solver(params["solver"], seed=seed)
    result = solver.solve(problem)
    return [
        {
            "solver": params["solver"],
            "total_delay_ms": float(result.objective_value * 1e3),
            "feasible": bool(result.feasible),
            "runtime_s": float(result.runtime_s),
        }
    ]


def cmd_compare(args) -> int:
    """Run several solvers on one instance and print the comparison."""
    from repro.engine import JobSpec, run_jobs

    instance_json = Path(args.instance).read_text(encoding="utf-8")
    names = [name.strip() for name in args.solvers.split(",") if name.strip()]
    unknown = sorted(set(names) - set(available_solvers()))
    if unknown:
        print(f"error: unknown solvers {unknown}")
        return 1
    engine = _engine_options(args)
    specs = [
        JobSpec(
            experiment="compare",
            fn="repro.cli.commands:compare_cell",
            params={"solver": name, "instance_json": instance_json},
            seed=derive_seed(args.seed, name),
            label=f"compare {name}",
        )
        for name in names
    ]
    rows = [
        [cell["solver"], cell["total_delay_ms"], cell["feasible"], cell["runtime_s"]]
        for job_rows in run_jobs(specs, engine)
        for cell in job_rows
    ]
    rows.sort(key=lambda r: r[1])
    print(format_table(["solver", "total delay (ms)", "feasible", "runtime (s)"], rows))
    _print_engine_report(engine)
    return 0


def cmd_simulate(args) -> int:
    """Build a topology instance, solve it, replay it in the DES."""
    problem = topology_instance(
        family=args.family,
        n_routers=args.routers,
        n_devices=args.devices,
        n_servers=args.servers,
        tightness=args.tightness,
        seed=args.seed,
        deadline_s=args.deadline,
    )
    solver = get_solver(args.solver, seed=derive_seed(args.seed, "solver"))
    result = solver.solve(problem)
    if not result.assignment.is_complete:
        print("error: solver produced a partial assignment; nothing to simulate")
        return 2
    faults_path = getattr(args, "faults", None)
    if faults_path:
        from repro.faults import FaultScenario, RetryPolicy, simulate_with_faults

        scenario = FaultScenario.load(faults_path)
        report = simulate_with_faults(
            result.assignment,
            scenario,
            duration_s=args.duration,
            seed=derive_seed(args.seed, "sim"),
            mode=args.dispatch,
            policy=RetryPolicy(
                max_retries=args.max_retries, timeout_s=args.task_timeout
            ),
            rate_scale=args.rate_scale,
            window_s=max(1.0, args.duration / 20),
        )
    else:
        report = repro.simulate_assignment(
            result.assignment,
            duration_s=args.duration,
            seed=derive_seed(args.seed, "sim"),
            rate_scale=args.rate_scale,
        )
    rows = [
        ["solver", args.solver],
        ["static total delay (ms)", result.objective_value * 1e3],
        ["tasks completed", report.tasks_completed],
        ["mean network latency (ms)", report.mean_network_latency_ms],
        ["p99 end-to-end latency (ms)", report.p99_total_latency_ms],
        ["deadline miss rate", report.deadline_miss_rate
         if report.deadline_miss_rate is not None else "n/a"],
        ["max server utilization", max(report.server_utilization)],
    ]
    if faults_path:
        rows += [
            ["fault scenario", scenario.name],
            ["dispatch policy", args.dispatch],
            ["tasks lost", report.tasks_lost],
            ["timeouts / retries / failovers",
             f"{report.timeouts} / {report.retries} / {report.failovers}"],
            ["goodput", f"{report.goodput:.4f}"],
        ]
    print(format_table(["metric", "value"], rows))
    if faults_path and report.goodput_timeline:
        worst = min(report.goodput_timeline, key=lambda wg: wg[1])
        print(
            f"worst goodput window: {worst[1]:.3f} starting at t={worst[0]:.0f}s "
            f"({len(report.goodput_timeline)} windows)"
        )
    return 0


#: experiment short name -> module name
_EXPERIMENT_MODULES = {
    "t1": "t1_optimality",
    "f2": "f2_devices",
    "f3": "f3_servers",
    "f4": "f4_load",
    "f5": "f5_deadline",
    "f6": "f6_convergence",
    "t2": "t2_runtime",
    "f7": "f7_topology",
    "f8": "f8_dynamic",
    "t3": "t3_ablation",
    "x1": "x1_churn",
    "x2": "x2_placement",
    "x3": "x3_objective",
    "x4": "x4_noise",
    "x5": "x5_faults",
    "x6": "x6_chaos",
    "x7": "x7_contention",
}


def cmd_experiment(args) -> int:
    """Run one paper experiment and print its table."""
    module = importlib.import_module(
        f"repro.experiments.{_EXPERIMENT_MODULES[args.name]}"
    )
    engine = _engine_options(args)
    table = module.run(args.scale, seed=args.seed, engine=engine)
    print(table.to_text())
    _print_engine_report(engine)
    if args.json:
        table.save_json(args.json)
        print(f"\ndata written to {args.json}")
    return 0


def cmd_report(args) -> int:
    """Render EXPERIMENTS.md from benchmark results."""
    body = render_report(args.results, scale_note=args.note)
    Path(args.output).write_text(body, encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def cmd_contention(args) -> int:
    """Per-link utilization report: delay-only vs congestion-aware."""
    from repro.contention import ContentionConfig, ContentionModel

    problem = topology_instance(
        family=args.family,
        n_routers=args.routers,
        n_devices=args.devices,
        n_servers=args.servers,
        tightness=args.tightness,
        seed=args.seed,
        oversubscription=args.oversubscription,
    )
    config = ContentionConfig(flow_scale=args.flow_scale)
    model = ContentionModel(problem, config)
    names = [args.baseline, args.solver]
    payload = {"instance": problem.name,
               "oversubscription": args.oversubscription,
               "configurations": {}}
    summary_rows = []
    for name in names:
        kwargs = {"seed": derive_seed(args.seed, "solve", name)}
        if name.startswith("congestion_"):
            kwargs["config"] = config
        result = get_solver(name, **kwargs).solve(problem)
        evaluation = model.evaluate(result.assignment.vector)
        summary_rows.append([
            name,
            f"{evaluation.p99_effective_delay * 1e3:.3f}",
            f"{evaluation.mean_effective_delay * 1e3:.3f}",
            f"{evaluation.max_utilization:.3f}",
            evaluation.saturated_links,
            "yes" if result.feasible else "NO",
        ])
        bottlenecks = model.bottleneck_links(
            result.assignment.vector, top=args.top
        )
        payload["configurations"][name] = {
            "p99_effective_delay_s": evaluation.p99_effective_delay,
            "mean_effective_delay_s": evaluation.mean_effective_delay,
            "max_utilization": evaluation.max_utilization,
            "saturated_links": evaluation.saturated_links,
            "bottlenecks": bottlenecks,
        }
        print(f"\n{name}: top {len(bottlenecks)} bottleneck links")
        print(format_table(
            ["link", "bandwidth (Mbit/s)", "load (Mbit/s)", "utilization",
             "flows"],
            [[
                f"({row['u']}, {row['v']})",
                f"{row['bandwidth_bps'] / 1e6:.1f}",
                f"{row['load_bps'] / 1e6:.3f}",
                f"{row['utilization']:.3f}",
                row["flows"],
            ] for row in bottlenecks],
        ))
    print(f"\n{problem.name} @ {args.oversubscription:g}x oversubscription")
    print(format_table(
        ["configuration", "p99 eff. delay (ms)", "mean eff. delay (ms)",
         "max utilization", "saturated links", "feasible"],
        summary_rows,
    ))
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2),
                                   encoding="utf-8")
        print(f"\ndata written to {args.json}")
    return 0


def cmd_inspect(args) -> int:
    """Print the difficulty diagnostics of an instance file."""
    from repro.model.analysis import classify_difficulty, difficulty_report

    problem = _load_problem(args.instance)
    print(f"{problem.name}: {problem.n_devices} devices x {problem.n_servers} servers")
    print(f"difficulty class: {classify_difficulty(problem)}")
    rows = [[key, value] for key, value in difficulty_report(problem).items()]
    print(format_table(["diagnostic", "value"], rows))
    return 0


def _tracing_stack(args, process: str):
    """An ExitStack holding the --trace-dir recorder (empty when off).

    The span sink flushes per line, so even a SIGKILLed process leaves
    a readable (possibly torn-tail) file behind; closing the stack
    restores whatever recorder was active before.
    """
    from contextlib import ExitStack

    from repro.obs import runtime as obs_runtime

    stack = ExitStack()
    if getattr(args, "trace_dir", None):
        stack.enter_context(obs_runtime.traced(
            args.trace_dir,
            process,
            sample=getattr(args, "trace_sample", 1.0),
            seed=getattr(args, "seed", 0),
        ))
    return stack


def _serving_problem(args) -> AssignmentProblem:
    """The instance a serving command runs over (file or topology params)."""
    if getattr(args, "instance", None):
        return _load_problem(args.instance)
    return topology_instance(
        family=args.family,
        n_routers=args.routers,
        n_devices=args.devices,
        n_servers=args.servers,
        tightness=args.tightness,
        seed=args.seed,
    )


def _service_config(args):
    """ServiceConfig from the serve CLI flags."""
    from repro.serve import ServiceConfig

    return ServiceConfig(
        rule=args.rule,
        headroom=args.headroom,
        max_batch=args.batch_max,
        max_wait_s=args.batch_wait_ms / 1e3,
        max_queue=args.queue_max,
        watermark=args.watermark,
        reopt_interval_s=args.reopt_interval,
        reopt_solver=args.reopt_solver,
        reopt_seed=derive_seed(args.seed, "reopt"),
        wal_dir=getattr(args, "wal_dir", None),
        wal_snapshot_every=getattr(args, "snapshot_every", 256),
    )


def cmd_serve(args) -> int:
    """Run the assignment service until stopped (signal or --max-seconds)."""
    import asyncio

    from repro.serve import AssignmentService, TCPServer

    problem = _serving_problem(args)
    tracing = _tracing_stack(args, "serve")
    service = AssignmentService(problem, _service_config(args))

    async def run() -> None:
        import contextlib
        import signal

        # trap signals before announcing readiness: a supervisor may
        # SIGTERM the instant the port line appears
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        await service.start()
        if args.wal_dir is not None:
            # recovery is announced before the port line: supervisors
            # treat the port as readiness, and a recovered state must be
            # in place before the first request lands
            print(
                f"recovered {service.state.recovered_records} wal records "
                f"in {service.recovery_ms:.1f} ms from {args.wal_dir}",
                flush=True,
            )
        server = TCPServer(service, host=args.host, port=args.port)
        await server.start()
        print(
            f"serving {problem.name} ({problem.n_devices} devices x "
            f"{problem.n_servers} servers, rule={args.rule}) on "
            f"{args.host}:{server.port}",
            flush=True,
        )
        if args.max_seconds is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=args.max_seconds)
        else:
            await stop.wait()
        await server.stop()
        await service.stop()
        rows = [[key, value] for key, value in service._stats().items()]
        print(format_table(["stat", "value"], rows))

    try:
        asyncio.run(run())
    finally:
        tracing.close()
    return 0


def cmd_loadtest(args) -> int:
    """Drive a service (remote or in-process) and report the latency table."""
    import asyncio

    from repro.errors import ReproError
    from repro.serve import (
        AssignmentService,
        InProcessClient,
        LoadTestConfig,
        Request,
        ServiceConfig,
        open_client,
        run_loadtest,
    )

    if args.port is None and not args.in_process:
        print("error: give --port of a running `repro serve`, or --in-process")
        return 1
    config = LoadTestConfig(
        n_requests=args.requests,
        rate_hz=args.rate,
        profile=args.profile,
        concurrency=args.concurrency,
        seed=args.load_seed,
        release_ratio=args.release_ratio,
        deadline_ms=getattr(args, "deadline_ms", None),
    )

    async def run():
        if args.in_process:
            problem = _serving_problem(args)
            service = AssignmentService(problem, ServiceConfig())
            await service.start()
            client = InProcessClient(service)
            try:
                return await run_loadtest(client, problem.n_devices, config)
            finally:
                await service.stop()
        client = await open_client(args.host, args.port)
        try:
            stats = (await client.request(Request(op="stats"))).stats
            if not stats:
                raise ReproError("service did not answer the stats probe")
            return await run_loadtest(client, int(stats["devices"]), config)
        finally:
            await client.close()

    tracing = _tracing_stack(args, "client")
    try:
        report = asyncio.run(run())
    finally:
        tracing.close()
    print(report.to_text())
    if args.trace_dir:
        print(f"trace spans written under {args.trace_dir} "
              f"(stitch with `repro trace {args.trace_dir}`)")
    if args.json:
        report.save_json(args.json)
        print(f"report written to {args.json}")
    if report.errors:
        print(f"loadtest FAILED: {report.errors} protocol-error responses")
        return 3
    return 0


def cmd_obs(args) -> int:
    """Render an observability JSONL export as an ASCII dashboard."""
    path = Path(args.snapshot)
    if not path.exists():
        print(f"error: no such snapshot file: {path}")
        return 1
    try:
        data = obs.load_jsonl(path)
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"error: {path} is not a repro-obs JSONL export ({exc})")
        return 1
    if getattr(args, "prometheus", False):
        from repro.obs.sinks import prometheus_from_collected

        print(prometheus_from_collected(data), end="")
        return 0
    print(obs.render_dashboard(data, width=args.width))
    return 0


def cmd_ledger(args) -> int:
    """Summarize (and optionally dump) a run-ledger JSONL file."""
    from repro.obs.ledger import read_ledger, render_ledger_summary

    path = Path(args.path)
    if not path.exists():
        print(f"error: no such ledger file: {path}")
        return 1
    try:
        records = read_ledger(path)
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"error: {path} is not a repro-obs ledger ({exc})")
        return 1
    print(render_ledger_summary(records))
    if getattr(args, "events", False):
        for record in records:
            extras = {
                key: value for key, value in record.items()
                if key not in ("type", "event", "run_id", "t")
            }
            detail = " ".join(f"{key}={value}" for key, value in extras.items())
            print(f"{record.get('t', 0.0):.3f} {record['event']} {detail}".rstrip())
    return 0


def cmd_perf_record(args) -> int:
    """Run the perf probes and append a history record."""
    from repro.perf import record_run

    record = record_run(
        history_path=args.history,
        probes=_probe_names(args),
        repeats=args.repeats,
        baseline=args.baseline,
    )
    rows = [[name, value * 1e3] for name, value in sorted(record["probes"].items())]
    print(format_table(["probe", "best of "
                        f"{args.repeats} (ms)"], rows))
    marker = " (baseline)" if record.get("baseline") else ""
    print(f"recorded {record['recorded_at']} @ {record['git_sha']}"
          f"{marker} -> {args.history}")
    return 0


def cmd_perf_check(args) -> int:
    """Measure now, compare to the baseline, exit nonzero on regression."""
    from repro.perf import check_against_baseline

    result = check_against_baseline(
        history_path=args.history,
        probes=_probe_names(args),
        repeats=args.repeats,
        max_regression=args.max_regression,
    )
    rows = [
        [c["probe"], c["baseline_s"] * 1e3, c["measured_s"] * 1e3,
         f"{c['ratio']:.2f}x", "REGRESSED" if c["regressed"] else "ok"]
        for c in result["comparisons"]
    ]
    print(format_table(
        ["probe", "baseline (ms)", "measured (ms)", "ratio", "verdict"], rows
    ))
    if result["regressions"]:
        print(f"perf check FAILED: {len(result['regressions'])} probe(s) exceeded "
              f"baseline * {1.0 + args.max_regression:.2f}")
        return 3
    print(f"perf check passed against baseline {result['baseline']['git_sha']} "
          f"({result['baseline']['recorded_at']})")
    return 0


def cmd_perf_list(args) -> int:
    """Print the recorded perf history."""
    from repro.perf import load_history

    records = load_history(args.history)
    if not records:
        print(f"no history at {args.history} (run `repro perf record` first)")
        return 1
    rows = [
        [record["recorded_at"], record["git_sha"][:12],
         record.get("fingerprint", ""), len(record["probes"]),
         "yes" if record.get("baseline") else ""]
        for record in records
    ]
    print(format_table(
        ["recorded at", "git sha", "fingerprint", "probes", "baseline"], rows
    ))
    return 0


def _probe_names(args) -> "list[str] | None":
    raw = getattr(args, "probes", None)
    if not raw:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def _shard_plan(args):
    """(problem, plan) from the shared shard CLI flags."""
    from repro.shard import build_plan

    problem = _serving_problem(args)
    plan = build_plan(
        problem, args.shards, vnodes=args.vnodes, seed=args.plan_seed
    )
    return problem, plan


def cmd_shard_plan(args) -> int:
    """Print (and optionally save) the deterministic shard plan."""
    problem, plan = _shard_plan(args)
    print(
        f"{problem.name}: {problem.n_devices} devices x "
        f"{problem.n_servers} servers -> {plan.n_shards} shard(s) "
        f"(requested {args.shards}, vnodes={plan.vnodes}, "
        f"seed={plan.seed})"
    )
    rows = []
    for spec in plan.shards:
        home = plan.devices_of_shard(spec.name)
        rows.append([
            spec.name,
            ", ".join(str(r) for r in spec.regions),
            len(spec.servers),
            len(home),
        ])
    print(format_table(["shard", "regions", "servers", "home devices"], rows))
    if args.json:
        plan.save(args.json)
        print(f"plan written to {args.json}")
    return 0


def cmd_shard_serve(args) -> int:
    """Serve one shard's slice of the cluster over TCP."""
    import asyncio

    from repro.serve import AssignmentService, ServiceConfig, TCPServer

    problem, plan = _shard_plan(args)
    names = [spec.name for spec in plan.shards]
    if args.shard not in names:
        print(
            f"error: shard {args.shard!r} is not in the plan "
            f"(surviving shards: {', '.join(names)})"
        )
        return 1
    sub = plan.subproblem(problem, args.shard)
    tracing = _tracing_stack(args, args.shard)
    service = AssignmentService(
        sub,
        ServiceConfig(
            rule=args.rule,
            headroom=args.headroom,
            max_wait_s=args.batch_wait_ms / 1e3,
            wal_dir=args.wal_dir,
            wal_snapshot_every=args.snapshot_every,
        ),
    )

    async def run() -> None:
        import contextlib
        import signal

        # trap signals before announcing readiness: the cluster harness
        # SIGTERMs the instant the port line appears
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        await service.start()
        if args.wal_dir is not None:
            # before the port line: the harness scrapes this, and the
            # replayed state must be live before readiness is announced
            print(
                f"recovered {service.state.recovered_records} wal records "
                f"in {service.recovery_ms:.1f} ms from {args.wal_dir}",
                flush=True,
            )
        server = TCPServer(service, host=args.host, port=args.port)
        await server.start()
        print(
            f"serving shard {args.shard} of {problem.name} "
            f"({sub.n_servers} of {problem.n_servers} servers, "
            f"{plan.n_shards} shards) on {args.host}:{server.port}",
            flush=True,
        )
        if args.max_seconds is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=args.max_seconds)
        else:
            await stop.wait()
        await server.stop()
        await service.stop()
        rows = [[key, value] for key, value in service._stats().items()]
        print(format_table(["stat", "value"], rows))

    try:
        asyncio.run(run())
    finally:
        tracing.close()
    return 0


def cmd_shard_router(args) -> int:
    """Front already-running shard processes with a TCP router."""
    import asyncio

    from repro.serve import TCPServer
    from repro.shard import RouterConfig, ShardRouter, TCPBackend

    problem, plan = _shard_plan(args)
    addresses: "dict[str, tuple[str, int]]" = {}
    for item in args.backend:
        try:
            name, _, hostport = item.partition("=")
            host, _, port = hostport.rpartition(":")
            addresses[name] = (host or "127.0.0.1", int(port))
        except ValueError:
            print(f"error: bad --backend {item!r} (want NAME=HOST:PORT)")
            return 1
    missing = [s.name for s in plan.shards if s.name not in addresses]
    if missing:
        print(f"error: no --backend given for shard(s): {', '.join(missing)}")
        return 1
    backends = {
        name: TCPBackend(name, host, port)
        for name, (host, port) in addresses.items()
        if name in {s.name for s in plan.shards}
    }
    router = ShardRouter(
        plan,
        backends,
        RouterConfig(rebalance_interval_s=args.rebalance_interval),
    )

    async def run() -> None:
        import contextlib
        import signal

        # trap signals before announcing readiness: a supervisor may
        # SIGTERM the instant the port line appears
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
        await router.start()
        server = TCPServer(router, host=args.host, port=args.port)
        await server.start()
        print(
            f"routing {plan.n_shards} shards of {problem.name} "
            f"({problem.n_devices} devices) on {args.host}:{server.port}",
            flush=True,
        )
        if args.max_seconds is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=args.max_seconds)
        else:
            await stop.wait()
        await server.stop()
        stats = await router._stats()
        rows = [
            [key, value] for key, value in stats.items()
            if key != "per_shard"
        ]
        await router.close()
        print(format_table(["stat", "value"], rows))

    asyncio.run(run())
    return 0


def cmd_shard_loadtest(args) -> int:
    """Spawn a sharded cluster, load it, optionally kill a shard mid-run."""
    import asyncio

    from repro.faults.scenario import FaultEventSpec, FaultScenario
    from repro.serve import LoadTestConfig
    from repro.shard.harness import HarnessConfig, run_sharded_loadtest

    config = HarnessConfig(
        n_shards=args.shards,
        family=args.family,
        routers=args.routers,
        devices=args.devices,
        servers=args.servers,
        tightness=args.tightness,
        seed=args.seed,
        vnodes=args.vnodes,
        plan_seed=args.plan_seed,
        batch_wait_ms=args.batch_wait_ms,
        rebalance_interval_s=args.rebalance_interval,
        wal_root=args.wal_root,
        default_deadline_ms=args.deadline_ms,
        hedge=not args.no_hedge,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
    )
    load = LoadTestConfig(
        n_requests=args.requests,
        rate_hz=args.rate,
        profile=args.profile,
        concurrency=args.concurrency,
        seed=args.load_seed,
        release_ratio=args.release_ratio,
        deadline_ms=args.deadline_ms,
    )
    scenario = None
    if args.kill_shard is not None:
        events = [FaultEventSpec(at_s=args.kill_at, kind="server_crash",
                                 server=args.kill_shard)]
        if args.repair_at is not None:
            events.append(FaultEventSpec(at_s=args.repair_at,
                                         kind="server_repair",
                                         server=args.kill_shard))
        scenario = FaultScenario(name="shard-kill", events=tuple(events))
    elif args.scenario:
        scenario = FaultScenario.load(args.scenario)
    netem = None
    if args.netem:
        from repro.netem import load_script

        shard_names = [spec.name for spec in config.plan().shards]
        netem = load_script(args.netem, shard_names=shard_names)

    result = asyncio.run(
        run_sharded_loadtest(config, load, scenario, window_s=args.window,
                             netem=netem)
    )
    print(result.report.to_text())
    if result.netem_stats:
        print(
            "netem: "
            + ", ".join(f"{k}={v}" for k, v in sorted(
                result.netem_stats.items()) if not isinstance(v, dict))
        )
    if result.router_stats:
        print(
            "router: "
            + ", ".join(f"{k}={v}"
                        for k, v in sorted(result.router_stats.items()))
        )
    for name, info in sorted(result.wal_recovery.items()):
        if info["records"]:
            print(f"wal: {name} recovered {info['records']} records "
                  f"in {info['ms']:.1f} ms")
    if result.trace_dir:
        print(f"trace spans written under {result.trace_dir} "
              f"(stitch with `repro trace {result.trace_dir}`)")
    print(format_table(
        ["window t0 (s)", "ok", "total", "goodput"],
        [[w["t0"], w["ok"], w["total"], f"{w['goodput']:.3f}"]
         for w in result.timeline],
    ))
    for entry in result.fault_log:
        print(f"fault @ {entry['t']:.3f}s: {entry['event']} {entry['shard']}")
    # a shard whose last scripted event was a kill is *supposed* to be
    # dead; every other shard must have exited 0 on SIGTERM
    last_event: "dict[str, str]" = {}
    for entry in result.fault_log:
        last_event[entry["shard"]] = entry["event"]
    clean = all(
        code == 0
        for name, code in result.shutdown_codes.items()
        if last_event.get(name) != "kill"
    )
    print(
        "shutdown codes: "
        + ", ".join(f"{k}={v}" for k, v in sorted(result.shutdown_codes.items()))
    )
    if args.json:
        from repro.utils.fileio import atomic_write_text

        atomic_write_text(
            args.json, json.dumps(result.to_dict(), indent=2, sort_keys=True)
        )
        print(f"report written to {args.json}")
    if scenario is None and result.report.errors:
        print(f"loadtest FAILED: {result.report.errors} protocol-error responses")
        return 3
    if not clean:
        print("loadtest FAILED: shard processes exited uncleanly")
        return 3
    if args.min_goodput is not None:
        ok = sum(w["ok"] for w in result.timeline)
        total = sum(w["total"] for w in result.timeline)
        overall = ok / total if total else 1.0
        print(f"overall goodput: {overall:.4f} (floor {args.min_goodput})")
        if result.report.errors:
            print(f"loadtest FAILED: {result.report.errors} protocol-error "
                  "responses (crash recovery must reconcile, not error)")
            return 3
        if overall < args.min_goodput:
            print("loadtest FAILED: goodput below floor")
            return 3
    if args.max_recovery_ms is not None:
        slow = {
            name: info["ms"]
            for name, info in result.wal_recovery.items()
            if info["ms"] > args.max_recovery_ms
        }
        if slow:
            print(
                "loadtest FAILED: WAL recovery over "
                f"{args.max_recovery_ms} ms: "
                + ", ".join(f"{k}={v:.1f}ms" for k, v in sorted(slow.items()))
            )
            return 3
    return 0


def _report_p99_ms(path: str) -> float:
    """p99 latency from a loadtest report JSON (plain or sharded)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if "report" in data and isinstance(data["report"], dict):
        data = data["report"]  # ShardLoadTestReport wraps the load report
    return float(data["latency_ms"]["p99"])


def _trace_overhead(args) -> int:
    """Bound tracing overhead: diff traced vs untraced report p99."""
    traced_path, untraced_path = args.overhead
    traced_p99 = _report_p99_ms(traced_path)
    untraced_p99 = _report_p99_ms(untraced_path)
    ratio = traced_p99 / max(untraced_p99, 1e-9)
    print(format_table(
        ["report", "p99 (ms)"],
        [["traced", f"{traced_p99:.3f}"],
         ["untraced", f"{untraced_p99:.3f}"],
         ["ratio", f"{ratio:.3f}x"]],
    ))
    if args.max_overhead is not None and ratio > 1.0 + args.max_overhead:
        print(f"trace overhead FAILED: traced p99 is {ratio:.3f}x untraced "
              f"(bound {1.0 + args.max_overhead:.3f}x)")
        return 3
    return 0


def cmd_trace(args) -> int:
    """Stitch span files: list traces, render waterfalls/critical paths."""
    from repro.obs.trace import (
        build_trace,
        critical_path,
        load_trace_dir,
        render_critical_path,
        render_waterfall,
        trace_ids,
    )

    if args.overhead is not None:
        return _trace_overhead(args)
    if args.trace_dir is None:
        print("error: give a trace directory (or --overhead A.json B.json)")
        return 1
    records = load_trace_dir(args.trace_dir)
    if not records:
        print(f"no spans under {args.trace_dir} (expected spans-*.jsonl "
              "written via --trace-dir)")
        return 1
    if args.trace_id is None:
        rows = []
        for trace_id in trace_ids(records):
            roots, orphans = build_trace(records, trace_id)
            spans = sum(1 for r in records if r.trace_id == trace_id)
            t0 = min(r.start_ms for r in records if r.trace_id == trace_id)
            t1 = max(r.end_ms for r in records if r.trace_id == trace_id)
            rows.append([
                trace_id,
                roots[0].record.name if roots else "?",
                spans,
                f"{t1 - t0:.3f}",
                len(orphans),
            ])
        print(format_table(
            ["trace id", "root", "spans", "span (ms)", "orphans"], rows
        ))
        print(f"{len(rows)} trace(s), {len(records)} span(s); render one "
              "with --trace-id ID [--critical-path]")
        return 0
    roots, orphans = build_trace(records, args.trace_id)
    if not roots:
        print(f"error: no spans for trace id {args.trace_id!r}")
        return 1
    if args.critical_path:
        worst_coverage = 1.0
        for root in roots:
            print(render_critical_path(root))
            _, attributed = critical_path(root)
            total = max(root.record.duration_ms, 1e-9)
            worst_coverage = min(worst_coverage, attributed / total)
        if orphans:
            print(f"warning: {len(orphans)} span(s) had unresolved parents "
                  "(treated as extra roots)")
        if (args.min_attribution is not None
                and worst_coverage < args.min_attribution):
            print(f"critical path FAILED: attributed "
                  f"{worst_coverage:.1%} < floor {args.min_attribution:.1%}")
            return 3
        return 0
    print(render_waterfall(roots))
    if orphans:
        print(f"warning: {len(orphans)} span(s) had unresolved parents "
              "(treated as extra roots)")
    return 0


def cmd_info(args) -> int:
    """Version and registered components."""
    print(f"repro {repro.__version__}")
    print(f"solvers ({len(available_solvers())}): " + ", ".join(available_solvers()))
    print(f"topology families: " + ", ".join(sorted(TOPOLOGY_FAMILIES)))
    print(f"placement strategies: " + ", ".join(sorted(PLACEMENT_STRATEGIES)))
    print("experiments: " + ", ".join(sorted(_EXPERIMENT_MODULES)))
    return 0

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Build an assignment instance (topology pipeline or pure-matrix GAP)
    and write it to JSON.
``solve``
    Solve an instance file with any registered solver; prints the
    summary and optionally writes the assignment to JSON.
``compare``
    Run a field of solvers on one instance and print the comparison
    table.
``simulate``
    Replay a solved assignment in the discrete-event simulator.
``experiment``
    Run one of the paper's experiments (t1, f2, ..., t3) at quick or
    full scale and print its table.
``report``
    Render EXPERIMENTS.md from benchmark result JSONs.
``info``
    Version, registered solvers, topology families, placements.

All commands are deterministic under ``--seed``.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]

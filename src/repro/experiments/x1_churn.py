"""X1 (extension) — cluster membership under device churn.

Not a figure of the original paper: this extends the evaluation to
dynamic *membership* (devices joining and leaving), the natural
companion of the F8 mobility experiment.  Three policies maintain the
active assignment:

* ``greedy_join`` — joins placed at min delay with capacity check only;
* ``reserve_join`` — joins placed with headroom reservation;
* ``reserve+rebalance`` — reserve joins plus a periodic TACC re-solve
  of the active subproblem.

Expected shape: all policies keep every server within capacity (hard
invariant); greedy joins accumulate delay drift that rebalancing
recovers; the reserve rule rejects fewer late joiners on tight
instances than the greedy rule because it preserves headroom.
"""

from __future__ import annotations

from repro.cluster.churn import ChurnProcess, MembershipController
from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

POLICIES = ("greedy_join", "reserve_join", "reserve+rebalance")

COLUMNS = ["policy", "epoch", "cost_ms", "active", "rejected_total"]
TITLE = "X1 (extension): assignment quality under device churn"


def _controller(policy: str, problem, seed: int, tacc_kwargs: dict):
    if policy == "greedy_join":
        return MembershipController(problem, join_rule="greedy_delay")
    if policy == "reserve_join":
        return MembershipController(problem, join_rule="reserve")
    solver = get_solver("tacc", seed=seed, **tacc_kwargs)
    return MembershipController(
        problem, join_rule="reserve", rebalance_solver=solver, rebalance_every=4
    )


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (all policies) — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    # the generator sizes capacity for the full potential fleet; with
    # only part of it active, shrink capacities so admission control
    # actually bites (rejections become measurable)
    problem.capacity *= params["capacity_scale"]
    # one shared churn trajectory per repeat so policies are paired
    events = []
    churn = ChurnProcess(
        problem.n_devices,
        join_prob=params["join_prob"],
        leave_prob=params["leave_prob"],
        seed=derive_seed(seed, "churn"),
    )
    initial_active = churn.active
    for epoch in range(1, params["epochs"] + 1):
        events.append(churn.step(epoch))
    rows = []
    for policy in params["policies"]:
        controller = _controller(
            policy, problem, derive_seed(seed, policy), params["tacc_kwargs"]
        )
        decision = controller.bootstrap(initial_active)
        rows.append(
            {
                "policy": policy,
                "epoch": 0,
                "cost_ms": decision.cost * 1e3,
                "active": float(decision.active_count),
                "rejected_total": float(controller.total_rejected),
            }
        )
        for event in events:
            decision = controller.apply(event)
            rows.append(
                {
                    "policy": policy,
                    "epoch": event.epoch,
                    "cost_ms": decision.cost * 1e3,
                    "active": float(decision.active_count),
                    "rejected_total": float(controller.total_rejected),
                }
            )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x1", scale)
    params = config.params
    return [
        JobSpec(
            experiment="x1",
            fn="repro.experiments.x1_churn:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "capacity_scale": params.get("capacity_scale", 0.7),
                "join_prob": params["join_prob"],
                "leave_prob": params["leave_prob"],
                "epochs": params["epochs"],
                "policies": list(POLICIES),
                "tacc_kwargs": dict(config.solver_kwargs.get("tacc", {})),
            },
            seed=derive_seed(seed, "x1", repeat),
            label=f"x1 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the per-(policy, epoch) cost/membership time series."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["policy", "epoch"], ["cost_ms", "active", "rejected_total"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "epoch", "cost_ms_mean", "policy"),
            title="X1: delay over churn epochs",
            x_label="epoch",
            y_label="total delay (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

"""Shared experiment machinery: result tables and solver sweeps.

Every experiment module expresses its grid as a list of
:class:`~repro.engine.jobspec.JobSpec` cells and hands them to
:func:`run_sweep`, which routes through :mod:`repro.engine` — serially
by default, or on a worker pool with result caching when the caller
passes :class:`~repro.engine.runner.EngineOptions` (the CLI's
``--jobs`` / ``--cache-dir`` / ``--no-cache`` surface).
"""

from __future__ import annotations

import copy
import json
import math
from pathlib import Path

import numpy as np

from repro.model.problem import AssignmentProblem
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import snapshot_delta
from repro.solvers.base import SolverResult
from repro.solvers.registry import get_solver
from repro.utils.fileio import atomic_write_text
from repro.utils.rng import derive_seed
from repro.utils.stats import mean_confidence_interval
from repro.utils.tables import format_markdown_table, format_table
from repro.utils.validation import require


class ResultTable:
    """A list of homogeneous row dicts with rendering and aggregation."""

    def __init__(self, columns: list[str], title: str = "") -> None:
        require(len(columns) > 0, "columns must be non-empty")
        self.columns = list(columns)
        self.title = title
        self.rows: list[dict] = []

    def add_row(self, **values) -> None:
        """Append one row; keys must exactly match the columns."""
        require(
            set(values) == set(self.columns),
            f"row keys {sorted(values)} != columns {sorted(self.columns)}",
        )
        self.rows.append(dict(values))

    # ------------------------------------------------------------------
    def column(self, name: str) -> list:
        """Values of one column across all rows."""
        require(name in self.columns, f"unknown column {name!r}")
        return [row[name] for row in self.rows]

    def filtered(self, **criteria) -> "ResultTable":
        """Rows matching all equality criteria, as a new table."""
        table = ResultTable(self.columns, self.title)
        table.rows = [
            row for row in self.rows if all(row[k] == v for k, v in criteria.items())
        ]
        return table

    def aggregate(self, group_by: list[str], values: list[str]) -> "ResultTable":
        """Mean ± 95% CI of ``values`` per distinct ``group_by`` combination.

        NaNs (e.g. infeasible runs) are dropped per group; a group with
        no finite samples reports NaN.
        """
        for name in group_by + values:
            require(name in self.columns, f"unknown column {name!r}")
        out_columns = group_by + [f"{v}_mean" for v in values] + [f"{v}_ci" for v in values]
        out = ResultTable(out_columns, self.title)
        # single pass: dicts preserve insertion order, so groups come out
        # in first-seen order exactly as the old per-key rescan did
        groups: dict[tuple, list[dict]] = {}
        for row in self.rows:
            groups.setdefault(tuple(row[g] for g in group_by), []).append(row)
        for key, members in groups.items():
            record = dict(zip(group_by, key))
            for value in values:
                samples = [
                    row[value]
                    for row in members
                    if isinstance(row[value], (int, float)) and math.isfinite(row[value])
                ]
                if samples:
                    mean, half = mean_confidence_interval(samples)
                else:
                    mean, half = float("nan"), float("nan")
                record[f"{value}_mean"] = mean
                record[f"{value}_ci"] = half
            out.add_row(**record)
        return out

    # ------------------------------------------------------------------
    def to_text(self, float_format: str = ".4g") -> str:
        """Paper-style ASCII table."""
        rows = [[row[c] for c in self.columns] for row in self.rows]
        return format_table(self.columns, rows, float_format=float_format, title=self.title)

    def to_markdown(self, float_format: str = ".4g") -> str:
        """Render the table as GitHub-flavoured Markdown."""
        rows = [[row[c] for c in self.columns] for row in self.rows]
        return format_markdown_table(self.columns, rows, float_format=float_format)

    def save_json(self, path: "str | Path") -> None:
        """Persist the table (title, columns, rows) as JSON.

        The write is atomic (temp file + ``os.replace``), so an
        interrupted run never leaves a truncated table that a resumed
        run or the report generator would then trust.
        """
        payload = {"title": self.title, "columns": self.columns, "rows": self.rows}
        atomic_write_text(Path(path), json.dumps(payload, indent=2))

    @classmethod
    def load_json(cls, path: "str | Path") -> "ResultTable":
        """Inverse of :meth:`save_json`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        table = cls(payload["columns"], payload.get("title", ""))
        table.rows = payload["rows"]
        return table

    def __len__(self) -> int:
        return len(self.rows)


def sweep_seeds(base_seed: int, repeats: int, *labels) -> list[int]:
    """Independent per-repeat seeds for one experimental cell."""
    return [derive_seed(base_seed, *labels, r) for r in range(repeats)]


def run_solver_field(
    problem: AssignmentProblem,
    solver_names: list[str],
    seed: int = 0,
    solver_kwargs: "dict[str, dict] | None" = None,
) -> dict[str, SolverResult]:
    """Solve one instance with every named solver (seeded per solver).

    ``solver_kwargs`` maps solver name to constructor overrides — the
    knob experiments use to shrink RL episode budgets at quick scale.

    When observability is enabled, each result carries the metric
    *delta* attributable to its own solve in ``extra["obs"]`` — the
    per-sweep-point snapshot the benchmark trajectories attach to their
    rows.
    """
    registry = obs_runtime.metrics()
    results: dict[str, SolverResult] = {}
    for name in solver_names:
        # deep copy: solver constructors may mutate nested kwargs (and
        # setdefault would otherwise write into the caller's dict when a
        # future refactor drops the shallow copy), so callers' config
        # dicts must never be shared across sweep points
        kwargs = copy.deepcopy((solver_kwargs or {}).get(name, {}))
        kwargs.setdefault("seed", derive_seed(seed, "solver", name))
        solver = get_solver(name, **kwargs)
        before = registry.snapshot() if registry.enabled else None
        results[name] = solver.solve(problem)
        if before is not None:
            results[name].extra["obs"] = snapshot_delta(before, registry.snapshot())
    return results


def run_sweep(
    specs: list,
    columns: list[str],
    title: str = "",
    engine=None,
) -> ResultTable:
    """Execute a sweep grid through the engine and collect the raw table.

    ``specs`` is the experiment's :class:`~repro.engine.jobspec.JobSpec`
    list in grid order; ``engine`` is an
    :class:`~repro.engine.runner.EngineOptions` (``None`` reproduces
    the historical serial, uncached behavior).  Rows come back in spec
    order whatever the worker count, so the resulting table — and any
    aggregation of it — is identical across serial, parallel, and
    cached executions.
    """
    from repro.engine import run_jobs

    table = ResultTable(columns, title)
    for rows in run_jobs(specs, engine):
        for row in rows:
            table.add_row(**row)
    return table


def normalized_cost(result: SolverResult, reference: float) -> float:
    """Objective relative to a reference (e.g. optimum or LP bound)."""
    if not math.isfinite(result.objective_value) or reference <= 0:
        return float("nan")
    return result.objective_value / reference

"""EXPERIMENTS.md generation from benchmark result files.

``pytest benchmarks/ --benchmark-only`` writes one JSON table per
experiment into ``benchmarks/results/<scale>/``; this module renders them into
the paper-vs-measured record the reproduction ships as EXPERIMENTS.md::

    python -m repro.experiments.report benchmarks/results/full EXPERIMENTS.md

For each experiment the report states the *expected shape* (what the
paper's figure would show, reconstructed — see DESIGN.md), the measured
table, and automatically computed observations (who won, by what
factor) so the record stays honest as the code evolves.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.experiments.harness import ResultTable


def _fmt(value: float, digits: int = 2) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "n/a"
    return f"{value:.{digits}f}"


def _mean_of(table: ResultTable, solver: str, column: str) -> float:
    values = [
        row[column]
        for row in table.rows
        if row.get("solver") == solver and not math.isnan(row[column])
    ]
    return sum(values) / len(values) if values else math.nan


# ----------------------------------------------------------------------
# per-experiment observation functions
# ----------------------------------------------------------------------
def _observe_t1(table: ResultTable) -> list[str]:
    tacc = _mean_of(table, "tacc", "gap_pct_mean")
    greedy = _mean_of(table, "greedy", "gap_pct_mean")
    random_ = _mean_of(table, "random", "gap_pct_mean")
    return [
        f"TACC mean optimality gap across cells: {_fmt(tacc)}% "
        f"(greedy {_fmt(greedy)}%, random {_fmt(random_)}%).",
        "Near-optimality claim "
        + ("**holds**" if tacc < 10.0 else "**does not hold**")
        + " (single-digit mean gap expected).",
    ]


def _observe_series(table: ResultTable, axis: str) -> list[str]:
    points = sorted({row[axis] for row in table.rows})
    lines = []
    for point in points:
        rows = {r["solver"]: r for r in table.rows if r[axis] == point}
        if "tacc" not in rows:
            continue
        tacc = rows["tacc"]["total_delay_ms_mean"]
        others = {
            name: r["total_delay_ms_mean"]
            for name, r in rows.items()
            if name != "tacc" and not math.isnan(r["total_delay_ms_mean"])
        }
        best_other = min(others, key=others.get)
        lines.append(
            f"{axis}={point}: TACC {_fmt(tacc)} ms vs best baseline "
            f"{best_other} {_fmt(others[best_other])} ms "
            f"(random {_fmt(others.get('random', math.nan))} ms)."
        )
    return lines


def _observe_f4(table: ResultTable) -> list[str]:
    rows = {r["solver"]: r for r in table.rows}
    return [
        f"Capacity-blind nearest-server peaks at "
        f"{_fmt(rows['nearest']['max_utilization_mean'])} utilization with "
        f"{_fmt(rows['nearest']['overloaded_servers_mean'], 1)} overloaded servers on average; "
        f"TACC peaks at {_fmt(rows['tacc']['max_utilization_mean'])} with "
        f"{_fmt(rows['tacc']['overloaded_servers_mean'], 1)} — the no-overload "
        "guarantee holds.",
    ]


def _observe_f5(table: ResultTable) -> list[str]:
    rates = sorted({row["rate_scale"] for row in table.rows})
    lines = []
    for rate in rates:
        rows = {r["solver"]: r for r in table.rows if r["rate_scale"] == rate}
        lines.append(
            f"rate x{rate}: TACC measured mean network latency "
            f"{_fmt(rows['tacc']['mean_network_latency_ms_mean'])} ms, miss rate "
            f"{_fmt(100 * rows['tacc']['deadline_miss_rate_mean'], 1)}% — random "
            f"{_fmt(rows['random']['mean_network_latency_ms_mean'])} ms / "
            f"{_fmt(100 * rows['random']['deadline_miss_rate_mean'], 1)}%."
        )
    return lines


def _observe_f6(table: ResultTable) -> list[str]:
    last = max(r["episode"] for r in table.rows)
    rows = {r["solver"]: r for r in table.rows if r["episode"] == last}
    lines = []
    reference = rows.get("optimum", rows.get("lp_bound"))
    for solver in ("tacc", "qlearning", "bandit"):
        if solver in rows and reference is not None:
            final = rows[solver]["best_cost_ms_mean"]
            ref = reference["best_cost_ms_mean"]
            lines.append(
                f"{solver} converges to {_fmt(final)} ms "
                f"({_fmt(100 * (final / ref - 1), 1)}% above the exact optimum)."
            )
    return lines


def _observe_t2(table: ResultTable) -> list[str]:
    sizes = sorted({row["size"] for row in table.rows})
    lines = []
    for size in sizes:
        rows = {r["solver"]: r for r in table.rows if r["size"] == size}
        parts = [f"greedy {_fmt(1e3 * rows['greedy']['runtime_s_mean'])} ms"]
        if "branch_and_bound" in rows:
            parts.append(
                f"B&B {_fmt(rows['branch_and_bound']['runtime_s_mean'], 3)} s"
            )
        parts.append(f"TACC {_fmt(rows['tacc']['runtime_s_mean'], 3)} s")
        lines.append(f"{size}: " + ", ".join(parts) + ".")
    return lines


def _observe_f7(table: ResultTable) -> list[str]:
    families = sorted({row["family"] for row in table.rows})
    lines = []
    for family in families:
        rows = {r["solver"]: r for r in table.rows if r["family"] == family}
        lines.append(
            f"{family}: TACC at {_fmt(rows['tacc']['cost_over_lp_mean'], 3)}x "
            f"the LP bound (random {_fmt(rows['random']['cost_over_lp_mean'], 3)}x)."
        )
    return lines


def _observe_f8(table: ResultTable) -> list[str]:
    last = max(r["epoch"] for r in table.rows)
    rows = {r["strategy"]: r for r in table.rows if r["epoch"] == last}
    first = {r["strategy"]: r for r in table.rows if r["epoch"] == 0}
    lines = []
    for strategy in ("static", "always", "hysteresis", "polish"):
        if strategy in rows:
            lines.append(
                f"{strategy}: delay {_fmt(first[strategy]['cost_ms_mean'])} → "
                f"{_fmt(rows[strategy]['cost_ms_mean'])} ms over {last} epochs, "
                f"{_fmt(rows[strategy]['cumulative_moves_mean'], 1)} migrations."
            )
    return lines


def _observe_x1(table: ResultTable) -> list[str]:
    last = max(r["epoch"] for r in table.rows)
    rows = {r["policy"]: r for r in table.rows if r["epoch"] == last}
    lines = []
    for policy, row in rows.items():
        lines.append(
            f"{policy}: final cost {_fmt(row['cost_ms_mean'])} ms over "
            f"{_fmt(row['active_mean'], 1)} active devices, "
            f"{_fmt(row['rejected_total_mean'], 1)} joins rejected in total."
        )
    return lines


def _observe_t3(table: ResultTable) -> list[str]:
    rows = {r["variant"]: r for r in table.rows}
    full = rows["tacc_full"]["true_delay_ms_mean"]
    lines = []
    for variant, row in rows.items():
        if variant == "tacc_full":
            continue
        penalty = 100 * (row["true_delay_ms_mean"] / full - 1)
        lines.append(
            f"{variant}: {_fmt(row['true_delay_ms_mean'])} ms "
            f"({_fmt(penalty, 1)}% vs full TACC), "
            f"{_fmt(row['overloaded_servers_mean'], 2)} overloaded servers."
        )
    return lines


@dataclass(frozen=True)
class ExperimentMeta:
    """Metadata driving one EXPERIMENTS.md section."""

    experiment_id: str
    title: str
    expected: str
    observe: Callable[[ResultTable], list[str]]


EXPERIMENTS: dict[str, ExperimentMeta] = {
    "t1_optimality_gap": ExperimentMeta(
        "T1",
        "Optimality gap on small instances",
        "B&B gap 0 by construction; TACC single-digit %; greedy worse on "
        "tight/correlated classes (c, d); random worst.",
        _observe_t1,
    ),
    "f2_delay_vs_devices": ExperimentMeta(
        "F2",
        "Total delay vs number of IoT devices",
        "Monotone growth in N; TACC lowest or tied-lowest at every point; "
        "gap to delay-blind baselines widens with capacity pressure.",
        lambda t: _observe_series(t, "n_devices"),
    ),
    "f3_delay_vs_servers": ExperimentMeta(
        "F3",
        "Total delay vs number of edge servers",
        "Delay falls as servers are added; TACC exploits new servers fastest.",
        lambda t: _observe_series(t, "n_servers"),
    ),
    "f4_load_balance": ExperimentMeta(
        "F4",
        "Load distribution and overload safety",
        "Nearest-server overloads (max utilization > 1); every capacity-aware "
        "algorithm, TACC included, stays at or under 1.0.",
        _observe_f4,
    ),
    "f5_deadline_miss": ExperimentMeta(
        "F5",
        "Measured latency and deadline misses vs arrival rate (DES)",
        "Static orderings carry over to measured latency; curves knee upward "
        "as load approaches capacity, better assignments knee later.",
        _observe_f5,
    ),
    "f6_rl_convergence": ExperimentMeta(
        "F6",
        "RL training convergence",
        "Monotone non-increasing best-so-far curves; TACC converges faster "
        "and closer to the optimum than plain Q-learning.",
        _observe_f6,
    ),
    "t2_runtime": ExperimentMeta(
        "T2",
        "Solver runtime scalability",
        "Exact search blows up combinatorially; constructive heuristics "
        "near-instant; RL linear in episodes x devices.",
        _observe_t2,
    ),
    "f7_topology_sensitivity": ExperimentMeta(
        "F7",
        "Sensitivity to topology family",
        "Algorithm ordering stable across families; TACC near the LP bound "
        "on every family.",
        _observe_f7,
    ),
    "f8_dynamic": ExperimentMeta(
        "F8",
        "Dynamic reconfiguration under mobility",
        "Static drifts upward; 'always' holds delay at maximum migration "
        "churn; hysteresis close to 'always' with fewer moves; polish "
        "in between at near-zero solve cost.",
        _observe_f8,
    ),
    "x1_churn": ExperimentMeta(
        "X1",
        "Extension: membership under device churn",
        "All policies keep servers within capacity (hard invariant); "
        "greedy joins drift in delay; periodic rebalance recovers the drift; "
        "reserve joins reject fewer late arrivals on tight instances.",
        _observe_x1,
    ),
    "x2_placement": ExperimentMeta(
        "X2",
        "Extension: sensitivity to edge-server placement",
        "Delay-aware placements (spread, medoid) beat random placement for "
        "every solver; good assignment cannot fully compensate for a bad "
        "placement.",
        lambda t: [
            f"{row['placement']}/{row['solver']}: "
            f"{_fmt(row['total_delay_ms_mean'])} ms "
            f"(LP bound {_fmt(row['lp_bound_ms_mean'])} ms)."
            for row in t.rows
        ],
    ),
    "x3_objective": ExperimentMeta(
        "X3",
        "Extension: total-delay vs bottleneck objectives",
        "bottleneck achieves the lowest max delay and fewest deadline "
        "violations at a small total-delay premium; tacc wins total delay — "
        "the two objectives are genuinely different.",
        lambda t: [
            f"{row['solver']}: total {_fmt(row['total_delay_ms_mean'])} ms, "
            f"max {_fmt(row['max_delay_ms_mean'])} ms, "
            f"{_fmt(row['deadline_violations_mean'], 1)} deadline violations."
            for row in t.rows
        ],
    ),
    "x4_noise": ExperimentMeta(
        "X4",
        "Extension: robustness to delay-measurement noise",
        "Regret vs perfect information grows with probe jitter and shrinks "
        "with probe count; even at heavy jitter the noisy-input solvers stay "
        "far below random, because server *ordering* survives noise better "
        "than values.",
        lambda t: [
            f"sigma={row['jitter_sigma']}, probes={row['probes']}, "
            f"{row['solver']}: regret {_fmt(row['regret_pct'])}% "
            f"(true delay {_fmt(row['true_delay_ms_mean'])} ms)."
            for row in t.rows
            if row["solver"] == "tacc"
        ],
    ),
    "x5_faults": ExperimentMeta(
        "X5",
        "Extension: availability under server failures",
        "Static availability dips with every failure and recovers only on "
        "repair; reactive re-solving restores full service within the epoch "
        "whenever surviving capacity suffices, at the price of migration "
        "bursts and temporarily higher delay.",
        lambda t: [
            f"{policy}: mean availability "
            f"{_fmt(100 * sum(r['serving_fraction_mean'] for r in t.rows if r['policy'] == policy) / max(1, sum(1 for r in t.rows if r['policy'] == policy)), 1)}%, "
            f"final migrations {_fmt(max(r['cumulative_moves_mean'] for r in t.rows if r['policy'] == policy), 1)}."
            for policy in ("static", "reactive")
        ],
    ),
    "x6_chaos": ExperimentMeta(
        "X6",
        "Extension: task dispatch policies under a mid-run crash",
        "One shared fault timeline (the configuration's busiest server "
        "crashes mid-run and repairs later) replayed under three dispatch "
        "policies: without retries goodput tracks the lost capacity, "
        "same-server retries burn their budget against a dead server, and "
        "failover to the cheapest healthy alternate holds goodput through "
        "the outage at a modest tail-latency premium.",
        lambda t: [
            f"{row['policy']}: goodput {_fmt(100 * row['goodput_mean'], 1)}%, "
            f"crash-window goodput {_fmt(100 * row['crash_goodput_mean'], 1)}%, "
            f"{_fmt(row['tasks_lost_mean'], 1)} tasks lost, "
            f"p99 latency {_fmt(row['p99_total_ms_mean'], 1)} ms."
            for row in t.rows
        ],
    ),
    "t3_ablation": ExperimentMeta(
        "T3",
        "Ablation of TACC design choices (scored on the true delay matrix)",
        "Full TACC best; hop-count/euclidean delay models lose the most "
        "(the titular topology-awareness claim); masking-off risks overloads; "
        "polish and Boltzmann exploration each contribute a few percent.",
        _observe_t3,
    ),
    "obs_overhead": ExperimentMeta(
        "G1",
        "Observability instrumentation overhead (guard, not a paper figure)",
        "Disabled-mode (default) implied overhead below 5% for both the RL "
        "solve and the DES run; a null-instrument call stays well under 1 µs.",
        lambda t: [
            f"{row['case']}: disabled {_fmt(row['implied_disabled_pct'], 2)}% implied "
            f"({row['obs_samples']} samples at {_fmt(row['null_ns_per_call'], 0)} ns), "
            f"enabled {_fmt(row['enabled_overhead_pct'], 1)}% measured."
            for row in t.rows
        ],
    ),
    "engine_speedup": ExperimentMeta(
        "G2",
        "Engine pool speedup and cache hit-rate (guard, not a paper figure)",
        "Latency-bound synthetic grid at least 2x faster at 4 workers on any "
        "host (overlapped waits); CPU-bound speedup tracks available cores; "
        "the warm-cache pass recomputes nothing and every execution path — "
        "serial, pooled, cached — returns identical rows.",
        lambda t: [
            f"{row['case']}: {_fmt(row['speedup'], 2)}x at {row['workers']} workers "
            f"(serial {_fmt(row['serial_s'], 2)} s, pooled {_fmt(row['pooled_s'], 2)} s), "
            f"warm cache {_fmt(row['warm_s'] * 1000, 1)} ms at "
            f"{_fmt(100 * row['warm_hit_ratio'], 0)}% hits, rows identical: "
            f"{'yes' if row['rows_identical'] else 'NO'}."
            for row in t.rows
        ],
    ),
    "serve_loadtest": ExperimentMeta(
        "G3",
        "Online serving latency/throughput under load (guard, not a paper figure)",
        "Zero protocol errors on every profile; batched results identical to "
        "the serial OnlineAssigner replay; sustainable rates shed nothing "
        "while the overload case sheds via explicit admission rejections "
        "with served-request latency still bounded by the queue.",
        lambda t: [
            f"{row['case']}: {_fmt(row['throughput_rps'], 0)} req/s "
            f"(offered {_fmt(row['offered_rate_hz'], 0)}), p50/p95/p99 "
            f"{_fmt(row['p50_ms'], 2)}/{_fmt(row['p95_ms'], 2)}/"
            f"{_fmt(row['p99_ms'], 2)} ms, {row['ok']} ok / "
            f"{row['rejected']} rejected / {row['errors']} errors, "
            f"matches serial: {'yes' if row['matches_serial'] else 'NO'}."
            for row in t.rows
        ],
    ),
    "shard_loadtest": ExperimentMeta(
        "G4",
        "Topology-sharded serving: throughput, failover goodput, device scale "
        "(guard, not a paper figure)",
        "Zero protocol errors in every case including a SIGKILLed shard "
        "mid-run; pre-crash goodput 1.0 with bounded loss through the crash "
        "window (failed-shard traffic spills along the hash ring); the "
        "100k-device case routes without rejections. Multi-process throughput "
        "ratios are hardware-bound: on a single-core host shards time-slice "
        "one CPU, so the ≥3x four-shard target needs a multi-core box.",
        lambda t: [
            f"{row['case']}: {_fmt(row['throughput_rps'], 0)} req/s over "
            f"{row['shards']} shard(s), {row['devices']} devices, p50/p99 "
            f"{_fmt(row['p50_ms'], 2)}/{_fmt(row['p99_ms'], 2)} ms, "
            f"{row['ok']} ok / {row['rejected']} rejected / "
            f"{row['errors']} errors"
            + (
                f", goodput steady/crash "
                f"{row['goodput_steady']}/{row['goodput_crash']}, "
                f"{row['spillovers']} spillovers."
                if row["case"] == "failover"
                else "."
            )
            for row in t.rows
        ],
    ),
    "gray_failure": ExperimentMeta(
        "G5",
        "Gray-failure tolerance: goodput and tail latency under wire chaos, "
        "hedging+deadlines on vs off (guard, not a paper figure)",
        "Under one gray schedule (a lossy edge, a slow shard holding a third "
        "of its requests past the deadline, background jitter, and a mid-run "
        "SIGKILL with WAL recovery) the full defense stack holds goodput "
        ">= 0.9 with p99 below the 2 s deadline, while the no-hedge baseline "
        "rides every held message to the deadline: goodput drops with the "
        "loss rate and p99 pegs at the budget. Zero protocol errors in both "
        "cases; the killed shard replays its WAL in single-digit "
        "milliseconds.",
        lambda t: [
            f"{row['case']}: goodput {row['goodput']} "
            f"({row['ok']}/{row['requests']} ok, {row['timeouts']} timeouts, "
            f"{row['rejected']} rejected, {row['errors']} errors), p50/p99 "
            f"{_fmt(row['p50_ms'], 2)}/{_fmt(row['p99_ms'], 2)} ms, "
            f"{row['hedges']} hedges ({row['hedge_wins']} wins), "
            f"{row['netem_lost']} messages lost on the wire, WAL recovery "
            f"{_fmt(row['recovery_ms'], 1)} ms."
            for row in t.rows
        ],
    ),
    "contention_tail": ExperimentMeta(
        "G6",
        "Tail amplification vs inter-rack oversubscription: delay-only vs "
        "contention-aware assignment (guard, not a paper figure)",
        "At oversubscription 1-4x both configurations score the same p99 "
        "effective delay (contention is negligible and the static delay "
        "matrix is an adequate model). Past the knee the delay-only "
        "assignment keeps funneling flows through the thinned tier-crossing "
        "uplinks: its max link utilization crosses 1.0 and its p99 effective "
        "delay amplifies several-fold, while congestion-aware local search "
        "spreads flows across subtrees and holds the tail nearly flat — "
        "p99_gain_ms is ~0 before the knee and grows monotonically after it.",
        lambda t: [
            f"{row['solver']} @ {_fmt(row['oversubscription'], 0)}x: p99 "
            f"{_fmt(row['p99_ms_mean'], 2)} ms, mean "
            f"{_fmt(row['mean_ms_mean'], 2)} ms, max utilization "
            f"{_fmt(row['max_utilization_mean'], 2)}, "
            f"{_fmt(row['saturated_links_mean'], 1)} saturated link(s), "
            f"p99 gain over delay-only {_fmt(row['p99_gain_ms_mean'], 2)} ms."
            for row in t.rows
        ],
    ),
}


def render_section(name: str, table: ResultTable) -> str:
    """One experiment's Markdown section."""
    meta = EXPERIMENTS[name]
    lines = [
        f"## {meta.experiment_id} — {meta.title}",
        "",
        f"**Expected shape (reconstruction):** {meta.expected}",
        "",
        "**Measured:**",
        "",
        table.to_markdown(),
        "",
        "**Observations:**",
        "",
    ]
    try:
        observations = meta.observe(table)
    except (KeyError, ValueError, ZeroDivisionError) as exc:
        observations = [f"(observation extraction failed: {exc})"]
    lines.extend(f"- {obs}" for obs in observations)
    lines.append("")
    return "\n".join(lines)


def render_report(results_dir: "str | Path", scale_note: str = "") -> str:
    """Full EXPERIMENTS.md body from a results directory."""
    results_dir = Path(results_dir)
    header = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated by `python -m repro.experiments.report` from the JSON",
        "tables written by `pytest benchmarks/ --benchmark-only`.",
        "",
        "Only the paper's **abstract** was available (see DESIGN.md), so",
        "each experiment below is a documented reconstruction: the",
        "*expected shape* states what a figure of this kind shows and what",
        "the abstract's claims predict; the *measured* table is this",
        "reproduction's output; the *observations* verify the shape.",
        "Absolute numbers are not comparable to the original testbed.",
        "",
    ]
    if scale_note:
        header.extend([scale_note, ""])
    sections = []
    missing = []
    for name in EXPERIMENTS:
        path = results_dir / f"{name}.json"
        if not path.exists():
            missing.append(name)
            continue
        sections.append(render_section(name, ResultTable.load_json(path)))
    if missing:
        sections.append(
            "## Missing results\n\nNot yet generated: " + ", ".join(missing) + "\n"
        )
    return "\n".join(header + sections)


def main(argv: "list[str] | None" = None) -> int:  # pragma: no cover - CLI shim
    """Print this experiment's table when run as a script."""
    args = argv if argv is not None else sys.argv[1:]
    results_dir = Path(args[0]) if args else Path("benchmarks/results/full")
    output = Path(args[1]) if len(args) > 1 else Path("EXPERIMENTS.md")
    scale_note = args[2] if len(args) > 2 else ""
    output.write_text(render_report(results_dir, scale_note), encoding="utf-8")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""T2 — runtime scalability.

Wall-clock time of every solver across instance sizes.  Expected
shape: branch-and-bound blows up combinatorially and is only run up to
a size cutoff; the constructive heuristics are near-instant at every
size; metaheuristics and RL scale roughly linearly in devices ×
budget, with TACC's cost dominated by its episode budget.
"""

from __future__ import annotations

from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated (size, solver) → runtime table."""
    config = get_config("t2", scale)
    raw = ResultTable(
        ["size", "solver", "runtime_s", "total_delay_ms"],
        title="T2: solver runtime vs instance size",
    )
    for n_devices, n_servers in config.params["sizes"]:
        size_label = f"{n_devices}x{n_servers}"
        solvers = list(FIGURE_SOLVERS)
        if n_devices <= config.params["include_exact_upto"]:
            solvers.append("branch_and_bound")
        for repeat in range(config.repeats):
            cell_seed = derive_seed(seed, "t2", size_label, repeat)
            problem = topology_instance(
                n_routers=max(30, n_devices // 2),
                n_devices=n_devices,
                n_servers=n_servers,
                tightness=0.75,
                seed=cell_seed,
            )
            results = run_solver_field(
                problem, solvers, seed=cell_seed, solver_kwargs=config.solver_kwargs
            )
            for name, result in results.items():
                raw.add_row(
                    size=size_label,
                    solver=name,
                    runtime_s=result.runtime_s,
                    total_delay_ms=result.objective_value * 1e3,
                )
    return raw.aggregate(["size", "solver"], ["runtime_s", "total_delay_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text(float_format=".4f"))


if __name__ == "__main__":  # pragma: no cover
    main()

"""T2 — runtime scalability.

Wall-clock time of every solver across instance sizes.  Expected
shape: branch-and-bound blows up combinatorially and is only run up to
a size cutoff; the constructive heuristics are near-instant at every
size; metaheuristics and RL scale roughly linearly in devices ×
budget, with TACC's cost dominated by its episode budget.
"""

from __future__ import annotations

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed

COLUMNS = ["size", "solver", "runtime_s", "total_delay_ms"]
TITLE = "T2: solver runtime vs instance size"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one (size, repeat) cell — the engine job entry point."""
    n_devices = params["n_devices"]
    problem = topology_instance(
        n_routers=max(30, n_devices // 2),
        n_devices=n_devices,
        n_servers=params["n_servers"],
        tightness=0.75,
        seed=seed,
    )
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    return [
        {
            "size": params["size"],
            "solver": name,
            "runtime_s": float(result.runtime_s),
            "total_delay_ms": float(result.objective_value * 1e3),
        }
        for name, result in results.items()
    ]


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("t2", scale)
    specs = []
    for n_devices, n_servers in config.params["sizes"]:
        size_label = f"{n_devices}x{n_servers}"
        solvers = list(FIGURE_SOLVERS)
        if n_devices <= config.params["include_exact_upto"]:
            solvers.append("branch_and_bound")
        for repeat in range(config.repeats):
            specs.append(
                JobSpec(
                    experiment="t2",
                    fn="repro.experiments.t2_runtime:cell",
                    params={
                        "n_devices": n_devices,
                        "n_servers": n_servers,
                        "size": size_label,
                        "solvers": solvers,
                        "solver_kwargs": config.solver_kwargs,
                    },
                    seed=derive_seed(seed, "t2", size_label, repeat),
                    label=f"t2 {size_label} repeat={repeat}",
                )
            )
    return specs


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (size, solver) → runtime table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["size", "solver"], ["runtime_s", "total_delay_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text(float_format=".4f"))


if __name__ == "__main__":  # pragma: no cover
    main()

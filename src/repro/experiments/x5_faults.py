"""X5 (extension) — availability under server failures.

Not a figure of the original paper: servers fail, and a configuration
that was optimal with all servers up leaves devices stranded when one
goes down.  Two policies ride one shared failure timeline:

* ``static`` — the initial assignment is never touched; devices on a
  failed server are simply unserved until it repairs;
* ``reactive`` — on every fault-state change, re-solve the degraded
  problem (failed servers cannot host anyone) and migrate.

Per (policy, epoch): serving fraction (availability), total delay of
*served* devices, and cumulative migrations.

Expected shape: static availability dips with every failure and only
recovers on repair; reactive restores full service within the same
epoch whenever the surviving capacity suffices, paying migration
bursts and a temporarily higher delay (devices crowd onto farther
servers while their home server is down).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.faults import (
    ServerFaultProcess,
    degraded_problem,
    served_cost,
    serving_fraction,
)
from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

POLICIES = ("static", "reactive")

COLUMNS = ["policy", "epoch", "serving_fraction", "served_cost_ms", "cumulative_moves"]
TITLE = "X5 (extension): availability under server failures"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (both policies) — the engine job entry point."""
    tacc_kwargs = params["tacc_kwargs"]
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    faults = ServerFaultProcess(
        problem.n_servers,
        fail_prob=params["fail_prob"],
        repair_prob=params["repair_prob"],
        seed=derive_seed(seed, "faults"),
    )
    timeline = [faults.step(epoch) for epoch in range(1, params["epochs"] + 1)]
    initial = get_solver("tacc", seed=derive_seed(seed, "initial"), **tacc_kwargs).solve(
        problem
    )
    initial_vector = initial.assignment.vector
    rows = []
    for policy in params["policies"]:
        vector = initial_vector.copy()
        moves = 0
        rows.append(
            {
                "policy": policy,
                "epoch": 0,
                "serving_fraction": 1.0,
                "served_cost_ms": served_cost(problem, vector, frozenset()) * 1e3,
                "cumulative_moves": 0.0,
            }
        )
        previous_failed: frozenset[int] = frozenset()
        for event in timeline:
            if policy == "reactive" and event.failed != previous_failed:
                degraded = degraded_problem(problem, event.failed)
                # the resilient chain falls back to greedy when the RL
                # solve fails or stalls, so the reaction never raises
                solver = get_solver(
                    "resilient",
                    chain=("tacc", "greedy"),
                    member_kwargs={"tacc": tacc_kwargs},
                    seed=derive_seed(seed, "reactive", event.epoch),
                )
                result = solver.solve(degraded)
                if result.feasible:
                    new_vector = result.assignment.vector
                    moves += int(np.count_nonzero(new_vector != vector))
                    vector = new_vector
                # infeasible degraded problem (not enough surviving
                # capacity): keep the old vector; stranded devices show
                # up in the serving fraction
            previous_failed = event.failed
            rows.append(
                {
                    "policy": policy,
                    "epoch": event.epoch,
                    "serving_fraction": serving_fraction(
                        vector, event.failed, problem.n_devices
                    ),
                    "served_cost_ms": served_cost(problem, vector, event.failed) * 1e3,
                    "cumulative_moves": float(moves),
                }
            )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x5", scale)
    params = config.params
    return [
        JobSpec(
            experiment="x5",
            fn="repro.experiments.x5_faults:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "fail_prob": params["fail_prob"],
                "repair_prob": params["repair_prob"],
                "epochs": params["epochs"],
                "policies": list(POLICIES),
                "tacc_kwargs": dict(config.solver_kwargs.get("tacc", {})),
            },
            seed=derive_seed(seed, "x5", repeat),
            label=f"x5 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the (policy, epoch) availability/cost/migration series."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["policy", "epoch"], ["serving_fraction", "served_cost_ms", "cumulative_moves"]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""X7 (extension) — tail amplification under inter-rack oversubscription.

Not a figure of the original paper: the static delay matrix assumes
every packet travels alone, so a delay-optimal assignment happily
funnels many flows through the same thin tier-crossing uplink.  This
experiment sweeps the oversubscription factor of those uplinks on a
hierarchical edge topology and scores each assignment under the
flow-based contention model (:mod:`repro.contention`):

* ``local_search`` — the delay-only configuration the paper evaluates;
* ``congestion_local_search`` — the same neighbourhood descending on
  the contention-aware effective delay.

At low oversubscription the two agree (contention is negligible, the
static matrix is an adequate model).  Past the knee the delay-only
p99 *effective* delay amplifies — its funneled uplinks saturate — while
the contention-aware configuration spreads flows and holds the tail.
The ``p99_gain_ms`` column is the headline: ~0 before the knee,
strongly positive after.
"""

from __future__ import annotations

from repro.contention import ContentionConfig, ContentionModel
from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

COLUMNS = [
    "solver", "oversubscription", "p99_ms", "mean_ms", "max_utilization",
    "saturated_links", "p99_gain_ms",
]
TITLE = "X7 (extension): tail amplification vs inter-rack oversubscription"

#: the delay-only baseline and its contention-aware counterpart
SOLVERS = ("local_search", "congestion_local_search")


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (both solvers, one factor) — engine entry point."""
    factor = float(params["oversubscription"])
    problem = topology_instance(
        family=params["family"],
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
        oversubscription=factor,
    )
    config = ContentionConfig(flow_scale=params["flow_scale"])
    model = ContentionModel(problem, config)
    evaluations = {}
    for name in SOLVERS:
        kwargs = {"seed": derive_seed(seed, "solve", name)}
        if name.startswith("congestion_"):
            kwargs["config"] = config
        result = get_solver(name, **kwargs).solve(problem)
        evaluations[name] = model.evaluate(result.assignment.vector)
    baseline_p99 = evaluations[SOLVERS[0]].p99_effective_delay
    rows = []
    for name in SOLVERS:
        evaluation = evaluations[name]
        rows.append(
            {
                "solver": name,
                "oversubscription": factor,
                "p99_ms": evaluation.p99_effective_delay * 1e3,
                "mean_ms": evaluation.mean_effective_delay * 1e3,
                "max_utilization": evaluation.max_utilization,
                "saturated_links": float(evaluation.saturated_links),
                # gain of this solver over the delay-only baseline
                "p99_gain_ms": (baseline_p99 - evaluation.p99_effective_delay) * 1e3,
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x7", scale)
    params = config.params
    return [
        JobSpec(
            experiment="x7",
            fn="repro.experiments.x7_contention:cell",
            params={
                "family": params["family"],
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "flow_scale": params["flow_scale"],
                "oversubscription": factor,
            },
            seed=derive_seed(seed, "x7", repeat),
            label=f"x7 oversubscription={factor} repeat={repeat}",
        )
        for factor in params["oversubscription_factors"]
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the oversubscription sweep table (both solvers, all factors)."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["solver", "oversubscription"],
        ["p99_ms", "mean_ms", "max_utilization", "saturated_links", "p99_gain_ms"],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

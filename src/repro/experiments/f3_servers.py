"""F3 — total communication delay vs number of edge servers.

Fixes the device fleet and grows the cluster.  Expected shape: all
curves fall as servers are added (more close-by options, looser
capacities); TACC exploits new servers fastest and saturates near the
capacity-relaxed bound; delay-blind baselines improve more slowly.
"""

from __future__ import annotations

import math

from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated (n_servers, solver) → delay series."""
    config = get_config("f3", scale)
    raw = ResultTable(
        ["n_servers", "solver", "total_delay_ms", "feasible"],
        title="F3: total delay vs number of edge servers",
    )
    for n_servers in config.params["n_servers"]:
        for repeat in range(config.repeats):
            cell_seed = derive_seed(seed, "f3", n_servers, repeat)
            problem = topology_instance(
                n_routers=config.params["n_routers"],
                n_devices=config.params["n_devices"],
                n_servers=n_servers,
                tightness=0.75,
                seed=cell_seed,
            )
            results = run_solver_field(
                problem, FIGURE_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
            )
            for name, result in results.items():
                value = result.objective_value * 1e3
                raw.add_row(
                    n_servers=n_servers,
                    solver=name,
                    total_delay_ms=value if math.isfinite(value) else math.nan,
                    feasible=result.feasible,
                )
    return raw.aggregate(["n_servers", "solver"], ["total_delay_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "n_servers", "total_delay_ms_mean", "solver"),
            title="F3: total delay vs servers",
            x_label="edge servers",
            y_label="total delay (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

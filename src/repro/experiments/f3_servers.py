"""F3 — total communication delay vs number of edge servers.

Fixes the device fleet and grows the cluster.  Expected shape: all
curves fall as servers are added (more close-by options, looser
capacities); TACC exploits new servers fastest and saturates near the
capacity-relaxed bound; delay-blind baselines improve more slowly.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed

COLUMNS = ["n_servers", "solver", "total_delay_ms", "feasible"]
TITLE = "F3: total delay vs number of edge servers"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one (n_servers, repeat) cell — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=0.75,
        seed=seed,
    )
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        value = result.objective_value * 1e3
        rows.append(
            {
                "n_servers": params["n_servers"],
                "solver": name,
                "total_delay_ms": value if math.isfinite(value) else math.nan,
                "feasible": bool(result.feasible),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f3", scale)
    specs = []
    for n_servers in config.params["n_servers"]:
        for repeat in range(config.repeats):
            specs.append(
                JobSpec(
                    experiment="f3",
                    fn="repro.experiments.f3_servers:cell",
                    params={
                        "n_servers": n_servers,
                        "n_devices": config.params["n_devices"],
                        "n_routers": config.params["n_routers"],
                        "solvers": list(FIGURE_SOLVERS),
                        "solver_kwargs": config.solver_kwargs,
                    },
                    seed=derive_seed(seed, "f3", n_servers, repeat),
                    label=f"f3 n_servers={n_servers} repeat={repeat}",
                )
            )
    return specs


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (n_servers, solver) → delay series."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["n_servers", "solver"], ["total_delay_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "n_servers", "total_delay_ms_mean", "solver"),
            title="F3: total delay vs servers",
            x_label="edge servers",
            y_label="total delay (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

"""Experiment implementations — one module per paper table/figure.

Each module exposes ``run(scale="quick", seed=0) -> ResultTable`` so
the same code drives the ``benchmarks/`` suite (``--benchmark-only``),
the examples, and ad-hoc exploration.  ``scale`` selects the parameter
grid from :mod:`repro.experiments.configs`: ``"quick"`` finishes in
seconds for CI, ``"full"`` is the paper-scale sweep.

Index (see DESIGN.md for the reconstruction rationale):

========  =========================================  =======================
ID        What it reproduces                          Module
========  =========================================  =======================
T1        optimality gap on small instances           ``t1_optimality``
F2        delay vs number of IoT devices              ``f2_devices``
F3        delay vs number of edge servers             ``f3_servers``
F4        load distribution / overload safety         ``f4_load``
F5        measured latency & deadline misses (DES)    ``f5_deadline``
F6        RL convergence                              ``f6_convergence``
T2        runtime scalability                         ``t2_runtime``
F7        sensitivity to topology family              ``f7_topology``
F8        dynamic reconfiguration under mobility      ``f8_dynamic``
T3        ablation of TACC design choices             ``t3_ablation``
X1        extension: membership under churn           ``x1_churn``
X2        extension: placement sensitivity            ``x2_placement``
X3        extension: objective trade-off              ``x3_objective``
X4        extension: measurement-noise robustness     ``x4_noise``
X5        extension: server-failure availability      ``x5_faults``
========  =========================================  =======================
"""

from repro.experiments.harness import ResultTable, run_solver_field, sweep_seeds

__all__ = ["ResultTable", "run_solver_field", "sweep_seeds"]

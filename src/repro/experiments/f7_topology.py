"""F7 — sensitivity to the topology family.

Runs the comparison field on every topology generator at equal device
and cluster sizes.  Absolute delays differ across families (a fat tree
has shorter paths than a sparse Waxman graph), so the figure reports
each solver's cost normalized by the instance's LP lower bound —
comparable across families.  Expected shape: the algorithm ordering is
stable across families; TACC's advantage widens on families with
heterogeneous path costs (hierarchy, Barabási–Albert) where topology
awareness matters most.
"""

from __future__ import annotations

import math

from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.solvers.lp import lp_lower_bound
from repro.utils.rng import derive_seed


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated (family, solver) → normalized-cost table."""
    config = get_config("f7", scale)
    params = config.params
    raw = ResultTable(
        ["family", "solver", "cost_over_lp", "feasible"],
        title="F7: cost (normalized by LP bound) across topology families",
    )
    for family in params["families"]:
        for repeat in range(config.repeats):
            cell_seed = derive_seed(seed, "f7", family, repeat)
            problem = topology_instance(
                family=family,
                n_routers=params["n_routers"],
                n_devices=params["n_devices"],
                n_servers=params["n_servers"],
                tightness=0.8,
                seed=cell_seed,
            )
            bound = lp_lower_bound(problem)
            results = run_solver_field(
                problem, FIGURE_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
            )
            for name, result in results.items():
                if result.feasible and bound > 0:
                    ratio = result.objective_value / bound
                else:
                    ratio = math.nan
                raw.add_row(
                    family=family,
                    solver=name,
                    cost_over_lp=ratio,
                    feasible=result.feasible,
                )
    return raw.aggregate(["family", "solver"], ["cost_over_lp"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

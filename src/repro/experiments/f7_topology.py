"""F7 — sensitivity to the topology family.

Runs the comparison field on every topology generator at equal device
and cluster sizes.  Absolute delays differ across families (a fat tree
has shorter paths than a sparse Waxman graph), so the figure reports
each solver's cost normalized by the instance's LP lower bound —
comparable across families.  Expected shape: the algorithm ordering is
stable across families; TACC's advantage widens on families with
heterogeneous path costs (hierarchy, Barabási–Albert) where topology
awareness matters most.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.lp import lp_lower_bound
from repro.utils.rng import derive_seed

COLUMNS = ["family", "solver", "cost_over_lp", "feasible"]
TITLE = "F7: cost (normalized by LP bound) across topology families"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one (family, repeat) cell — the engine job entry point."""
    problem = topology_instance(
        family=params["family"],
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=0.8,
        seed=seed,
    )
    bound = lp_lower_bound(problem)
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        if result.feasible and bound > 0:
            ratio = result.objective_value / bound
        else:
            ratio = math.nan
        rows.append(
            {
                "family": params["family"],
                "solver": name,
                "cost_over_lp": ratio,
                "feasible": bool(result.feasible),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f7", scale)
    params = config.params
    specs = []
    for family in params["families"]:
        for repeat in range(config.repeats):
            specs.append(
                JobSpec(
                    experiment="f7",
                    fn="repro.experiments.f7_topology:cell",
                    params={
                        "family": family,
                        "n_routers": params["n_routers"],
                        "n_devices": params["n_devices"],
                        "n_servers": params["n_servers"],
                        "solvers": list(FIGURE_SOLVERS),
                        "solver_kwargs": config.solver_kwargs,
                    },
                    seed=derive_seed(seed, "f7", family, repeat),
                    label=f"f7 family={family} repeat={repeat}",
                )
            )
    return specs


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (family, solver) → normalized-cost table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["family", "solver"], ["cost_over_lp"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

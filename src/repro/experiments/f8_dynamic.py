"""F8 — dynamic reconfiguration under device mobility.

Devices move (random waypoint), attachment points change, the delay
matrix drifts; four controller strategies maintain the assignment.
Expected shape: the ``static`` strategy's per-epoch delay drifts
upward; ``always`` tracks the per-epoch optimum at maximum migration
churn; ``hysteresis`` stays close to ``always`` with a fraction of the
moves; ``polish`` sits between static and hysteresis at near-zero
solve cost.
"""

from __future__ import annotations

from repro.cluster.controller import RECONFIGURE_STRATEGIES, ReconfigurationController
from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed
from repro.workload.mobility import RandomWaypointMobility

COLUMNS = ["strategy", "epoch", "cost_ms", "cumulative_moves", "feasible"]
TITLE = "F8: delay over time under mobility, per reconfiguration strategy"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (all strategies) — the engine job entry point."""
    base_problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=0.75,
        seed=seed,
    )
    # materialize one shared mobility trajectory so strategies face
    # identical drift
    mobility = RandomWaypointMobility(base_problem, seed=derive_seed(seed, "mobility"))
    epochs = list(mobility.epochs(params["epochs"]))
    rows = []
    for strategy in params["strategies"]:
        solver = get_solver(
            "tacc", seed=derive_seed(seed, "solver", strategy), **params["tacc_kwargs"]
        )
        controller = ReconfigurationController(solver, strategy=strategy)
        decision = controller.initialize(base_problem)
        rows.append(
            {
                "strategy": strategy,
                "epoch": 0,
                "cost_ms": decision.cost * 1e3,
                "cumulative_moves": float(controller.total_moves),
                "feasible": bool(decision.feasible),
            }
        )
        for epoch_state in epochs:
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            rows.append(
                {
                    "strategy": strategy,
                    "epoch": epoch_state.epoch,
                    "cost_ms": decision.cost * 1e3,
                    "cumulative_moves": float(controller.total_moves),
                    "feasible": bool(decision.feasible),
                }
            )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f8", scale)
    params = config.params
    tacc_kwargs = dict(config.solver_kwargs.get("tacc", {}))
    return [
        JobSpec(
            experiment="f8",
            fn="repro.experiments.f8_dynamic:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "epochs": params["epochs"],
                "strategies": list(RECONFIGURE_STRATEGIES),
                "tacc_kwargs": tacc_kwargs,
            },
            seed=derive_seed(seed, "f8", repeat),
            label=f"f8 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the per-(strategy, epoch) delay/migration time series."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["strategy", "epoch"], ["cost_ms", "cumulative_moves"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "epoch", "cost_ms_mean", "strategy"),
            title="F8: delay over mobility epochs",
            x_label="epoch",
            y_label="total delay (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

"""F6 — RL training convergence.

Plots the best-feasible-so-far episode cost of the RL solvers against
training episodes, with the exact optimum (branch-and-bound) and LP
bound as reference floors.  Expected shape: monotone non-increasing
curves; TACC drops faster and lands closer to the optimum than plain
Q-learning, thanks to the topology-aware exploration prior.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.lp import lp_lower_bound
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

#: number of sample points taken from each training curve
CURVE_POINTS = 20

COLUMNS = ["solver", "episode", "best_cost_ms"]
TITLE = "F6: RL convergence (best feasible episode cost)"


def best_so_far(episode_costs: list[float]) -> np.ndarray:
    """Running minimum over episodes, NaN until the first feasible one."""
    best = math.inf
    curve = np.empty(len(episode_costs))
    for i, cost in enumerate(episode_costs):
        if not math.isnan(cost):
            best = min(best, cost)
        curve[i] = best if math.isfinite(best) else math.nan
    return curve


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (all solvers + references) — engine entry point."""
    episodes = params["episodes"]
    sample_points = np.unique(
        np.linspace(1, episodes, params["curve_points"]).astype(int)
    )
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=0.8,
        seed=seed,
    )
    references = {"lp_bound": lp_lower_bound(problem)}
    exact = get_solver("branch_and_bound", node_budget=1_500_000).solve(problem)
    if exact.feasible and exact.extra.get("optimal"):
        references["optimum"] = exact.objective_value
    rows = []
    for name in ("qlearning", "sarsa", "tacc", "bandit"):
        kwargs = {"episodes": episodes} if name != "bandit" else {"rounds": episodes}
        solver = get_solver(name, seed=derive_seed(seed, name), **kwargs)
        result = solver.solve(problem)
        curve = best_so_far(result.extra.get("episode_costs", []))
        for episode in sample_points:
            if episode - 1 < curve.size:
                value = curve[episode - 1] * 1e3
                rows.append(
                    {
                        "solver": name,
                        "episode": int(episode),
                        "best_cost_ms": float(value) if math.isfinite(value) else math.nan,
                    }
                )
    for ref_name, ref_value in references.items():
        for episode in sample_points:
            rows.append(
                {"solver": ref_name, "episode": int(episode), "best_cost_ms": ref_value * 1e3}
            )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f6", scale)
    params = config.params
    return [
        JobSpec(
            experiment="f6",
            fn="repro.experiments.f6_convergence:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "episodes": params["episodes"],
                "curve_points": CURVE_POINTS,
            },
            seed=derive_seed(seed, "f6", repeat),
            label=f"f6 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the (solver, episode) → best-cost curve table.

    Reference rows use solver names ``"optimum"`` and ``"lp_bound"``
    with the same value at every sampled episode.
    """
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["solver", "episode"], ["best_cost_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "episode", "best_cost_ms_mean", "solver"),
            title="F6: best feasible episode cost vs training episodes",
            x_label="episode",
            y_label="best cost (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

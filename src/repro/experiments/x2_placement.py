"""X2 (extension) — edge-server placement sensitivity.

Not a figure of the original paper: assignment quality depends on
where the cluster was placed *before* any assignment runs, so this
extension sweeps the placement strategies of
:mod:`repro.topology.placement` (random / degree / spread / medoid)
and solves each resulting instance with TACC and greedy.

Expected shape: delay-aware placements (``spread``, ``medoid``) yield
lower total delay than ``random`` for every solver; the assignment
algorithm cannot fully compensate for a bad placement — the gap
between placements persists even under TACC.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.solvers.lp import lp_lower_bound
from repro.topology.placement import PLACEMENT_STRATEGIES
from repro.utils.rng import derive_seed

X2_SOLVERS = ["greedy", "tacc"]

COLUMNS = ["placement", "solver", "total_delay_ms", "lp_bound_ms"]
TITLE = "X2 (extension): sensitivity to edge-server placement"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one (placement, repeat) cell — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        placement=params["placement"],
        seed=seed,
    )
    bound = lp_lower_bound(problem)
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        value = result.objective_value * 1e3
        rows.append(
            {
                "placement": params["placement"],
                "solver": name,
                "total_delay_ms": value if math.isfinite(value) else math.nan,
                "lp_bound_ms": bound * 1e3,
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x2", scale)
    params = config.params
    specs = []
    for placement in sorted(PLACEMENT_STRATEGIES):
        for repeat in range(config.repeats):
            specs.append(
                JobSpec(
                    experiment="x2",
                    fn="repro.experiments.x2_placement:cell",
                    params={
                        "placement": placement,
                        "n_routers": params["n_routers"],
                        "n_devices": params["n_devices"],
                        "n_servers": params["n_servers"],
                        "tightness": params["tightness"],
                        "solvers": list(X2_SOLVERS),
                        "solver_kwargs": config.solver_kwargs,
                    },
                    seed=derive_seed(seed, "x2", placement, repeat),
                    label=f"x2 placement={placement} repeat={repeat}",
                )
            )
    return specs


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (placement, solver) → delay table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["placement", "solver"], ["total_delay_ms", "lp_bound_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""X2 (extension) — edge-server placement sensitivity.

Not a figure of the original paper: assignment quality depends on
where the cluster was placed *before* any assignment runs, so this
extension sweeps the placement strategies of
:mod:`repro.topology.placement` (random / degree / spread / medoid)
and solves each resulting instance with TACC and greedy.

Expected shape: delay-aware placements (``spread``, ``medoid``) yield
lower total delay than ``random`` for every solver; the assignment
algorithm cannot fully compensate for a bad placement — the gap
between placements persists even under TACC.
"""

from __future__ import annotations

import math

from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.solvers.lp import lp_lower_bound
from repro.topology.placement import PLACEMENT_STRATEGIES
from repro.utils.rng import derive_seed

X2_SOLVERS = ["greedy", "tacc"]


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated (placement, solver) → delay table."""
    config = get_config("x2", scale)
    params = config.params
    raw = ResultTable(
        ["placement", "solver", "total_delay_ms", "lp_bound_ms"],
        title="X2 (extension): sensitivity to edge-server placement",
    )
    for placement in sorted(PLACEMENT_STRATEGIES):
        for repeat in range(config.repeats):
            cell_seed = derive_seed(seed, "x2", placement, repeat)
            problem = topology_instance(
                n_routers=params["n_routers"],
                n_devices=params["n_devices"],
                n_servers=params["n_servers"],
                tightness=params["tightness"],
                placement=placement,
                seed=cell_seed,
            )
            bound = lp_lower_bound(problem)
            results = run_solver_field(
                problem, X2_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
            )
            for name, result in results.items():
                value = result.objective_value * 1e3
                raw.add_row(
                    placement=placement,
                    solver=name,
                    total_delay_ms=value if math.isfinite(value) else math.nan,
                    lp_bound_ms=bound * 1e3,
                )
    return raw.aggregate(["placement", "solver"], ["total_delay_ms", "lp_bound_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""F4 — load distribution and overload safety.

On deliberately tight instances (tightness ≈ 0.85–0.9), measure each
algorithm's maximum server utilization, overloaded-server count and
utilization spread.  Expected shape: the capacity-blind nearest-server
strawman overloads (max utilization > 1); every capacity-aware
algorithm, TACC included, stays at or under 1.0 — the paper's "none of
the edge devices are overloaded" guarantee made visible.
"""

from __future__ import annotations

import numpy as np

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed

#: the strawman is the point of this figure, so add it to the field
F4_SOLVERS = ["nearest"] + FIGURE_SOLVERS

COLUMNS = ["solver", "max_utilization", "overloaded_servers", "utilization_spread", "feasible"]
TITLE = "F4: load distribution and overload safety"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        utilization = result.assignment.utilization()
        rows.append(
            {
                "solver": name,
                "max_utilization": float(np.max(utilization)),
                "overloaded_servers": float(len(result.assignment.overloaded_servers())),
                "utilization_spread": float(np.max(utilization) - np.min(utilization)),
                "feasible": bool(result.feasible),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f4", scale)
    return [
        JobSpec(
            experiment="f4",
            fn="repro.experiments.f4_load:cell",
            params={
                "n_routers": config.params["n_routers"],
                "n_devices": config.params["n_devices"],
                "n_servers": config.params["n_servers"],
                "tightness": config.params["tightness"],
                "solvers": list(F4_SOLVERS),
                "solver_kwargs": config.solver_kwargs,
            },
            seed=derive_seed(seed, "f4", repeat),
            label=f"f4 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated per-solver load-safety table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["solver"], ["max_utilization", "overloaded_servers", "utilization_spread"]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

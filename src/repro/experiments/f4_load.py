"""F4 — load distribution and overload safety.

On deliberately tight instances (tightness ≈ 0.85–0.9), measure each
algorithm's maximum server utilization, overloaded-server count and
utilization spread.  Expected shape: the capacity-blind nearest-server
strawman overloads (max utilization > 1); every capacity-aware
algorithm, TACC included, stays at or under 1.0 — the paper's "none of
the edge devices are overloaded" guarantee made visible.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed

#: the strawman is the point of this figure, so add it to the field
F4_SOLVERS = ["nearest"] + FIGURE_SOLVERS


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated per-solver load-safety table."""
    config = get_config("f4", scale)
    raw = ResultTable(
        ["solver", "max_utilization", "overloaded_servers", "utilization_spread", "feasible"],
        title="F4: load distribution and overload safety",
    )
    for repeat in range(config.repeats):
        cell_seed = derive_seed(seed, "f4", repeat)
        problem = topology_instance(
            n_routers=config.params["n_routers"],
            n_devices=config.params["n_devices"],
            n_servers=config.params["n_servers"],
            tightness=config.params["tightness"],
            seed=cell_seed,
        )
        results = run_solver_field(
            problem, F4_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
        )
        for name, result in results.items():
            utilization = result.assignment.utilization()
            raw.add_row(
                solver=name,
                max_utilization=float(np.max(utilization)),
                overloaded_servers=float(len(result.assignment.overloaded_servers())),
                utilization_spread=float(np.max(utilization) - np.min(utilization)),
                feasible=result.feasible,
            )
    return raw.aggregate(
        ["solver"], ["max_utilization", "overloaded_servers", "utilization_spread"]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""F5 — measured latency and deadline miss rate vs arrival rate (DES).

The simulation experiment: take the static assignments produced by a
subset of solvers, replay them as live traffic at increasing arrival
rates, and record *measured* mean network latency, p99 end-to-end
latency and deadline miss rate.  Expected shape: at low load the
ordering matches the static objective (TACC best); as the rate
approaches service capacity every curve knees upward, with the
better-placed assignments kneeing later.
"""

from __future__ import annotations

import math

from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.sim.runner import simulate_assignment
from repro.utils.rng import derive_seed

#: simulation is the expensive part, so the field is kept small
F5_SOLVERS = ["random", "greedy", "lp_rounding", "tacc"]


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated (rate_scale, solver) → measured metrics table."""
    config = get_config("f5", scale)
    params = config.params
    raw = ResultTable(
        [
            "rate_scale",
            "solver",
            "mean_network_latency_ms",
            "p99_total_latency_ms",
            "deadline_miss_rate",
        ],
        title="F5: measured latency and deadline misses vs arrival rate",
    )
    for repeat in range(config.repeats):
        cell_seed = derive_seed(seed, "f5", repeat)
        problem = topology_instance(
            n_routers=params["n_routers"],
            n_devices=params["n_devices"],
            n_servers=params["n_servers"],
            tightness=0.75,
            seed=cell_seed,
            deadline_s=params["deadline_s"],
        )
        results = run_solver_field(
            problem, F5_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
        )
        for rate_scale in params["rate_scales"]:
            for name, result in results.items():
                if not result.assignment.is_complete:
                    continue
                report = simulate_assignment(
                    result.assignment,
                    duration_s=params["duration_s"],
                    seed=derive_seed(cell_seed, "sim", name, str(rate_scale)),
                    rate_scale=rate_scale,
                )
                raw.add_row(
                    rate_scale=rate_scale,
                    solver=name,
                    mean_network_latency_ms=report.mean_network_latency_ms,
                    p99_total_latency_ms=report.p99_total_latency_ms,
                    deadline_miss_rate=report.deadline_miss_rate
                    if report.deadline_miss_rate is not None
                    else math.nan,
                )
    return raw.aggregate(
        ["rate_scale", "solver"],
        ["mean_network_latency_ms", "p99_total_latency_ms", "deadline_miss_rate"],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

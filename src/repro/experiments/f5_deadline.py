"""F5 — measured latency and deadline miss rate vs arrival rate (DES).

The simulation experiment: take the static assignments produced by a
subset of solvers, replay them as live traffic at increasing arrival
rates, and record *measured* mean network latency, p99 end-to-end
latency and deadline miss rate.  Expected shape: at low load the
ordering matches the static objective (TACC best); as the rate
approaches service capacity every curve knees upward, with the
better-placed assignments kneeing later.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.sim.runner import simulate_assignment
from repro.utils.rng import derive_seed

#: simulation is the expensive part, so the field is kept small
F5_SOLVERS = ["random", "greedy", "lp_rounding", "tacc"]

COLUMNS = [
    "rate_scale",
    "solver",
    "mean_network_latency_ms",
    "p99_total_latency_ms",
    "deadline_miss_rate",
]
TITLE = "F5: measured latency and deadline misses vs arrival rate"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (all rate scales) — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=0.75,
        seed=seed,
        deadline_s=params["deadline_s"],
    )
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for rate_scale in params["rate_scales"]:
        for name, result in results.items():
            if not result.assignment.is_complete:
                continue
            report = simulate_assignment(
                result.assignment,
                duration_s=params["duration_s"],
                seed=derive_seed(seed, "sim", name, str(rate_scale)),
                rate_scale=rate_scale,
            )
            rows.append(
                {
                    "rate_scale": rate_scale,
                    "solver": name,
                    "mean_network_latency_ms": report.mean_network_latency_ms,
                    "p99_total_latency_ms": report.p99_total_latency_ms,
                    "deadline_miss_rate": report.deadline_miss_rate
                    if report.deadline_miss_rate is not None
                    else math.nan,
                }
            )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f5", scale)
    params = config.params
    return [
        JobSpec(
            experiment="f5",
            fn="repro.experiments.f5_deadline:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "deadline_s": params["deadline_s"],
                "duration_s": params["duration_s"],
                "rate_scales": list(params["rate_scales"]),
                "solvers": list(F5_SOLVERS),
                "solver_kwargs": config.solver_kwargs,
            },
            seed=derive_seed(seed, "f5", repeat),
            label=f"f5 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (rate_scale, solver) → measured metrics table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["rate_scale", "solver"],
        ["mean_network_latency_ms", "p99_total_latency_ms", "deadline_miss_rate"],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""T3 — ablation of the TACC design choices.

Each variant removes one ingredient; all variants are *evaluated on
the true transmission-delay matrix*, regardless of what matrix they
were allowed to optimize over:

* ``tacc_full`` — the headline configuration;
* ``delay_hop_count`` — solve with a hop-count delay matrix (topology-
  aware routing but delay-blind links);
* ``delay_euclidean`` — solve with straight-line distances (topology-
  blind proximity);
* ``no_masking`` — penalty-only overload handling instead of
  feasibility masking;
* ``no_polish`` — skip the local-search refinement of the best episode;
* ``uniform_exploration`` — plain Q-learning exploration (no
  delay-Boltzmann prior), polish kept;
* ``random_device_order`` — episodes place devices in a fixed random
  order instead of decreasing demand (does sequencing the
  capacity-critical devices first matter?).

Expected shape: ``tacc_full`` best; the delay-model ablations lose the
most (this is the paper's titular claim quantified); ``no_masking``
occasionally returns infeasible assignments; ``no_polish`` and
``uniform_exploration`` cost a few percent each.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.rl.agent import TaccSolver
from repro.topology.delay import EuclideanDelayModel, HopCountDelayModel
from repro.utils.rng import derive_seed

ABLATION_VARIANTS = (
    "tacc_full",
    "delay_hop_count",
    "delay_euclidean",
    "no_masking",
    "no_polish",
    "uniform_exploration",
    "random_device_order",
)

COLUMNS = ["variant", "true_delay_ms", "feasible", "overloaded_servers"]
TITLE = "T3: TACC ablation (evaluated on the true delay matrix)"


def _ablated_problem(problem: AssignmentProblem, model) -> AssignmentProblem:
    """Same instance with the delay matrix recomputed under ``model``."""
    assert problem.graph is not None and problem.devices is not None
    assert problem.servers is not None
    ablated = AssignmentProblem.from_topology(
        problem.graph,
        problem.devices,
        problem.servers,
        delay_model=model,
        name=f"{problem.name}-{model.name}",
    )
    ablated.demand = problem.demand.copy()
    ablated.capacity = problem.capacity.copy()
    return ablated


def _solver_for(variant: str, episodes: int, seed: int) -> TaccSolver:
    if variant == "no_masking":
        return TaccSolver(episodes=episodes, seed=seed, mask_infeasible=False)
    if variant == "no_polish":
        return TaccSolver(episodes=episodes, seed=seed, polish=False)
    if variant == "uniform_exploration":
        # very high temperature flattens the Boltzmann prior to uniform
        return TaccSolver(episodes=episodes, seed=seed, exploration_temperature=1e6)
    if variant == "random_device_order":
        return TaccSolver(episodes=episodes, seed=seed, device_order="random")
    return TaccSolver(episodes=episodes, seed=seed)


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (all variants) — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    surrogates = {
        "delay_hop_count": _ablated_problem(problem, HopCountDelayModel()),
        "delay_euclidean": _ablated_problem(problem, EuclideanDelayModel()),
    }
    rows = []
    for variant in params["variants"]:
        solve_on = surrogates.get(variant, problem)
        solver = _solver_for(variant, params["episodes"], seed=derive_seed(seed, variant))
        result = solver.solve(solve_on)
        # re-score on the true matrix
        vector = result.assignment.vector
        if np.all(vector >= 0):
            true_assignment = Assignment(problem, vector)
            true_delay = true_assignment.total_delay() * 1e3
            feasible = true_assignment.is_feasible()
            overloaded = float(len(true_assignment.overloaded_servers()))
        else:
            true_delay, feasible, overloaded = math.nan, False, math.nan
        rows.append(
            {
                "variant": variant,
                "true_delay_ms": float(true_delay),
                "feasible": bool(feasible),
                "overloaded_servers": overloaded,
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("t3", scale)
    params = config.params
    return [
        JobSpec(
            experiment="t3",
            fn="repro.experiments.t3_ablation:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "episodes": params["episodes"],
                "variants": list(ABLATION_VARIANTS),
            },
            seed=derive_seed(seed, "t3", repeat),
            label=f"t3 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated per-variant true-delay table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["variant"], ["true_delay_ms", "overloaded_servers"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

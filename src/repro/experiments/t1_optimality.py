"""T1 — optimality gap on small instances.

For every (size, GAP class, repeat) cell, solve the instance exactly
with branch-and-bound and measure each heuristic's relative gap to the
optimum.  Expected shape: B&B gap 0 by construction; TACC single-digit
percent; plain greedy noticeably worse on the tight/correlated classes
(c, d); random worst.
"""

from __future__ import annotations

import math

from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import gap_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

#: heuristics measured against the optimum
T1_SOLVERS = [
    "random",
    "greedy",
    "regret",
    "local_search",
    "lp_rounding",
    "lagrangian",
    "lns",
    "annealing",
    "genetic",
    "qlearning",
    "sarsa",
    "tacc",
]


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated gap table (percent above optimum)."""
    config = get_config("t1", scale)
    raw = ResultTable(
        ["size", "klass", "solver", "gap_pct", "feasible"],
        title="T1: optimality gap on small instances",
    )
    for n_devices, n_servers in config.params["sizes"]:
        size_label = f"{n_devices}x{n_servers}"
        for klass in config.params["klasses"]:
            for repeat in range(config.repeats):
                cell_seed = derive_seed(seed, "t1", size_label, klass, repeat)
                problem = gap_instance(n_devices, n_servers, klass, seed=cell_seed)
                # bounded budget keeps a pathological cell from stalling the
                # table; cells the search cannot close are skipped below
                exact = get_solver("branch_and_bound", node_budget=1_500_000).solve(problem)
                if not exact.feasible or not exact.extra.get("optimal", False):
                    continue  # skip cells where the optimum is unavailable
                optimum = exact.objective_value
                results = run_solver_field(
                    problem, T1_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
                )
                for name, result in results.items():
                    if result.feasible and math.isfinite(result.objective_value):
                        gap = 100.0 * (result.objective_value / optimum - 1.0)
                    else:
                        gap = math.nan
                    raw.add_row(
                        size=size_label,
                        klass=klass,
                        solver=name,
                        gap_pct=gap,
                        feasible=result.feasible,
                    )
    return raw.aggregate(["size", "klass", "solver"], ["gap_pct"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""T1 — optimality gap on small instances.

For every (size, GAP class, repeat) cell, solve the instance exactly
with branch-and-bound and measure each heuristic's relative gap to the
optimum.  Expected shape: B&B gap 0 by construction; TACC single-digit
percent; plain greedy noticeably worse on the tight/correlated classes
(c, d); random worst.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import gap_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

#: heuristics measured against the optimum
T1_SOLVERS = [
    "random",
    "greedy",
    "regret",
    "local_search",
    "lp_rounding",
    "lagrangian",
    "lns",
    "annealing",
    "genetic",
    "qlearning",
    "sarsa",
    "tacc",
]

COLUMNS = ["size", "klass", "solver", "gap_pct", "feasible"]
TITLE = "T1: optimality gap on small instances"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one (size, klass, repeat) cell — the engine job entry point.

    Returns no rows when branch-and-bound cannot certify the optimum
    within its node budget, exactly like the historical skip.
    """
    problem = gap_instance(params["n_devices"], params["n_servers"], params["klass"], seed=seed)
    # bounded budget keeps a pathological cell from stalling the
    # table; cells the search cannot close are skipped below
    exact = get_solver("branch_and_bound", node_budget=1_500_000).solve(problem)
    if not exact.feasible or not exact.extra.get("optimal", False):
        return []  # skip cells where the optimum is unavailable
    optimum = exact.objective_value
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        if result.feasible and math.isfinite(result.objective_value):
            gap = 100.0 * (result.objective_value / optimum - 1.0)
        else:
            gap = math.nan
        rows.append(
            {
                "size": params["size"],
                "klass": params["klass"],
                "solver": name,
                "gap_pct": gap,
                "feasible": bool(result.feasible),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("t1", scale)
    specs = []
    for n_devices, n_servers in config.params["sizes"]:
        size_label = f"{n_devices}x{n_servers}"
        for klass in config.params["klasses"]:
            for repeat in range(config.repeats):
                specs.append(
                    JobSpec(
                        experiment="t1",
                        fn="repro.experiments.t1_optimality:cell",
                        params={
                            "n_devices": n_devices,
                            "n_servers": n_servers,
                            "size": size_label,
                            "klass": klass,
                            "solvers": list(T1_SOLVERS),
                            "solver_kwargs": config.solver_kwargs,
                        },
                        seed=derive_seed(seed, "t1", size_label, klass, repeat),
                        label=f"t1 {size_label} klass={klass} repeat={repeat}",
                    )
                )
    return specs


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated gap table (percent above optimum)."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["size", "klass", "solver"], ["gap_pct"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

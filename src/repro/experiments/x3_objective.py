"""X3 (extension) — total-delay vs bottleneck-delay objectives.

Not a figure of the original paper: its objective is *total* delay,
but the motivation ("stringent deadlines") is per-device.  This
extension quantifies the trade-off: on the same instances, compare

* ``tacc`` — optimizes total delay;
* ``bottleneck`` — the threshold method minimizing the worst device's
  delay, with total-delay tie-breaking;
* ``greedy`` — delay-greedy baseline for context;

on *both* metrics plus the deadline-violation count at a budget placed
between the typical best and worst per-device delays.

Expected shape: ``bottleneck`` achieves the lowest max delay and
fewest deadline violations, at a small total-delay premium over
``tacc``; ``tacc`` wins total delay.  If one solver won both, the
objectives would be redundant — the experiment exists to show they are
not.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.model.objectives import DeadlineViolations
from repro.utils.rng import derive_seed

X3_SOLVERS = ["greedy", "tacc", "bottleneck"]

COLUMNS = ["solver", "total_delay_ms", "max_delay_ms", "deadline_violations"]
TITLE = "X3 (extension): total-delay vs bottleneck objectives"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    # deadline budget between typical best and worst per-device delay
    budget = float(
        0.5 * (np.median(np.min(problem.delay, axis=1))
               + np.median(np.max(problem.delay, axis=1)))
    )
    violations = DeadlineViolations(default_deadline_s=budget)
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        if not result.feasible:
            rows.append(
                {
                    "solver": name,
                    "total_delay_ms": math.nan,
                    "max_delay_ms": math.nan,
                    "deadline_violations": math.nan,
                }
            )
            continue
        rows.append(
            {
                "solver": name,
                "total_delay_ms": float(result.assignment.total_delay() * 1e3),
                "max_delay_ms": float(result.assignment.max_delay() * 1e3),
                "deadline_violations": float(violations.evaluate(result.assignment)),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x3", scale)
    params = config.params
    return [
        JobSpec(
            experiment="x3",
            fn="repro.experiments.x3_objective:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "solvers": list(X3_SOLVERS),
                "solver_kwargs": config.solver_kwargs,
            },
            seed=derive_seed(seed, "x3", repeat),
            label=f"x3 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated per-solver two-objective table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["solver"], ["total_delay_ms", "max_delay_ms", "deadline_violations"]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""X3 (extension) — total-delay vs bottleneck-delay objectives.

Not a figure of the original paper: its objective is *total* delay,
but the motivation ("stringent deadlines") is per-device.  This
extension quantifies the trade-off: on the same instances, compare

* ``tacc`` — optimizes total delay;
* ``bottleneck`` — the threshold method minimizing the worst device's
  delay, with total-delay tie-breaking;
* ``greedy`` — delay-greedy baseline for context;

on *both* metrics plus the deadline-violation count at a budget placed
between the typical best and worst per-device delays.

Expected shape: ``bottleneck`` achieves the lowest max delay and
fewest deadline violations, at a small total-delay premium over
``tacc``; ``tacc`` wins total delay.  If one solver won both, the
objectives would be redundant — the experiment exists to show they are
not.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.model.objectives import DeadlineViolations
from repro.utils.rng import derive_seed

X3_SOLVERS = ["greedy", "tacc", "bottleneck"]


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated per-solver two-objective table."""
    config = get_config("x3", scale)
    params = config.params
    raw = ResultTable(
        ["solver", "total_delay_ms", "max_delay_ms", "deadline_violations"],
        title="X3 (extension): total-delay vs bottleneck objectives",
    )
    for repeat in range(config.repeats):
        cell_seed = derive_seed(seed, "x3", repeat)
        problem = topology_instance(
            n_routers=params["n_routers"],
            n_devices=params["n_devices"],
            n_servers=params["n_servers"],
            tightness=params["tightness"],
            seed=cell_seed,
        )
        # deadline budget between typical best and worst per-device delay
        budget = float(
            0.5 * (np.median(np.min(problem.delay, axis=1))
                   + np.median(np.max(problem.delay, axis=1)))
        )
        violations = DeadlineViolations(default_deadline_s=budget)
        results = run_solver_field(
            problem, X3_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
        )
        for name, result in results.items():
            if not result.feasible:
                raw.add_row(
                    solver=name,
                    total_delay_ms=math.nan,
                    max_delay_ms=math.nan,
                    deadline_violations=math.nan,
                )
                continue
            raw.add_row(
                solver=name,
                total_delay_ms=result.assignment.total_delay() * 1e3,
                max_delay_ms=result.assignment.max_delay() * 1e3,
                deadline_violations=violations.evaluate(result.assignment),
            )
    return raw.aggregate(
        ["solver"], ["total_delay_ms", "max_delay_ms", "deadline_violations"]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

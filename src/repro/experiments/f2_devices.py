"""F2 — total communication delay vs number of IoT devices.

Sweeps the device population over a fixed topology/cluster size and
plots each algorithm's total delay.  Expected shape: all curves grow
monotonically; TACC lowest or tied-lowest at every point; the gap to
delay-blind baselines widens as capacity pressure rises with N.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field, run_sweep
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed

COLUMNS = ["n_devices", "solver", "total_delay_ms", "feasible"]
TITLE = "F2: total delay vs number of IoT devices"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one (n_devices, repeat) cell — the engine job entry point."""
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=0.75,
        seed=seed,
    )
    results = run_solver_field(
        problem, params["solvers"], seed=seed, solver_kwargs=params["solver_kwargs"]
    )
    rows = []
    for name, result in results.items():
        value = result.objective_value * 1e3
        rows.append(
            {
                "n_devices": params["n_devices"],
                "solver": name,
                "total_delay_ms": value if math.isfinite(value) else math.nan,
                "feasible": bool(result.feasible),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("f2", scale)
    specs = []
    for n_devices in config.params["n_devices"]:
        for repeat in range(config.repeats):
            specs.append(
                JobSpec(
                    experiment="f2",
                    fn="repro.experiments.f2_devices:cell",
                    params={
                        "n_devices": n_devices,
                        "n_servers": config.params["n_servers"],
                        "n_routers": config.params["n_routers"],
                        "solvers": list(FIGURE_SOLVERS),
                        "solver_kwargs": config.solver_kwargs,
                    },
                    seed=derive_seed(seed, "f2", n_devices, repeat),
                    label=f"f2 n_devices={n_devices} repeat={repeat}",
                )
            )
    return specs


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (n_devices, solver) → delay series."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(["n_devices", "solver"], ["total_delay_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "n_devices", "total_delay_ms_mean", "solver"),
            title="F2: total delay vs devices",
            x_label="IoT devices",
            y_label="total delay (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

"""F2 — total communication delay vs number of IoT devices.

Sweeps the device population over a fixed topology/cluster size and
plots each algorithm's total delay.  Expected shape: all curves grow
monotonically; TACC lowest or tied-lowest at every point; the gap to
delay-blind baselines widens as capacity pressure rises with N.
"""

from __future__ import annotations

import math

from repro.experiments.configs import FIGURE_SOLVERS, get_config
from repro.experiments.harness import ResultTable, run_solver_field
from repro.model.instances import topology_instance
from repro.utils.rng import derive_seed


def run(scale: str = "quick", seed: int = 0) -> ResultTable:
    """Return the aggregated (n_devices, solver) → delay series."""
    config = get_config("f2", scale)
    raw = ResultTable(
        ["n_devices", "solver", "total_delay_ms", "feasible"],
        title="F2: total delay vs number of IoT devices",
    )
    for n_devices in config.params["n_devices"]:
        for repeat in range(config.repeats):
            cell_seed = derive_seed(seed, "f2", n_devices, repeat)
            problem = topology_instance(
                n_routers=config.params["n_routers"],
                n_devices=n_devices,
                n_servers=config.params["n_servers"],
                tightness=0.75,
                seed=cell_seed,
            )
            results = run_solver_field(
                problem, FIGURE_SOLVERS, seed=cell_seed, solver_kwargs=config.solver_kwargs
            )
            for name, result in results.items():
                value = result.objective_value * 1e3
                raw.add_row(
                    n_devices=n_devices,
                    solver=name,
                    total_delay_ms=value if math.isfinite(value) else math.nan,
                    feasible=result.feasible,
                )
    return raw.aggregate(["n_devices", "solver"], ["total_delay_ms"])


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    from repro.utils.ascii_plot import line_chart, series_from_table

    table = run()
    print(table.to_text())
    print()
    print(
        line_chart(
            series_from_table(table, "n_devices", "total_delay_ms_mean", "solver"),
            title="F2: total delay vs devices",
            x_label="IoT devices",
            y_label="total delay (ms)",
        )
    )


if __name__ == "__main__":  # pragma: no cover
    main()

"""X4 (extension) — robustness to delay-measurement noise.

Not a figure of the original paper: the paper optimizes over a known
delay matrix, but deployments *measure* delays with jittered probes.
This extension solves on the probe estimate
(:func:`repro.topology.measurement.noisy_problem`) and scores the
resulting assignment on the **true** matrix, sweeping jitter and probe
count.

Reported per (sigma, probes, solver): the true total delay and the
regret versus the same solver given perfect information.

Expected shape: graceful degradation — regret grows with jitter and
shrinks with probe count (≈ sigma/sqrt(probes) scaling); TACC and
greedy degrade similarly (the error enters through the data, not the
algorithm), and even at heavy jitter the noisy-input TACC stays well
below the random baseline, because the *ordering* of near vs far
servers survives noise better than the values do.
"""

from __future__ import annotations

import math

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.model.instances import topology_instance
from repro.model.solution import Assignment
from repro.solvers.registry import get_solver
from repro.topology.measurement import noisy_problem
from repro.utils.rng import derive_seed

X4_SOLVERS = ("greedy", "tacc")

COLUMNS = ["jitter_sigma", "probes", "solver", "true_delay_ms", "regret_pct"]
TITLE = "X4 (extension): robustness to delay-measurement noise"


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (full sigma × probes sweep) — engine entry point."""
    solver_kwargs = params["solver_kwargs"]
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    # perfect-information reference per solver
    perfect: dict[str, float] = {}
    for name in params["solvers"]:
        kwargs = dict(solver_kwargs.get(name, {}))
        solver = get_solver(name, seed=derive_seed(seed, "perfect", name), **kwargs)
        result = solver.solve(problem)
        perfect[name] = result.assignment.total_delay() if result.feasible else math.nan
    rows = []
    for sigma in params["jitter_sigmas"]:
        for probes in params["probe_counts"]:
            estimate = noisy_problem(
                problem,
                probes=probes,
                jitter_sigma=sigma,
                seed=derive_seed(seed, "probe", str(sigma), probes),
            )
            for name in params["solvers"]:
                kwargs = dict(solver_kwargs.get(name, {}))
                solver = get_solver(
                    name,
                    seed=derive_seed(seed, "noisy", name, str(sigma), probes),
                    **kwargs,
                )
                result = solver.solve(estimate)
                if result.feasible:
                    truth = Assignment(problem, result.assignment.vector)
                    true_delay = truth.total_delay()
                    regret = 100.0 * (true_delay / perfect[name] - 1.0)
                else:
                    true_delay, regret = math.nan, math.nan
                rows.append(
                    {
                        "jitter_sigma": sigma,
                        "probes": probes,
                        "solver": name,
                        "true_delay_ms": true_delay * 1e3
                        if not math.isnan(true_delay)
                        else math.nan,
                        "regret_pct": regret,
                    }
                )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x4", scale)
    params = config.params
    return [
        JobSpec(
            experiment="x4",
            fn="repro.experiments.x4_noise:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "jitter_sigmas": list(params["jitter_sigmas"]),
                "probe_counts": list(params["probe_counts"]),
                "solvers": list(X4_SOLVERS),
                "solver_kwargs": config.solver_kwargs,
            },
            seed=derive_seed(seed, "x4", repeat),
            label=f"x4 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the aggregated (sigma, probes, solver) → regret table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["jitter_sigma", "probes", "solver"], ["true_delay_ms", "regret_pct"]
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

"""X6 (extension) — chaos replay: dispatch policies on one fault timeline.

Not a figure of the original paper: the static assignment is replayed
as live traffic while the *busiest* server of the configuration crashes
mid-run and repairs later.  Three task-dispatch policies ride the exact
same fault timeline and offered load (identical seeds for arrivals and
service; only the dispatcher differs):

* ``none`` — no second chances: every task on the crashed server's
  watch is lost until repair;
* ``retry`` — re-send to the same server with bounded exponential
  backoff (useless while the server stays down, helps with transients);
* ``failover`` — re-dispatch to the cheapest healthy alternate server.

Per policy: overall goodput, goodput over the crash window (the
recovery metric — failover should hold >= 0.95 while ``none`` tracks
the crashed capacity share), tasks lost, retries/failovers spent, and
the p99 end-to-end latency (failover pays a delay premium for its
availability).
"""

from __future__ import annotations

from repro.engine.jobspec import JobSpec
from repro.experiments.configs import get_config
from repro.experiments.harness import ResultTable, run_sweep
from repro.faults.policies import DISPATCH_MODES, RetryPolicy
from repro.faults.runner import simulate_with_faults
from repro.faults.scenario import FaultScenario
from repro.model.instances import topology_instance
from repro.solvers.registry import get_solver
from repro.utils.rng import derive_seed

COLUMNS = [
    "policy", "goodput", "crash_goodput", "tasks_lost", "retries",
    "failovers", "timeouts", "p99_total_ms",
]
TITLE = "X6 (extension): dispatch policies under a mid-run crash"


def crash_window_goodput(
    timeline: "tuple[tuple[float, float], ...]",
    window_s: float,
    crash_at_s: float,
    repair_at_s: float,
) -> float:
    """Mean per-window goodput over windows overlapping the outage."""
    hit = [
        goodput
        for start, goodput in timeline
        if start < repair_at_s and start + window_s > crash_at_s
    ]
    return sum(hit) / len(hit) if hit else 1.0


def cell(params: dict, seed: int) -> list[dict]:
    """Rows of one repeat cell (all dispatch modes) — the engine job entry point."""
    duration = params["duration_s"]
    crash_at = params["crash_frac"] * duration
    repair_at = params["repair_frac"] * duration
    policy = RetryPolicy(max_retries=params["max_retries"], timeout_s=params["timeout_s"])
    problem = topology_instance(
        n_routers=params["n_routers"],
        n_devices=params["n_devices"],
        n_servers=params["n_servers"],
        tightness=params["tightness"],
        seed=seed,
    )
    assignment = get_solver("greedy", seed=derive_seed(seed, "solve")).solve(problem).assignment
    # crash the server carrying the most load — the worst case the
    # configuration can suffer
    busiest = int(assignment.loads().argmax())
    scenario = FaultScenario.single_crash(
        busiest, at_s=crash_at, repair_at_s=repair_at,
        name=f"crash-busiest-s{busiest}",
    )
    rows = []
    for mode in params["modes"]:
        report = simulate_with_faults(
            assignment,
            scenario,
            duration_s=duration,
            seed=derive_seed(seed, "sim"),  # shared across modes
            mode=mode,
            policy=policy,
            window_s=params["window_s"],
        )
        rows.append(
            {
                "policy": mode,
                "goodput": float(report.goodput),
                "crash_goodput": crash_window_goodput(
                    report.goodput_timeline, params["window_s"], crash_at, repair_at
                ),
                "tasks_lost": float(report.tasks_lost),
                "retries": float(report.retries),
                "failovers": float(report.failovers),
                "timeouts": float(report.timeouts),
                "p99_total_ms": float(report.p99_total_latency_ms),
            }
        )
    return rows


def grid(scale: str, seed: int) -> list[JobSpec]:
    """The sweep grid as deterministic job specs."""
    config = get_config("x6", scale)
    params = config.params
    return [
        JobSpec(
            experiment="x6",
            fn="repro.experiments.x6_chaos:cell",
            params={
                "n_routers": params["n_routers"],
                "n_devices": params["n_devices"],
                "n_servers": params["n_servers"],
                "tightness": params["tightness"],
                "duration_s": params["duration_s"],
                "crash_frac": params["crash_frac"],
                "repair_frac": params["repair_frac"],
                "max_retries": params["max_retries"],
                "timeout_s": params["timeout_s"],
                "window_s": params["window_s"],
                "modes": list(DISPATCH_MODES),
            },
            seed=derive_seed(seed, "x6", repeat),
            label=f"x6 repeat={repeat}",
        )
        for repeat in range(config.repeats)
    ]


def run(scale: str = "quick", seed: int = 0, engine=None) -> ResultTable:
    """Return the per-policy chaos comparison table."""
    raw = run_sweep(grid(scale, seed), COLUMNS, TITLE, engine=engine)
    return raw.aggregate(
        ["policy"],
        ["goodput", "crash_goodput", "tasks_lost", "retries", "failovers",
         "timeouts", "p99_total_ms"],
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Print this experiment's table when run as a script."""
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()

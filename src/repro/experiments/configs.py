"""Parameter grids for every experiment, at two scales.

``quick`` keeps the whole benchmark suite in the minutes range (CI,
smoke runs); ``full`` is the paper-scale sweep used to fill
EXPERIMENTS.md.  Both scales exercise identical code paths — only
sizes, repeats and episode budgets differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require

#: heuristics compared in most figures (exact solvers excluded: they set
#: the reference, not the comparison)
FIGURE_SOLVERS = [
    "random",
    "greedy",
    "regret",
    "local_search",
    "lp_rounding",
    "lagrangian",
    "lns",
    "annealing",
    "genetic",
    "qlearning",
    "tacc",
]

#: reduced RL budgets for quick scale so the suite stays fast
QUICK_SOLVER_KWARGS = {
    "tacc": {"episodes": 120},
    "qlearning": {"episodes": 120},
    "sarsa": {"episodes": 120},
    "reinforce": {"episodes": 80},
    "bandit": {"rounds": 80},
    "annealing": {"steps": 6000},
    "genetic": {"population": 24, "generations": 50},
    "lns": {"iterations": 120},
}

#: full scale still bounds the most repair-heavy solver so the suite
#: stays tractable on one core; quality is within noise of the default
FULL_SOLVER_KWARGS: dict[str, dict] = {
    "lns": {"iterations": 200, "destroy_fraction": 0.15},
}


@dataclass(frozen=True)
class Scale:
    """One experiment's parameters at one scale."""

    repeats: int
    params: dict = field(default_factory=dict)
    solver_kwargs: dict = field(default_factory=dict)


_CONFIGS: dict[str, dict[str, Scale]] = {
    "t1": {
        "quick": Scale(
            repeats=3,
            params={"sizes": [(10, 3), (14, 4)], "klasses": ["c", "d"]},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=5,
            params={"sizes": [(10, 3), (15, 4), (20, 5)], "klasses": ["a", "b", "c", "d"]},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f2": {
        "quick": Scale(
            repeats=2,
            params={"n_devices": [20, 40, 60], "n_servers": 5, "n_routers": 40},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=3,
            params={"n_devices": [25, 50, 100, 150], "n_servers": 8, "n_routers": 60},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f3": {
        "quick": Scale(
            repeats=2,
            params={"n_servers": [3, 5, 8], "n_devices": 50, "n_routers": 40},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=3,
            params={"n_servers": [4, 6, 8, 12], "n_devices": 100, "n_routers": 60},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f4": {
        "quick": Scale(
            repeats=3,
            params={"n_devices": 50, "n_servers": 5, "n_routers": 40, "tightness": 0.85},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=5,
            params={"n_devices": 100, "n_servers": 8, "n_routers": 60, "tightness": 0.9},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f5": {
        "quick": Scale(
            repeats=2,
            params={
                "rate_scales": [0.5, 2.0, 6.0],
                "n_devices": 30,
                "n_servers": 4,
                "n_routers": 30,
                "duration_s": 20.0,
                "deadline_s": 0.04,
            },
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=3,
            params={
                "rate_scales": [0.5, 1.0, 2.0, 4.0, 8.0],
                "n_devices": 60,
                "n_servers": 6,
                "n_routers": 50,
                "duration_s": 40.0,
                "deadline_s": 0.04,
            },
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f6": {
        "quick": Scale(
            repeats=3,
            params={"episodes": 200, "n_devices": 40, "n_servers": 5, "n_routers": 40},
        ),
        "full": Scale(
            repeats=3,
            params={"episodes": 600, "n_devices": 60, "n_servers": 6, "n_routers": 50},
        ),
    },
    "t2": {
        "quick": Scale(
            repeats=2,
            params={"sizes": [(20, 4), (40, 5)], "include_exact_upto": 20},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=2,
            params={"sizes": [(20, 4), (50, 6), (100, 8), (200, 10)],
                    "include_exact_upto": 20},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f7": {
        "quick": Scale(
            repeats=2,
            params={
                "families": ["random_geometric", "edge_hierarchy", "fat_tree"],
                "n_devices": 40,
                "n_servers": 5,
                "n_routers": 40,
            },
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=3,
            params={
                "families": [
                    "random_geometric",
                    "waxman",
                    "barabasi_albert",
                    "watts_strogatz",
                    "grid",
                    "edge_hierarchy",
                    "fat_tree",
                ],
                "n_devices": 80,
                "n_servers": 8,
                "n_routers": 60,
            },
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "f8": {
        "quick": Scale(
            repeats=2,
            params={"epochs": 8, "n_devices": 30, "n_servers": 4, "n_routers": 30},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=3,
            params={"epochs": 20, "n_devices": 60, "n_servers": 6, "n_routers": 50},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "x1": {
        "quick": Scale(
            repeats=2,
            params={"epochs": 10, "n_devices": 40, "n_servers": 4, "n_routers": 30,
                    "tightness": 0.8, "join_prob": 0.15, "leave_prob": 0.10,
                    "capacity_scale": 0.55},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=3,
            params={"epochs": 20, "n_devices": 80, "n_servers": 6, "n_routers": 50,
                    "tightness": 0.85, "join_prob": 0.15, "leave_prob": 0.10,
                    "capacity_scale": 0.55},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "x2": {
        "quick": Scale(
            repeats=2,
            params={"n_devices": 40, "n_servers": 5, "n_routers": 40,
                    "tightness": 0.75},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=4,
            params={"n_devices": 80, "n_servers": 6, "n_routers": 60,
                    "tightness": 0.8},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "x3": {
        "quick": Scale(
            repeats=3,
            params={"n_devices": 40, "n_servers": 5, "n_routers": 40,
                    "tightness": 0.8},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=5,
            params={"n_devices": 80, "n_servers": 6, "n_routers": 60,
                    "tightness": 0.85},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "x4": {
        "quick": Scale(
            repeats=2,
            params={"n_devices": 30, "n_servers": 4, "n_routers": 30,
                    "tightness": 0.8,
                    "jitter_sigmas": [0.0, 0.3, 0.8],
                    "probe_counts": [1, 5]},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=4,
            params={"n_devices": 60, "n_servers": 6, "n_routers": 50,
                    "tightness": 0.85,
                    "jitter_sigmas": [0.0, 0.15, 0.3, 0.6, 1.0],
                    "probe_counts": [1, 3, 9]},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "x5": {
        "quick": Scale(
            repeats=2,
            params={"epochs": 10, "n_devices": 30, "n_servers": 4, "n_routers": 30,
                    "tightness": 0.6, "fail_prob": 0.2, "repair_prob": 0.5},
            solver_kwargs=QUICK_SOLVER_KWARGS,
        ),
        "full": Scale(
            repeats=4,
            params={"epochs": 25, "n_devices": 60, "n_servers": 6, "n_routers": 50,
                    "tightness": 0.6, "fail_prob": 0.15, "repair_prob": 0.5},
            solver_kwargs=FULL_SOLVER_KWARGS,
        ),
    },
    "x6": {
        "quick": Scale(
            repeats=2,
            params={"n_devices": 20, "n_servers": 3, "n_routers": 25,
                    "tightness": 0.6, "duration_s": 12.0, "crash_frac": 0.4,
                    "repair_frac": 0.8, "timeout_s": 0.25, "max_retries": 3,
                    "window_s": 2.0},
        ),
        "full": Scale(
            repeats=4,
            params={"n_devices": 40, "n_servers": 5, "n_routers": 40,
                    "tightness": 0.6, "duration_s": 60.0, "crash_frac": 0.4,
                    "repair_frac": 0.8, "timeout_s": 0.25, "max_retries": 3,
                    "window_s": 5.0},
        ),
    },
    "x7": {
        "quick": Scale(
            repeats=4,
            params={"family": "edge_hierarchy", "n_routers": 25,
                    "n_devices": 30, "n_servers": 3, "tightness": 0.8,
                    "flow_scale": 500.0,
                    "oversubscription_factors": [1.0, 8.0, 32.0]},
        ),
        "full": Scale(
            repeats=5,
            params={"family": "edge_hierarchy", "n_routers": 40,
                    "n_devices": 40, "n_servers": 5, "tightness": 0.8,
                    "flow_scale": 300.0,
                    "oversubscription_factors": [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]},
        ),
    },
    "t3": {
        "quick": Scale(
            repeats=3,
            params={"n_devices": 40, "n_servers": 5, "n_routers": 40,
                    "tightness": 0.85, "episodes": 120},
        ),
        "full": Scale(
            repeats=5,
            params={"n_devices": 80, "n_servers": 6, "n_routers": 60,
                    "tightness": 0.9, "episodes": 300},
        ),
    },
}


def get_config(experiment: str, scale: str) -> Scale:
    """Look up the scale parameters of one experiment."""
    require(experiment in _CONFIGS, f"unknown experiment {experiment!r}")
    require(scale in ("quick", "full"), f"scale must be 'quick' or 'full', got {scale!r}")
    return _CONFIGS[experiment][scale]

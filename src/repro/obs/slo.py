"""Multi-window error-budget burn rates for the serving tier.

An SLO of, say, 99% goodput leaves a 1% error budget.  The **burn
rate** of a window is ``error_rate / error_budget``: burn 1.0 spends
the budget exactly at the sustainable pace, burn 14 exhausts a 30-day
budget in ~2 days.  Single-window alerts are either noisy (short
window) or slow (long window); the standard fix is the multi-window
rule — page only when a *fast* window and a *slow* window both burn
hot, so a transient blip (fast only) and a long-recovered incident
(slow only) both stay quiet.

:class:`BurnRateMonitor` tracks two objectives over the same event
stream: **goodput** (requests answered ``ok``) and **deadline fit**
(requests finishing inside their propagated deadline).  Events enter
via :meth:`record`; windows are pruned lazily; the clock is
injectable, so tests drive time explicitly.  The loadtests feed their
outcome streams through :func:`summarize_slo` to bolt a burn-rate
verdict onto every report.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.utils.validation import require

__all__ = ["SLOConfig", "BurnRateMonitor", "summarize_slo"]


@dataclass(frozen=True)
class SLOConfig:
    """Objectives and window geometry for one monitored stream.

    The default thresholds are the classic fast/slow pairing: the fast
    window catches a budget-in-hours fire, the slow window confirms it
    is not a blip.  Loadtests shrink the windows to seconds — the math
    only cares about the ratio.
    """

    goodput_target: float = 0.99       # fraction of requests served ok
    deadline_target: float = 0.99      # fraction finishing in budget
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    fast_burn_threshold: float = 14.0
    slow_burn_threshold: float = 6.0

    def __post_init__(self) -> None:
        require(0.0 < self.goodput_target < 1.0,
                "goodput_target must be in (0, 1)")
        require(0.0 < self.deadline_target < 1.0,
                "deadline_target must be in (0, 1)")
        require(self.fast_window_s > 0, "fast_window_s must be > 0")
        require(self.slow_window_s >= self.fast_window_s,
                "slow_window_s must be >= fast_window_s")
        require(self.fast_burn_threshold > 0, "fast threshold must be > 0")
        require(self.slow_burn_threshold > 0, "slow threshold must be > 0")


class _Window:
    """One sliding window of (t, bad) events with lazy pruning."""

    __slots__ = ("horizon_s", "events", "bad")

    def __init__(self, horizon_s: float) -> None:
        self.horizon_s = horizon_s
        self.events: deque = deque()   # (t, bad: bool)
        self.bad = 0

    def add(self, t: float, bad: bool) -> None:
        self.events.append((t, bad))
        if bad:
            self.bad += 1

    def prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        while self.events and self.events[0][0] < cutoff:
            _, bad = self.events.popleft()
            if bad:
                self.bad -= 1

    def error_rate(self, now: float) -> float:
        self.prune(now)
        if not self.events:
            return 0.0
        return self.bad / len(self.events)


class _Objective:
    """Fast + slow windows over one bad/good stream, plus lifetime totals."""

    def __init__(self, target: float, config: SLOConfig) -> None:
        self.target = target
        self.fast = _Window(config.fast_window_s)
        self.slow = _Window(config.slow_window_s)
        self.total = 0
        self.bad_total = 0

    @property
    def budget(self) -> float:
        return 1.0 - self.target

    def record(self, t: float, bad: bool) -> None:
        self.total += 1
        if bad:
            self.bad_total += 1
        self.fast.add(t, bad)
        self.slow.add(t, bad)

    def burn(self, window: _Window, now: float) -> float:
        return window.error_rate(now) / self.budget

    def snapshot(self, now: float, config: SLOConfig) -> dict:
        fast_burn = self.burn(self.fast, now)
        slow_burn = self.burn(self.slow, now)
        remaining = 1.0
        if self.total:
            remaining = 1.0 - (self.bad_total / self.total) / self.budget
        return {
            "target": self.target,
            "fast_burn": round(fast_burn, 4),
            "slow_burn": round(slow_burn, 4),
            "burning": bool(
                fast_burn >= config.fast_burn_threshold
                and slow_burn >= config.slow_burn_threshold
            ),
            "total": self.total,
            "bad_total": self.bad_total,
            "budget_remaining": round(remaining, 4),
        }


class BurnRateMonitor:
    """Live multi-window burn-rate accounting over request outcomes.

    Feed every finished request through :meth:`record`; read the
    verdict with :meth:`snapshot`.  ``pages_total`` counts rising
    edges of the page condition (both objectives OR'd), not samples —
    a sustained burn is one page, not thousands.
    """

    def __init__(
        self,
        config: "SLOConfig | None" = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or SLOConfig()
        self._clock = clock
        self.goodput = _Objective(self.config.goodput_target, self.config)
        self.deadline = _Objective(self.config.deadline_target, self.config)
        self.pages_total = 0
        self._paging = False

    def record(
        self,
        ok: bool,
        deadline_missed: bool = False,
        t: "float | None" = None,
    ) -> None:
        """One finished request: served ok? inside its deadline?"""
        now = self._clock() if t is None else float(t)
        self.goodput.record(now, bad=not ok)
        self.deadline.record(now, bad=deadline_missed)
        self._update_paging(now)

    def _update_paging(self, now: float) -> None:
        burning = (
            self.goodput.snapshot(now, self.config)["burning"]
            or self.deadline.snapshot(now, self.config)["burning"]
        )
        if burning and not self._paging:
            self.pages_total += 1
            obs_runtime.metrics().counter(obs_names.SLO_PAGES).inc()
        self._paging = burning
        registry = obs_runtime.metrics()
        registry.gauge(obs_names.SLO_FAST_BURN).set(
            self.goodput.burn(self.goodput.fast, now)
        )
        registry.gauge(obs_names.SLO_SLOW_BURN).set(
            self.goodput.burn(self.goodput.slow, now)
        )

    @property
    def paging(self) -> bool:
        """Whether the page condition currently holds."""
        return self._paging

    def snapshot(self, t: "float | None" = None) -> dict:
        """JSON-ready verdict: both objectives plus page accounting."""
        now = self._clock() if t is None else float(t)
        return {
            "goodput": self.goodput.snapshot(now, self.config),
            "deadline": self.deadline.snapshot(now, self.config),
            "pages_total": self.pages_total,
            "paging": self._paging,
            "windows_s": {
                "fast": self.config.fast_window_s,
                "slow": self.config.slow_window_s,
            },
        }


def summarize_slo(
    outcomes: "list[tuple[float, bool, bool]]",
    config: "SLOConfig | None" = None,
) -> dict:
    """Post-hoc burn-rate verdict for a finished run.

    ``outcomes`` is ``(t, ok, deadline_missed)`` per request, any
    order.  Replays them through a :class:`BurnRateMonitor` in time
    order and returns the final snapshot extended with the *worst*
    burn seen at any point during the run — a loadtest that recovered
    by the end still reports how hot it got.
    """
    config = config or SLOConfig()
    ordered = sorted(outcomes, key=lambda item: item[0])
    monitor = BurnRateMonitor(config, clock=lambda: 0.0)
    worst_fast = worst_slow = 0.0
    for t, ok, missed in ordered:
        monitor.record(ok, deadline_missed=missed, t=t)
        worst_fast = max(
            worst_fast, monitor.goodput.burn(monitor.goodput.fast, t),
            monitor.deadline.burn(monitor.deadline.fast, t),
        )
        worst_slow = max(
            worst_slow, monitor.goodput.burn(monitor.goodput.slow, t),
            monitor.deadline.burn(monitor.deadline.slow, t),
        )
    final_t = ordered[-1][0] if ordered else 0.0
    snapshot = monitor.snapshot(t=final_t)
    snapshot["worst_fast_burn"] = round(worst_fast, 4)
    snapshot["worst_slow_burn"] = round(worst_slow, 4)
    return snapshot

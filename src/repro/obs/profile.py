"""Opt-in ``cProfile`` hooks: profile cells, merge stats, render a table.

The engine's ``--profile`` flag wraps every *executed* cell (cache
hits recompute nothing, so there is nothing to profile) in
:func:`profile_call`; the per-job stats are serialized back to the
parent as plain dicts, merged with :func:`merge_profiles`, and
rendered as a top-N cumulative-time table with
:func:`render_profile`.  Profiles compose across processes because a
stats record is just ``function -> [ncalls, tottime, cumtime]`` and
those sum.

Profiling is strictly additive diagnostics: it never changes rows,
seeds, or cache keys (profiled and unprofiled runs are cache-
compatible), it just costs wall-clock — expect a 1.3–2x slowdown of
profiled cells.
"""

from __future__ import annotations

import cProfile
import pstats

__all__ = ["profile_call", "stats_from_profiler", "merge_profiles", "render_profile"]


def _short_location(filename: str, line: int, name: str) -> str:
    """``.../repro/solvers/base.py:94(solve)`` — trimmed to the last parts."""
    if filename in ("~", ""):  # builtins render as '~' in pstats
        return f"<built-in>:{name}"
    parts = filename.replace("\\", "/").split("/")
    short = "/".join(parts[-3:])
    return f"{short}:{line}({name})"


def stats_from_profiler(profiler: cProfile.Profile) -> "dict[str, list]":
    """Flatten a profiler into ``location -> [ncalls, tottime, cumtime]``."""
    stats = pstats.Stats(profiler)
    out: dict[str, list] = {}
    for (filename, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        key = _short_location(filename, line, name)
        record = out.get(key)
        if record is None:
            out[key] = [int(nc), float(tt), float(ct)]
        else:  # same trimmed location from two paths: sum
            record[0] += int(nc)
            record[1] += float(tt)
            record[2] += float(ct)
    return out


def profile_call(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` under cProfile; return (result, stats)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return result, stats_from_profiler(profiler)


def merge_profiles(profiles: "list[dict]") -> "dict[str, list]":
    """Sum per-function stats across jobs/processes (order-independent)."""
    merged: dict[str, list] = {}
    for profile in profiles:
        if not profile:
            continue
        for key, (ncalls, tottime, cumtime) in profile.items():
            record = merged.get(key)
            if record is None:
                merged[key] = [int(ncalls), float(tottime), float(cumtime)]
            else:
                record[0] += int(ncalls)
                record[1] += float(tottime)
                record[2] += float(cumtime)
    return merged


def render_profile(stats: "dict[str, list]", top: int = 15) -> str:
    """Top-``top`` functions by cumulative time as a paper-style table."""
    from repro.utils.tables import format_table

    if not stats:
        return "(no profile data collected)"
    ranked = sorted(stats.items(), key=lambda item: item[1][2], reverse=True)[:top]
    rows = [
        [key, ncalls, tottime, cumtime] for key, (ncalls, tottime, cumtime) in ranked
    ]
    return format_table(
        ["function", "calls", "tottime (s)", "cumtime (s)"],
        rows,
        float_format=".4g",
        title=f"profile: top {len(rows)} by cumulative time",
    )

"""Span-based tracing: nestable timed scopes forming a tree.

``with tracer.span("solve/tacc"):`` opens a span; spans opened inside
it become children, so one solve produces a tree like::

    solve/tacc                     812.4 ms
      rl/train                     790.1 ms
      polish                        21.9 ms

Spans survive exceptions (the scope is closed and flagged with the
exception type, then the exception propagates).  The
:class:`NullTracer` twin hands out one shared no-op scope, so tracing
disabled costs a single attribute call per scope.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One timed scope; ``duration_s`` is set when the scope closes."""

    name: str
    start_s: float
    duration_s: float = 0.0
    status: str = "ok"
    attributes: dict = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-ready tree."""
        out = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`as_dict`."""
        return cls(
            name=payload["name"],
            start_s=payload.get("start_s", 0.0),
            duration_s=payload.get("duration_s", 0.0),
            status=payload.get("status", "ok"),
            attributes=dict(payload.get("attributes", {})),
            children=[cls.from_dict(child) for child in payload.get("children", [])],
        )


class _SpanScope:
    """Context manager for one live span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def annotate(self, **attributes) -> None:
        """Attach key/value attributes to the live span."""
        self.span.attributes.update(attributes)

    def __enter__(self) -> "_SpanScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self.span, exc_type)
        return False


class Tracer:
    """Builds span trees; finished roots accumulate in :attr:`roots`."""

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    def span(self, name: str, **attributes) -> _SpanScope:
        """Open a nested span; use as ``with tracer.span("x"):``."""
        span = Span(
            name=name,
            start_s=time.perf_counter() - self._epoch,
            attributes=dict(attributes),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanScope(self, span)

    def _close(self, span: Span, exc_type) -> None:
        # close every span down to (and including) the one the scope
        # owns — tolerates a child scope leaked by a non-local exit
        while self._stack:
            top = self._stack.pop()
            top.duration_s = (time.perf_counter() - self._epoch) - top.start_s
            if exc_type is not None:
                top.status = f"error:{exc_type.__name__}"
            if top is span:
                break

    def adopt(self, trees: "list[dict]") -> None:
        """Append finished span trees recorded elsewhere (pool workers).

        Trees are ``Span.as_dict`` payloads; their ``start_s`` values
        are relative to the *recording* process's epoch, so durations
        and nesting are meaningful but cross-process start offsets are
        not comparable.
        """
        self.roots.extend(Span.from_dict(tree) for tree in trees)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def reset(self) -> None:
        """Drop finished roots and any dangling open spans."""
        self.roots.clear()
        self._stack.clear()
        self._epoch = time.perf_counter()


class _NullScope:
    """Shared no-op span scope."""

    __slots__ = ()

    span = None

    def annotate(self, **attributes) -> None:
        """No-op."""

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class NullTracer:
    """The disabled tracer: every ``span()`` is the shared no-op scope."""

    enabled = False
    roots: list = []

    def span(self, name: str, **attributes) -> _NullScope:
        """Shared no-op scope."""
        return _NULL_SCOPE

    def adopt(self, trees: "list[dict]") -> None:
        """No-op."""

    @property
    def depth(self) -> int:
        """Always zero."""
        return 0

    def reset(self) -> None:
        """No-op."""


#: the module-level singleton instrumented code sees when obs is off
NULL_TRACER = NullTracer()

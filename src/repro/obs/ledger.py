"""Per-run event ledger: one append-only JSON-lines stream per run.

Metrics answer *how much*; the ledger answers *what happened, when*.
Every record is self-describing, in the same spirit as the metric
export in :mod:`repro.obs.sinks`::

    {"type": "meta", "format": "repro-obs-ledger", "version": 1, "run_id": "..."}
    {"type": "event", "event": "run_start", "run_id": "...", "t": 1722..., ...}
    {"type": "event", "event": "cache_hit", ...}
    {"type": "event", "event": "job_end", "status": "timeout", ...}

which appends, streams, and greps well.  The engine emits
``run_start``/``run_end``, per-job ``job_start``/``job_end`` (with a
``status`` of ``ok``/``timeout``/``error``) and ``cache_hit`` events;
the fault layer emits ``fault``, ``task_timeout``, ``task_retry``,
``task_failover`` and ``task_lost``.  Emission goes through
:func:`repro.obs.runtime.ledger`, so instrumented code pays one no-op
method call when no ledger is active — the same null-twin discipline
as the metrics registry.

Writes are line-buffered appends under a lock, so a crashed run keeps
every event up to the crash.  Events recorded inside pool *workers*
are not captured (workers are ledger-silent by design, like the cache);
the parent records the job lifecycle on their behalf.
"""

from __future__ import annotations

import json
import math
import threading
import time
import uuid
from pathlib import Path

__all__ = [
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "RunLedger",
    "NullLedger",
    "NULL_LEDGER",
    "new_run_id",
    "read_ledger",
    "summarize_ledger",
    "render_ledger_summary",
]

LEDGER_FORMAT = "repro-obs-ledger"
LEDGER_VERSION = 1


def new_run_id() -> str:
    """Sortable-by-time, collision-safe run identifier."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:8]


def _json_safe(value):
    """JSON has no Infinity/NaN literals; stringify them (sinks idiom)."""
    if isinstance(value, float) and not math.isfinite(value):
        return "Infinity" if value > 0 else ("-Infinity" if value < 0 else "NaN")
    return value


class RunLedger:
    """Appends structured events for one run to a JSONL file."""

    enabled = True

    def __init__(self, path: "str | Path", run_id: "str | None" = None) -> None:
        self.path = Path(path)
        self.run_id = run_id or new_run_id()
        self._lock = threading.Lock()
        self._fh = None

    def emit(self, event: str, **fields) -> None:
        """Append one event record (thread-safe, flushed per line)."""
        record = {
            "type": "event",
            "event": event,
            "run_id": self.run_id,
            "t": time.time(),
        }
        record.update({key: _json_safe(value) for key, value in fields.items()})
        line = json.dumps(record)
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                header_needed = not self.path.exists() or self.path.stat().st_size == 0
                self._fh = self.path.open("a", encoding="utf-8")
                if header_needed:
                    self._fh.write(
                        json.dumps(
                            {
                                "type": "meta",
                                "format": LEDGER_FORMAT,
                                "version": LEDGER_VERSION,
                                "run_id": self.run_id,
                            }
                        )
                        + "\n"
                    )
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        """Close the stream (further emits reopen in append mode)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class NullLedger:
    """The disabled ledger: ``emit`` is a no-op method call."""

    enabled = False

    def emit(self, event: str, **fields) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""


#: the module-level singleton instrumented code sees when no ledger is active
NULL_LEDGER = NullLedger()


def read_ledger(path: "str | Path") -> "list[dict]":
    """Event records of a ledger file, in emission order (meta skipped)."""
    records: list[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "event":
            records.append(record)
    return records


def summarize_ledger(records: "list[dict]") -> dict:
    """Aggregate view of one ledger: event counts, runs, wall span."""
    counts: dict[str, int] = {}
    run_ids: list[str] = []
    times = [r["t"] for r in records if isinstance(r.get("t"), (int, float))]
    for record in records:
        counts[record["event"]] = counts.get(record["event"], 0) + 1
        run_id = record.get("run_id")
        if run_id and run_id not in run_ids:
            run_ids.append(run_id)
    return {
        "events": len(records),
        "event_counts": counts,
        "run_ids": run_ids,
        "wall_s": (max(times) - min(times)) if times else 0.0,
    }


def render_ledger_summary(records: "list[dict]") -> str:
    """Human summary table for ``repro ledger`` (reuses the table helper)."""
    from repro.utils.tables import format_table

    summary = summarize_ledger(records)
    rows = [["run(s)", ", ".join(summary["run_ids"]) or "-"],
            ["events", summary["events"]],
            ["wall span (s)", summary["wall_s"]]]
    rows += [
        [f"event: {name}", count]
        for name, count in sorted(summary["event_counts"].items())
    ]
    return format_table(["ledger", "value"], rows)

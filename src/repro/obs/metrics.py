"""Metric instruments and the registry that owns them.

Four instrument kinds cover everything the library measures:

* :class:`Counter` — monotonically increasing totals (solves, events);
* :class:`Gauge` — last-write-wins values (epsilon, utilization);
* :class:`Histogram` — streaming distributions with quantiles, backed
  by fixed log-spaced buckets (for Prometheus export) plus a bounded
  reservoir sample (for accurate p50/p90/p99 without storing every
  observation);
* :class:`Timer` — a histogram of seconds with a context-manager face.

Instruments are created lazily through a :class:`MetricsRegistry` and
are identified by ``(name, labels)``.  The :class:`NullRegistry` is
the disabled twin: it hands out shared no-op instruments so that
instrumented hot loops pay exactly one attribute call per sample and
zero allocation when observability is off.

Concurrency contract
--------------------
``MetricsRegistry`` instrument creation and every mutating sample path
(``Counter.inc``, ``Gauge.set``/``inc``, ``Histogram.observe`` and
therefore ``Timer.observe``) are thread-safe: the registry serializes
get-or-create under one lock and each instrument serializes its
samples under its own re-entrant lock, so concurrent increments from
the fault-dispatch retry path, worker-snapshot folds, and the main
thread never lose updates.  Two things remain single-threaded by
contract: the ``Timer`` *context-manager* face (its start stack is
per-instrument, so share one timer across threads via ``observe()``
only), and ``snapshot()``/``dump_state()``, which read instruments
without freezing the world — call them at quiescent points (end of a
run, end of a job), as the engine does.

Cross-process merge
-------------------
:meth:`MetricsRegistry.dump_state` freezes a registry into one plain
picklable dict and :meth:`MetricsRegistry.load_state` rebuilds it, so
a pool worker can ship its local registry to the parent inside a job
result.  :meth:`MetricsRegistry.merge` folds another registry in
deterministically: counters sum; gauges keep the write with the
latest ``updated_at`` timestamp (ties broken toward the non-NaN,
then the larger value — a total order, so merging is associative and
commutative); histograms and timers require identical bucket bounds
and add counts, sums and per-bucket tallies while their reservoirs
take the *sorted multiset union* (may exceed ``reservoir_size``;
quantiles stay exact over every retained sample).  Merging N worker
registries in any order therefore yields the same totals as one
serial run.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "default_buckets",
    "instrument_key",
    "snapshot_delta",
]


def default_buckets() -> list[float]:
    """Log-spaced bucket upper bounds covering microseconds to hours.

    A 1-2.5-5 ladder per decade keeps the bucket count small (~30)
    while staying within ~2.5x relative error anywhere in the range;
    exact quantiles come from the reservoir, buckets exist for the
    cumulative Prometheus export.
    """
    bounds = []
    for exponent in range(-6, 4):
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(mantissa * 10.0**exponent)
    return bounds


def instrument_key(name: str, labels: "dict[str, str] | None") -> str:
    """Stable string key for one instrument: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic total."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: "dict[str, str] | None" = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0
        self._lock = threading.RLock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0; counters never go down)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        with self._lock:
            self.value += amount

    # -- merge / serialization -----------------------------------------
    def dump_state(self) -> dict:
        """Picklable state (see the module docstring's merge contract)."""
        return {"kind": "counter", "name": self.name, "labels": dict(self.labels),
                "value": self.value}

    @classmethod
    def from_state(cls, state: dict) -> "Counter":
        """Rebuild from :meth:`dump_state` output."""
        counter = cls(state["name"], state.get("labels"))
        counter.value = float(state["value"])
        return counter

    def merge_from(self, other: "Counter") -> None:
        """Fold another counter in: totals sum."""
        with self._lock:
            self.value += other.value


def _gauge_order(updated_at: float, value: float) -> tuple:
    """Total order over gauge writes: timestamp, then non-NaN, then value."""
    nan = isinstance(value, float) and math.isnan(value)
    return (updated_at, 0 if nan else 1, 0.0 if nan else value)


class Gauge:
    """Last-write-wins value.

    ``updated_at`` (wall-clock seconds) timestamps the latest write so
    gauges from different processes merge by recency, not merge order.
    """

    __slots__ = ("name", "labels", "value", "updated_at", "_lock")

    def __init__(self, name: str, labels: "dict[str, str] | None" = None) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.value = math.nan
        self.updated_at = 0.0
        self._lock = threading.RLock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = float(value)
            self.updated_at = time.time()

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level relative to its current value (NaN -> 0)."""
        with self._lock:
            base = 0.0 if math.isnan(self.value) else self.value
            self.value = base + amount
            self.updated_at = time.time()

    # -- merge / serialization -----------------------------------------
    def dump_state(self) -> dict:
        """Picklable state (see the module docstring's merge contract)."""
        return {"kind": "gauge", "name": self.name, "labels": dict(self.labels),
                "value": self.value, "updated_at": self.updated_at}

    @classmethod
    def from_state(cls, state: dict) -> "Gauge":
        """Rebuild from :meth:`dump_state` output."""
        gauge = cls(state["name"], state.get("labels"))
        gauge.value = float(state["value"])
        gauge.updated_at = float(state.get("updated_at", 0.0))
        return gauge

    def merge_from(self, other: "Gauge") -> None:
        """Fold another gauge in: the most recent write wins."""
        with self._lock:
            if _gauge_order(other.updated_at, other.value) > _gauge_order(
                self.updated_at, self.value
            ):
                self.value = other.value
                self.updated_at = other.updated_at


class Histogram:
    """Streaming distribution: buckets + bounded reservoir.

    The reservoir (Vitter's algorithm R with a private LCG, so the
    global :mod:`random` state is untouched and runs stay reproducible)
    keeps a uniform sample of at most ``reservoir_size`` observations;
    quantiles are read from it.  Bucket counts are exact and cumulative
    on export, Prometheus-style.
    """

    __slots__ = (
        "name",
        "labels",
        "count",
        "sum",
        "min",
        "max",
        "_bounds",
        "_bucket_counts",
        "_reservoir",
        "_reservoir_size",
        "_lcg",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: "dict[str, str] | None" = None,
        buckets: "Iterable[float] | None" = None,
        reservoir_size: int = 2048,
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        bounds = sorted(buckets) if buckets is not None else default_buckets()
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        # deterministic private LCG; seeded from the name so two
        # histograms never share a stream
        self._lcg = (hash(name) & 0xFFFFFFFFFFFFFFFF) | 1
        self._lock = threading.RLock()

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            # bucket: first bound >= value (linear scan is fine at ~30
            # bounds, bisect would allocate a closure-free path anyway)
            index = len(self._bounds)
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    index = i
                    break
            self._bucket_counts[index] += 1
            # reservoir (algorithm R)
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                self._lcg = (
                    self._lcg * 6364136223846793005 + 1442695040888963407
                ) & 0xFFFFFFFFFFFFFFFF
                j = self._lcg % self.count
                if j < self._reservoir_size:
                    self._reservoir[j] = value

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile from the reservoir (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._reservoir:
            return math.nan
        data = sorted(self._reservoir)
        if len(data) == 1:
            return data[0]
        position = q * (len(data) - 1)
        low = int(position)
        high = min(low + 1, len(data) - 1)
        fraction = position - low
        return data[low] * (1.0 - fraction) + data[high] * fraction

    @property
    def mean(self) -> float:
        """Return mean."""
        return self.sum / self.count if self.count else math.nan

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        out = []
        running = 0
        for bound, count in zip(self._bounds, self._bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def summary(self) -> dict:
        """Flat dict for snapshots and tables."""
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": math.nan if empty else self.min,
            "max": math.nan if empty else self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": [
                [bound, cumulative] for bound, cumulative in self.cumulative_buckets()
            ],
        }

    # -- merge / serialization -----------------------------------------
    def dump_state(self) -> dict:
        """Picklable state (see the module docstring's merge contract)."""
        with self._lock:
            return {
                "kind": "timer" if isinstance(self, Timer) else "histogram",
                "name": self.name,
                "labels": dict(self.labels),
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "bounds": list(self._bounds),
                "bucket_counts": list(self._bucket_counts),
                "reservoir": list(self._reservoir),
                "reservoir_size": self._reservoir_size,
            }

    @classmethod
    def from_state(cls, state: dict) -> "Histogram":
        """Rebuild from :meth:`dump_state` output."""
        hist = cls(
            state["name"],
            state.get("labels"),
            buckets=state["bounds"],
            reservoir_size=state.get("reservoir_size", 2048),
        )
        hist.count = int(state["count"])
        hist.sum = float(state["sum"])
        hist.min = float(state["min"])
        hist.max = float(state["max"])
        hist._bucket_counts = [int(c) for c in state["bucket_counts"]]
        hist._reservoir = [float(v) for v in state["reservoir"]]
        return hist

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram in (identical bucket bounds required).

        Counts, sums and per-bucket tallies add; min/max combine; the
        reservoir becomes the sorted multiset union of both reservoirs
        (associative and deterministic, may exceed ``reservoir_size`` —
        merged registries are terminal aggregates, not sample sinks).
        """
        if self._bounds != other._bounds:
            raise ValueError(
                f"histogram {self.name}: cannot merge differing bucket bounds"
            )
        with self._lock:
            self.count += other.count
            self.sum += other.sum
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            self._bucket_counts = [
                a + b for a, b in zip(self._bucket_counts, other._bucket_counts)
            ]
            self._reservoir = sorted(self._reservoir + other._reservoir)


class Timer(Histogram):
    """A histogram of durations (seconds) usable as a context manager.

    Re-entrant: nested ``with`` blocks on the same timer keep their own
    start times on a stack.
    """

    __slots__ = ("_starts",)

    def __init__(
        self,
        name: str,
        labels: "dict[str, str] | None" = None,
        buckets: "Iterable[float] | None" = None,
        reservoir_size: int = 2048,
    ) -> None:
        super().__init__(name, labels, buckets, reservoir_size)
        self._starts: list[float] = []

    def __enter__(self) -> "Timer":
        import time

        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        import time

        self.observe(time.perf_counter() - self._starts.pop())
        return False


class _NullInstrument:
    """Shared no-op instrument: counter, gauge, timer and histogram at once."""

    __slots__ = ()

    value = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""

    def quantile(self, q: float) -> float:
        """NaN: the null instrument has no data."""
        return math.nan

    def summary(self) -> dict:
        """Empty summary."""
        return {}

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_INSTRUMENT = _NullInstrument()


#: instrument class per state-record ``kind`` (for load_state / merge)
_STATE_CLASSES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
                  "timer": Timer}


class MetricsRegistry:
    """Owns every live instrument; get-or-create by ``(kind, name, labels)``.

    Creation is serialized under one registry lock and each instrument
    locks its own sample path — see the module docstring for the full
    concurrency contract.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _get(self, factory, kind: str, name: str, labels: "dict | None", **kwargs):
        key = (kind, name, tuple(sorted((labels or {}).items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    instrument = factory(name, labels, **kwargs)
                    self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, labels: "dict[str, str] | None" = None) -> Counter:
        """Get or create the named counter."""
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, labels: "dict[str, str] | None" = None) -> Gauge:
        """Get or create the named gauge."""
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self,
        name: str,
        labels: "dict[str, str] | None" = None,
        buckets: "Iterable[float] | None" = None,
    ) -> Histogram:
        """Get or create the named histogram."""
        return self._get(Histogram, "histogram", name, labels, buckets=buckets)

    def timer(self, name: str, labels: "dict[str, str] | None" = None) -> Timer:
        """Get or create the named timer."""
        return self._get(Timer, "timer", name, labels)

    # ------------------------------------------------------------------
    def instruments(self) -> "dict[tuple, object]":
        """The live ``(kind, name, labels) -> instrument`` map (read-only use)."""
        return dict(self._instruments)

    def snapshot(self) -> dict:
        """Freeze every instrument into plain dicts, grouped by kind."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}
        for (kind, name, labels), instrument in sorted(
            self._instruments.items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
        ):
            key = instrument_key(name, dict(labels))
            if kind == "counter":
                out["counters"][key] = instrument.value
            elif kind == "gauge":
                out["gauges"][key] = instrument.value
            elif kind == "histogram":
                out["histograms"][key] = instrument.summary()
            else:
                out["timers"][key] = instrument.summary()
        return out

    def reset(self) -> None:
        """Drop every instrument (a fresh start for the next run)."""
        with self._lock:
            self._instruments.clear()

    # -- cross-process merge -------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Deterministically fold ``other``'s instruments into this registry.

        Counters sum, gauges keep the latest-timestamped write,
        histograms and timers merge bucket-wise (see the module
        docstring).  Instruments absent here are copied in.  Returns
        ``self`` so merges chain; merging is associative and
        commutative up to gauge-timestamp ties, which break on a total
        order, so any merge order yields identical snapshots.
        """
        with self._lock:
            for key, instrument in sorted(
                other._instruments.items(), key=lambda item: item[0]
            ):
                mine = self._instruments.get(key)
                if mine is None:
                    state = instrument.dump_state()
                    self._instruments[key] = _STATE_CLASSES[state["kind"]].from_state(
                        state
                    )
                else:
                    mine.merge_from(instrument)
        return self

    def dump_state(self) -> dict:
        """Freeze every instrument into one plain picklable dict."""
        return {
            "version": 1,
            "instruments": [
                instrument.dump_state()
                for _, instrument in sorted(
                    self._instruments.items(), key=lambda item: item[0]
                )
            ],
        }

    @classmethod
    def load_state(cls, state: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`dump_state` output."""
        registry = cls()
        for record in state.get("instruments", []):
            klass = _STATE_CLASSES[record["kind"]]
            instrument = klass.from_state(record)
            key = (
                record["kind"],
                instrument.name,
                tuple(sorted(instrument.labels.items())),
            )
            registry._instruments[key] = instrument
        return registry

    def merge_state(self, state: "dict | None") -> "MetricsRegistry":
        """Fold a :meth:`dump_state` payload in (no-op on ``None``)."""
        if state:
            self.merge(MetricsRegistry.load_state(state))
        return self


class NullRegistry:
    """The disabled registry: every accessor returns the shared no-op.

    No instruments are ever created, ``snapshot()`` is empty, and the
    per-sample cost in instrumented code is one attribute call on a
    method that does nothing.
    """

    enabled = False

    def counter(self, name: str, labels=None) -> _NullInstrument:
        """Shared no-op."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, labels=None) -> _NullInstrument:
        """Shared no-op."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, labels=None, buckets=None) -> _NullInstrument:
        """Shared no-op."""
        return _NULL_INSTRUMENT

    def timer(self, name: str, labels=None) -> _NullInstrument:
        """Shared no-op."""
        return _NULL_INSTRUMENT

    def instruments(self) -> dict:
        """Always empty."""
        return {}

    def snapshot(self) -> dict:
        """Always empty."""
        return {}

    def reset(self) -> None:
        """No-op."""

    def dump_state(self) -> dict:
        """Always empty."""
        return {}

    def merge_state(self, state=None) -> "NullRegistry":
        """No-op."""
        return self


#: the module-level singleton instrumented code sees when obs is off
NULL_REGISTRY = NullRegistry()


def snapshot_delta(before: dict, after: dict) -> dict:
    """What happened between two snapshots of the *same* registry.

    Counters subtract; gauges take the ``after`` value; histogram and
    timer counts/sums subtract while the quantiles are carried from
    ``after`` (a reservoir cannot be un-sampled).  Instruments absent
    from ``before`` pass through unchanged.
    """
    out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}
    for key, value in after.get("counters", {}).items():
        out["counters"][key] = value - before.get("counters", {}).get(key, 0.0)
    out["gauges"] = dict(after.get("gauges", {}))
    for group in ("histograms", "timers"):
        for key, summary in after.get(group, {}).items():
            prior = before.get(group, {}).get(key)
            merged = dict(summary)
            if prior:
                merged["count"] = summary["count"] - prior["count"]
                merged["sum"] = summary["sum"] - prior["sum"]
            out[group][key] = merged
    return out

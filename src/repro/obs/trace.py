"""Cross-process distributed tracing for the serving tier.

The in-process :class:`~repro.obs.tracing.Tracer` builds span trees
inside one interpreter; this module extends the idea across OS
processes.  A request carries a **trace context** — ``(trace_id,
span_id, sampled)`` — stamped on every line-JSON protocol message, and
each hop (client, router, netem wire, shard service, batcher, WAL
replay) opens a child span bound to that context.  Spans are written
as single JSON lines to a per-process sink file (the ledger's
single-writer discipline), and ``repro trace`` stitches the files back
into one waterfall or critical-path view per trace id.

Determinism: the sampling decision is a pure function of
``(seed, trace_id)`` via :func:`~repro.utils.rng.derive_seed`, and
trace ids themselves derive from ``(seed, request index)`` in the
seeded load generators — so a replayed run samples exactly the same
requests.  Tracing never feeds back into scheduling: span records
carry wall-clock timestamps but no instrumented code path branches on
them, which is what the trace determinism suite pins down.

When tracing is off, every call site talks to
:class:`NullSpanRecorder` — one no-op attribute call per span, the
same discipline as the null metrics registry.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import SerializationError
from repro.obs import names as obs_names
from repro.utils.rng import derive_seed
from repro.utils.validation import require

__all__ = [
    "TraceContext",
    "TraceSampler",
    "context_from_wire",
    "new_trace_id",
    "SpanRecord",
    "SpanSink",
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_SPAN_RECORDER",
    "SPAN_FILE_PREFIX",
    "load_span_file",
    "load_trace_dir",
    "trace_ids",
    "build_trace",
    "render_waterfall",
    "critical_path",
    "render_critical_path",
]

#: span sink files are named ``spans-<process>.jsonl`` inside a trace dir
SPAN_FILE_PREFIX = "spans-"

#: sink file header line, ledger-style
_FORMAT = "repro-trace"
_VERSION = 1

#: sampling draws compare against this resolution
_SAMPLE_RESOLUTION = 1_000_000


# ----------------------------------------------------------------------
# context + sampling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """What one hop hands the next: trace id, parent span, sampled flag.

    The wire form rides protocol messages as the ``trace`` field and is
    omitted entirely when no context is attached, so untraced runs emit
    byte-identical protocol lines.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True

    def to_dict(self) -> dict:
        """Wire form (the ``trace`` field of a protocol message)."""
        payload: dict = {"trace_id": self.trace_id}
        if self.span_id:
            payload["span_id"] = self.span_id
        if not self.sampled:
            payload["sampled"] = False
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Inverse of :meth:`to_dict`; raises SerializationError on junk."""
        try:
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=str(payload.get("span_id", "")),
                sampled=bool(payload.get("sampled", True)),
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"bad trace context: {exc}") from exc


def context_from_wire(payload: "dict | None") -> "TraceContext | None":
    """Lenient inbound parse: a malformed ``trace`` field drops the
    context (the request must still be served) instead of raising."""
    if not payload:
        return None
    try:
        return TraceContext.from_dict(payload)
    except SerializationError:
        return None


def new_trace_id(seed: int, n: int) -> str:
    """Deterministic trace id for the ``n``-th request of a seeded run."""
    return f"{derive_seed(seed, 'trace-id', n):016x}"


class TraceSampler:
    """Head-based deterministic sampling: a pure function of the id.

    Every process holding the same ``(seed, rate)`` pair agrees on
    which trace ids are sampled without coordination, and a replayed
    run samples the same requests — the property the determinism
    suite pins.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        require(0.0 <= rate <= 1.0, f"sample rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def sampled(self, trace_id: str) -> bool:
        """Whether this trace id is sampled (same answer everywhere)."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        draw = derive_seed(self.seed, "trace-sample", trace_id)
        return (draw % _SAMPLE_RESOLUTION) < self.rate * _SAMPLE_RESOLUTION


# ----------------------------------------------------------------------
# span records + sink
# ----------------------------------------------------------------------
@dataclass
class SpanRecord:
    """One finished span as it appears on disk (one JSON line)."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    process: str
    start_ms: float            # wall clock, epoch milliseconds
    duration_ms: float = 0.0
    status: str = "ok"
    events: list = field(default_factory=list)
    attributes: dict = field(default_factory=dict)

    @property
    def end_ms(self) -> float:
        """Wall-clock end of the span (epoch milliseconds)."""
        return self.start_ms + self.duration_ms

    def to_dict(self) -> dict:
        """JSON-ready form (omits empty optionals)."""
        payload: dict = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "process": self.process,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "status": self.status,
        }
        if self.parent_id:
            payload["parent_id"] = self.parent_id
        if self.events:
            payload["events"] = list(self.events)
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        """Inverse of :meth:`to_dict`; raises SerializationError on junk."""
        try:
            return cls(
                trace_id=str(payload["trace_id"]),
                span_id=str(payload["span_id"]),
                parent_id=str(payload.get("parent_id", "")),
                name=str(payload["name"]),
                process=str(payload.get("process", "?")),
                start_ms=float(payload["start_ms"]),
                duration_ms=float(payload.get("duration_ms", 0.0)),
                status=str(payload.get("status", "ok")),
                events=list(payload.get("events", [])),
                attributes=dict(payload.get("attributes", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad span record: {exc}") from exc


class SpanSink:
    """Append-only JSONL span writer: one per process, single-writer.

    Same discipline as :class:`~repro.obs.ledger.RunLedger`: a lock, a
    lazily opened append handle, one flushed JSON line per span, and a
    meta header line stamped when the file is empty — so a crashed
    process loses at most its torn final line.
    """

    def __init__(self, path: "str | Path", process: str) -> None:
        self.path = Path(path)
        self.process = process
        self._lock = threading.Lock()
        self._handle = None
        self.spans_written = 0

    def emit(self, record: SpanRecord) -> None:
        """Append one finished span (thread-safe)."""
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._handle = open(  # noqa: SIM115 — long-lived handle
                    self.path, "a", encoding="utf-8"
                )
                if fresh:
                    header = {
                        "format": _FORMAT,
                        "version": _VERSION,
                        "process": self.process,
                    }
                    self._handle.write(
                        json.dumps(header, sort_keys=True) + "\n"
                    )
            self._handle.write(line + "\n")
            self._handle.flush()
            self.spans_written += 1

    def close(self) -> None:
        """Close the handle (emitted spans already on disk stay)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ----------------------------------------------------------------------
# the recorder (live + null twin)
# ----------------------------------------------------------------------
#: the innermost live span of the current asyncio task / thread —
#: children and events attach here without threading a handle through
#: every call signature (netem annotates the router's forward span this
#: way).  contextvars give each asyncio task its own copy, so hedged
#: forwards running concurrently each see their own span.
_CURRENT_SPAN: "contextvars.ContextVar[_ActiveSpan | None]" = (
    contextvars.ContextVar("repro_trace_current_span", default=None)
)


class _ActiveSpan:
    """Context manager for one live cross-process span."""

    __slots__ = (
        "_recorder", "_record", "_started", "_token", "context",
    )

    def __init__(
        self, recorder: "SpanRecorder", record: SpanRecord,
        started: float,
    ) -> None:
        self._recorder = recorder
        self._record = record
        self._started = started
        self._token = None
        #: hand this to the next hop (its parent is *this* span)
        self.context = TraceContext(
            trace_id=record.trace_id, span_id=record.span_id, sampled=True
        )

    @property
    def span_id(self) -> str:
        """This span's id (the next hop's parent id)."""
        return self._record.span_id

    def annotate(self, **attributes) -> None:
        """Attach key/value attributes to the live span."""
        self._record.attributes.update(attributes)

    def event(self, name: str, **fields) -> None:
        """Record a point-in-time event inside the span."""
        entry = {
            "name": name,
            "t_ms": round(
                (time.perf_counter() - self._started) * 1e3, 3
            ),
        }
        entry.update(fields)
        self._record.events.append(entry)
        self._recorder.events_recorded += 1

    def set_status(self, status: str) -> None:
        """Override the span status (exceptions set ``error:<Type>``)."""
        self._record.status = status

    def __enter__(self) -> "_ActiveSpan":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self._record.duration_ms = (
            time.perf_counter() - self._started
        ) * 1e3
        if exc_type is not None:
            self._record.status = f"error:{exc_type.__name__}"
        self._recorder._finish(self._record)
        return False


class _ManualSpan:
    """A live span closed by an explicit :meth:`finish` call.

    For measurement harnesses whose send and completion live in
    different callbacks (the open-loop load generator), where a
    ``with`` block cannot bracket the request.  Never use this on the
    serving request path — there the lint enforces ``start_span`` +
    ``with``, and ``start_manual`` is forbidden outright.
    """

    __slots__ = ("_recorder", "_record", "_started", "_done", "context")

    def __init__(
        self, recorder: "SpanRecorder", record: SpanRecord, started: float
    ) -> None:
        self._recorder = recorder
        self._record = record
        self._started = started
        self._done = False
        self.context = TraceContext(
            trace_id=record.trace_id, span_id=record.span_id, sampled=True
        )

    def annotate(self, **attributes) -> None:
        """Attach key/value attributes to the live span."""
        self._record.attributes.update(attributes)

    def event(self, name: str, **fields) -> None:
        """Record a point-in-time event inside the span."""
        entry = {
            "name": name,
            "t_ms": round((time.perf_counter() - self._started) * 1e3, 3),
        }
        entry.update(fields)
        self._record.events.append(entry)
        self._recorder.events_recorded += 1

    def finish(self, status: str = "ok") -> None:
        """Close and export the span (idempotent)."""
        if self._done:
            return
        self._done = True
        self._record.duration_ms = (
            time.perf_counter() - self._started
        ) * 1e3
        self._record.status = status
        self._recorder._finish(self._record)


class _NullActiveSpan:
    """Shared no-op span: the unsampled / disabled twin."""

    __slots__ = ()

    span_id = ""
    context = None

    def annotate(self, **attributes) -> None:
        """No-op."""

    def event(self, name: str, **fields) -> None:
        """No-op."""

    def set_status(self, status: str) -> None:
        """No-op."""

    def finish(self, status: str = "ok") -> None:
        """No-op."""

    def __enter__(self) -> "_NullActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_ACTIVE_SPAN = _NullActiveSpan()


class SpanRecorder:
    """Opens spans bound to trace contexts and exports them to a sink.

    One recorder per process.  ``start_span`` is the only way to open a
    span and must be used as a context manager (``with``) — the request
    -path lint enforces this, so spans cannot leak open.
    """

    enabled = True

    def __init__(
        self,
        sink: SpanSink,
        process: str,
        sampler: "TraceSampler | None" = None,
    ) -> None:
        self.sink = sink
        self.process = process
        self.sampler = sampler or TraceSampler()
        self._counter = 0
        self.spans_exported = 0
        self.events_recorded = 0
        self.traces_started = 0

    # -- context creation ----------------------------------------------
    def new_context(self, trace_id: str) -> TraceContext:
        """Root context for ``trace_id``; applies the sampling decision."""
        sampled = self.sampler.sampled(trace_id)
        if sampled:
            self.traces_started += 1
            self._metric(obs_names.TRACE_TRACES_SAMPLED)
        return TraceContext(trace_id=trace_id, span_id="", sampled=sampled)

    # -- span lifecycle ------------------------------------------------
    def start_span(
        self,
        name: str,
        context: "TraceContext | None",
        **attributes,
    ) -> "_ActiveSpan | _NullActiveSpan":
        """Open a child span of ``context`` (``with`` only).

        Returns the shared no-op span when the context is missing or
        the trace is unsampled, so unsampled requests cost one branch.
        """
        if context is None or not context.sampled:
            return _NULL_ACTIVE_SPAN
        self._counter += 1
        record = SpanRecord(
            trace_id=context.trace_id,
            span_id=f"{self.process}:{self._counter}",
            parent_id=context.span_id,
            name=name,
            process=self.process,
            start_ms=time.time() * 1e3,
            attributes=dict(attributes),
        )
        return _ActiveSpan(self, record, time.perf_counter())

    def start_manual(
        self,
        name: str,
        context: "TraceContext | None",
        **attributes,
    ) -> "_ManualSpan | _NullActiveSpan":
        """Open a span closed by ``.finish()`` instead of ``with``.

        Only for measurement harnesses (see :class:`_ManualSpan`); the
        request-path lint rejects this call in serving code.
        """
        if context is None or not context.sampled:
            return _NULL_ACTIVE_SPAN
        self._counter += 1
        record = SpanRecord(
            trace_id=context.trace_id,
            span_id=f"{self.process}:{self._counter}",
            parent_id=context.span_id,
            name=name,
            process=self.process,
            start_ms=time.time() * 1e3,
            attributes=dict(attributes),
        )
        return _ManualSpan(self, record, time.perf_counter())

    def current(self) -> "_ActiveSpan | _NullActiveSpan":
        """The innermost live span of this task (no-op span when none)."""
        live = _CURRENT_SPAN.get()
        return live if live is not None else _NULL_ACTIVE_SPAN

    def event(self, name: str, **fields) -> None:
        """Annotate the current task's live span (no-op when none)."""
        self.current().event(name, **fields)

    def _finish(self, record: SpanRecord) -> None:
        self.sink.emit(record)
        self.spans_exported += 1
        self._metric(obs_names.TRACE_SPANS_EXPORTED)

    @staticmethod
    def _metric(name: str) -> None:
        from repro.obs import runtime as obs_runtime

        obs_runtime.metrics().counter(name).inc()

    def close(self) -> None:
        """Close the sink."""
        self.sink.close()


class NullSpanRecorder:
    """The disabled recorder: every call is a shared no-op."""

    enabled = False
    process = ""

    def new_context(self, trace_id: str) -> None:
        """No context: messages stay untraced (and byte-identical)."""
        return None

    def start_span(self, name, context, **attributes) -> _NullActiveSpan:
        """Shared no-op span."""
        return _NULL_ACTIVE_SPAN

    def start_manual(self, name, context, **attributes) -> _NullActiveSpan:
        """Shared no-op span."""
        return _NULL_ACTIVE_SPAN

    def current(self) -> _NullActiveSpan:
        """Shared no-op span."""
        return _NULL_ACTIVE_SPAN

    def event(self, name: str, **fields) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""


#: the module-level singleton instrumented code sees when tracing is off
NULL_SPAN_RECORDER = NullSpanRecorder()


# ----------------------------------------------------------------------
# stitching: per-process files -> one tree per trace id
# ----------------------------------------------------------------------
def load_span_file(path: "str | Path") -> "list[SpanRecord]":
    """Read one sink file (header line skipped, torn tail dropped)."""
    path = Path(path)
    records: "list[SpanRecord]" = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                break  # torn tail: the writer was SIGKILLed mid-append
            raise SerializationError(
                f"corrupt span file {path} at line {index + 1}: {exc}"
            ) from exc
        if payload.get("format") == _FORMAT:
            continue  # header line
        records.append(SpanRecord.from_dict(payload))
    return records


def load_trace_dir(directory: "str | Path") -> "list[SpanRecord]":
    """Read every ``spans-*.jsonl`` under ``directory`` (sorted names)."""
    directory = Path(directory)
    require(directory.is_dir(), f"not a trace directory: {directory}")
    records: "list[SpanRecord]" = []
    for path in sorted(directory.glob(f"{SPAN_FILE_PREFIX}*.jsonl")):
        records.extend(load_span_file(path))
    return records


def trace_ids(records: "list[SpanRecord]") -> "list[str]":
    """Distinct trace ids, ordered by first span start."""
    first_seen: dict = {}
    for record in records:
        start = first_seen.get(record.trace_id)
        if start is None or record.start_ms < start:
            first_seen[record.trace_id] = record.start_ms
    return sorted(first_seen, key=first_seen.get)


@dataclass
class TraceNode:
    """One span plus its resolved children, time-sorted."""

    record: SpanRecord
    children: "list[TraceNode]" = field(default_factory=list)


def build_trace(
    records: "list[SpanRecord]", trace_id: str
) -> "tuple[list[TraceNode], list[SpanRecord]]":
    """Stitch one trace id into root trees.

    Returns ``(roots, orphans)``: roots are spans with no parent id (or
    whose parent never reached a sink — those become roots too, so a
    lost file degrades the view instead of hiding spans), orphans lists
    the spans whose parent id did not resolve.
    """
    mine = [r for r in records if r.trace_id == trace_id]
    nodes = {r.span_id: TraceNode(r) for r in mine}
    roots: "list[TraceNode]" = []
    orphans: "list[SpanRecord]" = []
    for record in mine:
        node = nodes[record.span_id]
        parent = nodes.get(record.parent_id) if record.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
            if record.parent_id:
                orphans.append(record)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.record.start_ms)
    roots.sort(key=lambda root: root.record.start_ms)
    return roots, orphans


def _walk(node: TraceNode, depth: int = 0):
    yield node, depth
    for child in node.children:
        yield from _walk(child, depth + 1)


def render_waterfall(
    roots: "list[TraceNode]", width: int = 40
) -> str:
    """Time-aligned ASCII waterfall of one stitched trace."""
    flat = [item for root in roots for item in _walk(root)]
    if not flat:
        return "(no spans)"
    t0 = min(node.record.start_ms for node, _ in flat)
    t1 = max(node.record.end_ms for node, _ in flat)
    span_ms = max(t1 - t0, 1e-9)
    name_w = max(
        len("  " * depth + node.record.name) for node, depth in flat
    )
    lines = [
        f"trace {flat[0][0].record.trace_id}  "
        f"({span_ms:.2f} ms end-to-end, {len(flat)} spans)"
    ]
    for node, depth in flat:
        record = node.record
        left = int((record.start_ms - t0) / span_ms * width)
        bar_w = max(1, int(record.duration_ms / span_ms * width))
        bar = " " * min(left, width - 1) + "#" * min(bar_w, width - left)
        label = ("  " * depth + record.name).ljust(name_w)
        flags = "" if record.status == "ok" else f"  !{record.status}"
        events = f"  ·{len(record.events)}ev" if record.events else ""
        lines.append(
            f"  {label}  |{bar.ljust(width)}|"
            f" {record.duration_ms:9.3f} ms"
            f"  [{record.process}]{events}{flags}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class CriticalSegment:
    """One hop of the critical path with its exclusive self-time."""

    name: str
    process: str
    span_id: str
    duration_ms: float
    self_ms: float
    status: str


def critical_path(root: TraceNode) -> "tuple[list[CriticalSegment], float]":
    """Walk the latest-finishing child chain from ``root``.

    Each segment's ``self_ms`` is its duration minus the on-path
    child's duration *clipped to the parent interval* — so the
    segments telescope to exactly the root duration when parent/child
    links and clocks are intact, and to less when they are not.
    Returns ``(segments, attributed_ms)``.
    """
    segments: "list[CriticalSegment]" = []
    attributed = 0.0
    node = root
    while node is not None:
        record = node.record
        chosen = None
        for child in node.children:
            if chosen is None or child.record.end_ms > chosen.record.end_ms:
                chosen = child
        child_ms = 0.0
        if chosen is not None:
            # clip the child to the parent interval: clock skew or a
            # broken link must not attribute more time than elapsed
            lo = max(chosen.record.start_ms, record.start_ms)
            hi = min(chosen.record.end_ms, record.end_ms)
            child_ms = max(0.0, hi - lo)
        self_ms = max(0.0, record.duration_ms - child_ms)
        segments.append(CriticalSegment(
            name=record.name,
            process=record.process,
            span_id=record.span_id,
            duration_ms=record.duration_ms,
            self_ms=self_ms,
            status=record.status,
        ))
        attributed += self_ms
        node = chosen
    return segments, attributed


def render_critical_path(root: TraceNode) -> str:
    """The critical-path view: one line per hop, attribution summary."""
    segments, attributed = critical_path(root)
    total = max(root.record.duration_ms, 1e-9)
    lines = [
        f"critical path of trace {root.record.trace_id} "
        f"({root.record.duration_ms:.3f} ms end-to-end)"
    ]
    for segment in segments:
        share = segment.self_ms / total * 100.0
        flag = "" if segment.status == "ok" else f"  !{segment.status}"
        lines.append(
            f"  {segment.name:<28} {segment.self_ms:9.3f} ms self"
            f"  ({share:5.1f}%)  [{segment.process}]{flag}"
        )
    coverage = attributed / total * 100.0
    lines.append(
        f"  attributed {coverage:.1f}% of end-to-end latency "
        f"to {len(segments)} named spans"
    )
    return "\n".join(lines)

"""The metric-name catalog.

Every metric the library emits is declared here once, so the
instrumentation sites, the dashboard, the docs and the tests agree on
spelling.  Names are hierarchical ``layer/metric`` strings; the
Prometheus sink rewrites them to ``repro_layer_metric``.

See ``docs/observability.md`` for the full catalog with semantics.
"""

from __future__ import annotations

# -- solvers ----------------------------------------------------------
SOLVER_SOLVES = "solver/solves"
SOLVER_RUNTIME = "solver/runtime_s"
SOLVER_ITERATIONS = "solver/iterations"
SOLVER_INFEASIBLE = "solver/infeasible_results"
SOLVER_IMPROVEMENT = "solver/objective_improvement"
SOLVER_PHASE_RUNTIME = "solver/phase_runtime_s"

# -- RL trainers ------------------------------------------------------
RL_EPISODES = "rl/episodes"
RL_EPISODE_COST = "rl/episode_cost"
RL_EPSILON = "rl/epsilon"
RL_MASK_BLOCKED = "rl/mask_blocked_actions"
RL_DEAD_ENDS = "rl/dead_ends"
RL_Q_STATES = "rl/q_states"

# -- discrete-event simulator ----------------------------------------
SIM_EVENTS = "sim/events"
SIM_EVENT_QUEUE_DEPTH = "sim/event_queue_depth"
SIM_QUEUE_WAIT = "sim/queue_wait_s"
SIM_LINK_UTILIZATION = "sim/link_utilization"
SIM_SERVER_UTILIZATION = "sim/server_utilization"
SIM_TASKS_CREATED = "sim/tasks_created"
SIM_TASKS_COMPLETED = "sim/tasks_completed"

# -- cluster configuration layer -------------------------------------
CLUSTER_MIGRATIONS = "cluster/migrations"
CLUSTER_RECONFIGS = "cluster/reconfigurations"
CLUSTER_RECONFIG_LATENCY = "cluster/reconfig_latency_s"
CLUSTER_EPOCHS = "cluster/epochs"
CLUSTER_LOAD_SHED = "cluster/load_shed_devices"
ONLINE_ASSIGNMENTS = "cluster/online_assignments"
ONLINE_REJECTIONS = "cluster/online_rejections"

# -- sweep execution engine ------------------------------------------
ENGINE_JOBS_SCHEDULED = "engine/jobs_scheduled"
ENGINE_JOBS_COMPLETED = "engine/jobs_completed"
ENGINE_JOBS_FAILED = "engine/jobs_failed"
ENGINE_CACHE_HITS = "engine/cache_hits"
ENGINE_CACHE_MISSES = "engine/cache_misses"
ENGINE_CACHE_CORRUPT = "engine/cache_corrupt_entries"
ENGINE_QUEUE_WAIT = "engine/queue_wait_s"
ENGINE_JOB_RUNTIME = "engine/job_runtime_s"
ENGINE_WORKER_UTILIZATION = "engine/worker_utilization"

# -- online assignment service ---------------------------------------
SERVE_REQUESTS = "serve/requests"
SERVE_ADMITTED = "serve/admitted"
SERVE_REJECTED = "serve/rejected"
SERVE_ASSIGNED = "serve/assigned"
SERVE_RELEASED = "serve/released"
SERVE_ERRORS = "serve/errors"
SERVE_QUEUE_DEPTH = "serve/queue_depth"
SERVE_ACTIVE_DEVICES = "serve/active_devices"
SERVE_BATCH_SIZE = "serve/batch_size"
SERVE_BATCH_FLUSHES = "serve/batch_flushes"
SERVE_ASSIGN_LATENCY = "serve/assign_latency_s"
SERVE_REOPT_RUNS = "serve/reopt_runs"
SERVE_REOPT_GAIN = "serve/reopt_gain_ms"
SERVE_DEADLINE_EXCEEDED = "serve/deadline_exceeded"
SERVE_CLIENT_RETRIES = "serve/client_retries"
SERVE_RETRY_BUDGET_EXHAUSTED = "serve/retry_budget_exhausted"

# -- topology-sharded serving tier -----------------------------------
SHARD_ROUTED = "shard/routed"
SHARD_SPILLOVERS = "shard/spillovers"
SHARD_UNROUTABLE = "shard/unroutable"
SHARD_BREAKER_TRIPS = "shard/breaker_trips"
SHARD_MIGRATIONS = "shard/migrated_devices"
SHARD_MIGRATION_ROUNDS = "shard/migration_rounds"
SHARD_MIGRATION_LOST = "shard/migration_lost_devices"
SHARD_ACTIVE_DEVICES = "shard/active_devices"
SHARD_ROUTE_LATENCY = "shard/route_latency_s"
SHARD_HEDGES = "shard/hedged_requests"
SHARD_HEDGE_WINS = "shard/hedge_wins"
SHARD_HEDGE_CLEANUPS = "shard/hedge_cleanups"
SHARD_EJECTIONS = "shard/latency_ejections"
SHARD_TIMEOUTS = "shard/deadline_timeouts"
SHARD_GHOST_RELEASES = "shard/ghost_releases"

# -- on-wire network fault injection ----------------------------------
NETEM_DROPPED = "netem/dropped_messages"
NETEM_DELAYED = "netem/delayed_messages"
NETEM_INJECTED_DELAY = "netem/injected_delay_s"
NETEM_DUPLICATED = "netem/duplicated_messages"
NETEM_REORDERED = "netem/reordered_messages"
NETEM_PARTITIONED = "netem/partition_drops"

# -- assignment write-ahead log ---------------------------------------
WAL_APPENDS = "wal/records_appended"
WAL_SNAPSHOTS = "wal/snapshots_written"
WAL_REPLAYED = "wal/records_replayed"
WAL_RECOVERIES = "wal/recoveries"
WAL_RECOVERY_TIME = "wal/recovery_time_s"

# -- cross-process distributed tracing --------------------------------
TRACE_TRACES_SAMPLED = "trace/traces_sampled"
TRACE_SPANS_EXPORTED = "trace/spans_exported"

# -- SLO burn-rate monitoring -----------------------------------------
SLO_FAST_BURN = "slo/fast_burn_rate"
SLO_SLOW_BURN = "slo/slow_burn_rate"
SLO_PAGES = "slo/pages"

# -- flow-based contention cost model ---------------------------------
CONTENTION_EVALUATIONS = "contention/evaluations"
CONTENTION_DELTA_EVALS = "contention/delta_evals"
CONTENTION_MAX_UTILIZATION = "contention/max_utilization"
CONTENTION_SATURATED_LINKS = "contention/saturated_links"

# -- fault injection and task-lifecycle resilience --------------------
FAULTS_INJECTED = "faults/injected"
FAULTS_SERVER_CRASHES = "faults/server_crashes"
FAULTS_SERVER_REPAIRS = "faults/server_repairs"
FAULTS_LINK_DEGRADATIONS = "faults/link_degradations"
FAULTS_TASK_TIMEOUTS = "faults/task_timeouts"
FAULTS_TASK_RETRIES = "faults/task_retries"
FAULTS_TASK_FAILOVERS = "faults/task_failovers"
FAULTS_TASKS_LOST = "faults/tasks_lost"
SOLVER_FALLBACKS = "solver/fallbacks"

#: spans emitted by the tracer (prefixes; the suffix is dynamic)
SPAN_SOLVE = "solve"
SPAN_SIM_RUN = "sim/run"
SPAN_RECONFIG = "cluster/reconfigure"
SPAN_DEGRADED = "cluster/degraded"
SPAN_CHAOS = "faults/run"
SPAN_REOPT = "serve/reopt"
SPAN_REBALANCE = "shard/rebalance"

#: cross-process span names (see repro.obs.trace; docs/observability.md)
XSPAN_CLIENT = "client/request"
XSPAN_RETRY = "client/retry"
XSPAN_ROUTE = "router/route"
XSPAN_FORWARD = "router/forward"
XSPAN_NETEM = "netem/wire"
XSPAN_SERVE = "serve/request"
XSPAN_BATCH = "serve/batch"
XSPAN_WAL_REPLAY = "wal/replay"

#: every registered metric name, for the docs/tests cross-check
CATALOG: tuple[str, ...] = (
    SOLVER_SOLVES,
    SOLVER_RUNTIME,
    SOLVER_ITERATIONS,
    SOLVER_INFEASIBLE,
    SOLVER_IMPROVEMENT,
    SOLVER_PHASE_RUNTIME,
    RL_EPISODES,
    RL_EPISODE_COST,
    RL_EPSILON,
    RL_MASK_BLOCKED,
    RL_DEAD_ENDS,
    RL_Q_STATES,
    SIM_EVENTS,
    SIM_EVENT_QUEUE_DEPTH,
    SIM_QUEUE_WAIT,
    SIM_LINK_UTILIZATION,
    SIM_SERVER_UTILIZATION,
    SIM_TASKS_CREATED,
    SIM_TASKS_COMPLETED,
    CLUSTER_MIGRATIONS,
    CLUSTER_RECONFIGS,
    CLUSTER_RECONFIG_LATENCY,
    CLUSTER_EPOCHS,
    CLUSTER_LOAD_SHED,
    ONLINE_ASSIGNMENTS,
    ONLINE_REJECTIONS,
    SERVE_REQUESTS,
    SERVE_ADMITTED,
    SERVE_REJECTED,
    SERVE_ASSIGNED,
    SERVE_RELEASED,
    SERVE_ERRORS,
    SERVE_QUEUE_DEPTH,
    SERVE_ACTIVE_DEVICES,
    SERVE_BATCH_SIZE,
    SERVE_BATCH_FLUSHES,
    SERVE_ASSIGN_LATENCY,
    SERVE_REOPT_RUNS,
    SERVE_REOPT_GAIN,
    SERVE_DEADLINE_EXCEEDED,
    SERVE_CLIENT_RETRIES,
    SERVE_RETRY_BUDGET_EXHAUSTED,
    SHARD_ROUTED,
    SHARD_SPILLOVERS,
    SHARD_UNROUTABLE,
    SHARD_BREAKER_TRIPS,
    SHARD_MIGRATIONS,
    SHARD_MIGRATION_ROUNDS,
    SHARD_MIGRATION_LOST,
    SHARD_ACTIVE_DEVICES,
    SHARD_ROUTE_LATENCY,
    SHARD_HEDGES,
    SHARD_HEDGE_WINS,
    SHARD_HEDGE_CLEANUPS,
    SHARD_EJECTIONS,
    SHARD_TIMEOUTS,
    SHARD_GHOST_RELEASES,
    NETEM_DROPPED,
    NETEM_DELAYED,
    NETEM_INJECTED_DELAY,
    NETEM_DUPLICATED,
    NETEM_REORDERED,
    NETEM_PARTITIONED,
    WAL_APPENDS,
    WAL_SNAPSHOTS,
    WAL_REPLAYED,
    WAL_RECOVERIES,
    WAL_RECOVERY_TIME,
    TRACE_TRACES_SAMPLED,
    TRACE_SPANS_EXPORTED,
    SLO_FAST_BURN,
    SLO_SLOW_BURN,
    SLO_PAGES,
    CONTENTION_EVALUATIONS,
    CONTENTION_DELTA_EVALS,
    CONTENTION_MAX_UTILIZATION,
    CONTENTION_SATURATED_LINKS,
    ENGINE_JOBS_SCHEDULED,
    ENGINE_JOBS_COMPLETED,
    ENGINE_JOBS_FAILED,
    ENGINE_CACHE_HITS,
    ENGINE_CACHE_MISSES,
    ENGINE_CACHE_CORRUPT,
    ENGINE_QUEUE_WAIT,
    ENGINE_JOB_RUNTIME,
    ENGINE_WORKER_UTILIZATION,
    FAULTS_INJECTED,
    FAULTS_SERVER_CRASHES,
    FAULTS_SERVER_REPAIRS,
    FAULTS_LINK_DEGRADATIONS,
    FAULTS_TASK_TIMEOUTS,
    FAULTS_TASK_RETRIES,
    FAULTS_TASK_FAILOVERS,
    FAULTS_TASKS_LOST,
    SOLVER_FALLBACKS,
)

"""The process-wide observability switch.

One module-level pair ``(registry, tracer)`` backs every instrumented
call site in the library.  By default both are the null twins, so all
instrumentation compiles down to no-op method calls; :func:`enable`
swaps in live objects and returns the :class:`ObsSession` handle used
to snapshot, export, or render what was collected.

Instrumented code fetches the live objects with :func:`metrics` and
:func:`tracer` *at the start of a unit of work* (one solve, one sim
run) and keeps local references — one global lookup per unit, one
attribute call per sample.
"""

from __future__ import annotations

import contextlib
from pathlib import Path

from repro.obs.ledger import NULL_LEDGER, NullLedger, RunLedger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.trace import (
    NULL_SPAN_RECORDER,
    SPAN_FILE_PREFIX,
    NullSpanRecorder,
    SpanRecorder,
    SpanSink,
    TraceSampler,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsSession",
    "metrics",
    "tracer",
    "ledger",
    "spans",
    "is_enabled",
    "is_tracing",
    "enable",
    "disable",
    "observed",
    "ledgered",
    "unledgered",
    "enable_tracing",
    "disable_tracing",
    "traced",
]

_registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY
_tracer: "Tracer | NullTracer" = NULL_TRACER
_session: "ObsSession | None" = None
_ledger: "RunLedger | NullLedger" = NULL_LEDGER
_spans: "SpanRecorder | NullSpanRecorder" = NULL_SPAN_RECORDER


class ObsSession:
    """A live observability window: the registry/tracer pair plus exits."""

    def __init__(self, registry: MetricsRegistry, trace: Tracer) -> None:
        self.registry = registry
        self.tracer = trace

    def snapshot(self) -> dict:
        """Current metric values (see :meth:`MetricsRegistry.snapshot`)."""
        return self.registry.snapshot()

    def spans(self) -> list:
        """Finished root spans collected so far."""
        return list(self.tracer.roots)

    def write_jsonl(self, path: "str | Path") -> Path:
        """Dump metrics + spans as JSON lines (see :mod:`repro.obs.sinks`)."""
        from repro.obs.sinks import write_jsonl

        return write_jsonl(path, self.registry, self.tracer)

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        from repro.obs.sinks import to_prometheus_text

        return to_prometheus_text(self.registry)

    def render_dashboard(self, width: int = 64) -> str:
        """ASCII dashboard of the current state."""
        from repro.obs.dashboard import render_dashboard
        from repro.obs.sinks import collect

        return render_dashboard(collect(self.registry, self.tracer), width=width)


def metrics() -> "MetricsRegistry | NullRegistry":
    """The active metrics registry (the null registry when disabled)."""
    return _registry


def tracer() -> "Tracer | NullTracer":
    """The active tracer (the null tracer when disabled)."""
    return _tracer


def ledger() -> "RunLedger | NullLedger":
    """The active run ledger (the null ledger when none is attached)."""
    return _ledger


def spans() -> "SpanRecorder | NullSpanRecorder":
    """The active span recorder (the null recorder when tracing is off).

    Cross-process tracing is switched independently of metrics: a
    serving process can trace without a metrics session and vice
    versa.  Instrumented code follows the registry discipline — fetch
    once per unit of work, then one attribute call per span.
    """
    return _spans


def is_enabled() -> bool:
    """Whether a live observability session is active."""
    return _registry.enabled


def is_tracing() -> bool:
    """Whether a live cross-process span recorder is attached."""
    return _spans.enabled


def enable() -> ObsSession:
    """Switch observability on; idempotent (returns the live session)."""
    global _registry, _tracer, _session
    if _session is None:
        _registry = MetricsRegistry()
        _tracer = Tracer()
        _session = ObsSession(_registry, _tracer)
    return _session


def disable() -> None:
    """Switch observability off and drop the live session."""
    global _registry, _tracer, _session
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER
    _session = None


@contextlib.contextmanager
def observed():
    """``with observed() as session:`` — enable for a scope, then restore.

    Restores whatever was active before (including a previous live
    session), so tests and nested tools cannot leak global state.
    Pool workers use exactly this to run each job under a fresh local
    registry whose state is then shipped back to the parent.
    """
    global _registry, _tracer, _session
    previous = (_registry, _tracer, _session)
    _registry = MetricsRegistry()
    _tracer = Tracer()
    _session = ObsSession(_registry, _tracer)
    try:
        yield _session
    finally:
        _registry, _tracer, _session = previous


@contextlib.contextmanager
def ledgered(path, run_id: "str | None" = None):
    """``with ledgered(path) as led:`` — attach a run ledger, then restore.

    Instrumented code reaches the active ledger through :func:`ledger`
    (one no-op method call when none is attached), mirroring the
    metrics switch.  The ledger is closed on exit and the previous one
    (usually the null ledger) restored.
    """
    global _ledger
    previous = _ledger
    _ledger = RunLedger(path, run_id=run_id)
    try:
        yield _ledger
    finally:
        _ledger.close()
        _ledger = previous


def enable_tracing(
    directory: "str | Path",
    process: str,
    sample: float = 1.0,
    seed: int = 0,
) -> SpanRecorder:
    """Attach a live span recorder writing ``spans-<process>.jsonl``.

    Idempotent per (directory, process): calling again with the same
    target returns the live recorder.  Long-running servers call this
    once at startup and :func:`disable_tracing` on shutdown; scoped
    code prefers :func:`traced`.
    """
    global _spans
    directory = Path(directory)
    path = directory / f"{SPAN_FILE_PREFIX}{process}.jsonl"
    if isinstance(_spans, SpanRecorder) and _spans.sink.path == path:
        return _spans
    sink = SpanSink(path, process)
    _spans = SpanRecorder(sink, process, TraceSampler(sample, seed))
    return _spans


def disable_tracing() -> None:
    """Detach and close the span recorder (idempotent)."""
    global _spans
    _spans.close()
    _spans = NULL_SPAN_RECORDER


@contextlib.contextmanager
def traced(
    directory: "str | Path",
    process: str,
    sample: float = 1.0,
    seed: int = 0,
):
    """``with traced(dir, "client") as rec:`` — trace a scope, then restore.

    Mirrors :func:`ledgered`: the previous recorder (usually the null
    one) is restored on exit and the sink is closed, so tests and
    nested tools cannot leak the global.
    """
    global _spans
    previous = _spans
    path = Path(directory) / f"{SPAN_FILE_PREFIX}{process}.jsonl"
    recorder = SpanRecorder(
        SpanSink(path, process), process, TraceSampler(sample, seed)
    )
    _spans = recorder
    try:
        yield recorder
    finally:
        recorder.close()
        _spans = previous


@contextlib.contextmanager
def unledgered():
    """Silence the run ledger for a scope (the previous one is restored).

    Engine job cells run under this in *both* the serial inline path
    and pool workers: the parent is the ledger's single writer, so a
    ``--jobs 4`` run and a serial run of the same sweep produce the
    same event stream.  The silenced ledger is not closed — it still
    belongs to whoever attached it.
    """
    global _ledger
    previous = _ledger
    _ledger = NULL_LEDGER
    try:
        yield
    finally:
        _ledger = previous

"""The process-wide observability switch.

One module-level pair ``(registry, tracer)`` backs every instrumented
call site in the library.  By default both are the null twins, so all
instrumentation compiles down to no-op method calls; :func:`enable`
swaps in live objects and returns the :class:`ObsSession` handle used
to snapshot, export, or render what was collected.

Instrumented code fetches the live objects with :func:`metrics` and
:func:`tracer` *at the start of a unit of work* (one solve, one sim
run) and keeps local references — one global lookup per unit, one
attribute call per sample.
"""

from __future__ import annotations

import contextlib
from pathlib import Path

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, NullRegistry
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ObsSession",
    "metrics",
    "tracer",
    "is_enabled",
    "enable",
    "disable",
    "observed",
]

_registry: "MetricsRegistry | NullRegistry" = NULL_REGISTRY
_tracer: "Tracer | NullTracer" = NULL_TRACER
_session: "ObsSession | None" = None


class ObsSession:
    """A live observability window: the registry/tracer pair plus exits."""

    def __init__(self, registry: MetricsRegistry, trace: Tracer) -> None:
        self.registry = registry
        self.tracer = trace

    def snapshot(self) -> dict:
        """Current metric values (see :meth:`MetricsRegistry.snapshot`)."""
        return self.registry.snapshot()

    def spans(self) -> list:
        """Finished root spans collected so far."""
        return list(self.tracer.roots)

    def write_jsonl(self, path: "str | Path") -> Path:
        """Dump metrics + spans as JSON lines (see :mod:`repro.obs.sinks`)."""
        from repro.obs.sinks import write_jsonl

        return write_jsonl(path, self.registry, self.tracer)

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        from repro.obs.sinks import to_prometheus_text

        return to_prometheus_text(self.registry)

    def render_dashboard(self, width: int = 64) -> str:
        """ASCII dashboard of the current state."""
        from repro.obs.dashboard import render_dashboard
        from repro.obs.sinks import collect

        return render_dashboard(collect(self.registry, self.tracer), width=width)


def metrics() -> "MetricsRegistry | NullRegistry":
    """The active metrics registry (the null registry when disabled)."""
    return _registry


def tracer() -> "Tracer | NullTracer":
    """The active tracer (the null tracer when disabled)."""
    return _tracer


def is_enabled() -> bool:
    """Whether a live observability session is active."""
    return _registry.enabled


def enable() -> ObsSession:
    """Switch observability on; idempotent (returns the live session)."""
    global _registry, _tracer, _session
    if _session is None:
        _registry = MetricsRegistry()
        _tracer = Tracer()
        _session = ObsSession(_registry, _tracer)
    return _session


def disable() -> None:
    """Switch observability off and drop the live session."""
    global _registry, _tracer, _session
    _registry = NULL_REGISTRY
    _tracer = NULL_TRACER
    _session = None


@contextlib.contextmanager
def observed():
    """``with observed() as session:`` — enable for a scope, then restore.

    Restores whatever was active before (including a previous live
    session), so tests and nested tools cannot leak global state.
    """
    global _registry, _tracer, _session
    previous = (_registry, _tracer, _session)
    _registry = MetricsRegistry()
    _tracer = Tracer()
    _session = ObsSession(_registry, _tracer)
    try:
        yield _session
    finally:
        _registry, _tracer, _session = previous

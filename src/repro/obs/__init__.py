"""repro.obs — unified observability: metrics, tracing, sinks, dashboard.

The library is instrumented everywhere (solvers, RL trainers, the DES,
the cluster controller) but collection is **off by default**: every
call site talks to null objects whose methods do nothing, so the
steady-state cost is one no-op attribute call per sample.

Typical use::

    from repro import obs

    with obs.observed() as session:
        result = repro.get_solver("tacc", seed=1).solve(problem)
        report = repro.simulate_assignment(result.assignment, duration_s=10.0)
        print(session.render_dashboard())
        session.write_jsonl("run.jsonl")

or process-wide from the CLI: ``python -m repro solve --obs run.jsonl
...`` then ``python -m repro obs run.jsonl``.

Metric names live in :mod:`repro.obs.names`; the catalog with
semantics is ``docs/observability.md``.
"""

from repro.obs import names
from repro.obs.dashboard import render_dashboard, render_span_tree
from repro.obs.ledger import (
    NullLedger,
    RunLedger,
    new_run_id,
    read_ledger,
    render_ledger_summary,
    summarize_ledger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    default_buckets,
    snapshot_delta,
)
from repro.obs.profile import merge_profiles, profile_call, render_profile
from repro.obs.runtime import (
    ObsSession,
    disable,
    disable_tracing,
    enable,
    enable_tracing,
    is_enabled,
    is_tracing,
    ledger,
    ledgered,
    metrics,
    observed,
    spans,
    traced,
    tracer,
    unledgered,
)
from repro.obs.sinks import collect, load_jsonl, to_prometheus_text, write_jsonl
from repro.obs.slo import BurnRateMonitor, SLOConfig, summarize_slo
from repro.obs.trace import (
    NullSpanRecorder,
    SpanRecord,
    SpanRecorder,
    SpanSink,
    TraceContext,
    TraceSampler,
    build_trace,
    context_from_wire,
    critical_path,
    load_span_file,
    load_trace_dir,
    new_trace_id,
    render_critical_path,
    render_waterfall,
    trace_ids,
)
from repro.obs.tracing import NullTracer, Span, Tracer

__all__ = [
    "names",
    # instruments & registries
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "default_buckets",
    "snapshot_delta",
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    # distributed tracing (cross-process spans)
    "TraceContext",
    "TraceSampler",
    "SpanRecord",
    "SpanRecorder",
    "NullSpanRecorder",
    "SpanSink",
    "new_trace_id",
    "context_from_wire",
    "build_trace",
    "load_span_file",
    "load_trace_dir",
    "trace_ids",
    "critical_path",
    "render_critical_path",
    "render_waterfall",
    # SLO burn rates
    "SLOConfig",
    "BurnRateMonitor",
    "summarize_slo",
    # runtime switch
    "ObsSession",
    "metrics",
    "tracer",
    "ledger",
    "is_enabled",
    "enable",
    "disable",
    "observed",
    "ledgered",
    "unledgered",
    "spans",
    "is_tracing",
    "enable_tracing",
    "disable_tracing",
    "traced",
    # run ledger
    "RunLedger",
    "NullLedger",
    "new_run_id",
    "read_ledger",
    "summarize_ledger",
    "render_ledger_summary",
    # profiling
    "profile_call",
    "merge_profiles",
    "render_profile",
    # sinks & rendering
    "collect",
    "write_jsonl",
    "load_jsonl",
    "to_prometheus_text",
    "render_dashboard",
    "render_span_tree",
]

"""Export sinks: in-memory collection, JSON-lines files, Prometheus text.

The JSON-lines layout is one self-describing record per line::

    {"type": "meta", "format": "repro-obs", "version": 1}
    {"type": "counter", "name": "solver/solves", "labels": {...}, "value": 3}
    {"type": "gauge", ...}
    {"type": "histogram", "name": "sim/queue_wait_s", ..., "summary": {...}}
    {"type": "timer", ...}
    {"type": "span", "tree": {...nested span dicts...}}

which streams, appends, and greps well.  :func:`load_jsonl` folds a
file back into the same collected-dict shape :func:`collect` produces,
so the dashboard renders live sessions and files identically.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.obs.metrics import instrument_key

__all__ = [
    "collect",
    "write_jsonl",
    "load_jsonl",
    "to_prometheus_text",
    "prometheus_from_collected",
    "prometheus_name",
    "escape_label_value",
]

JSONL_FORMAT = "repro-obs"
JSONL_VERSION = 1


def _json_safe(value):
    """JSON has no Infinity/NaN literals; stringify them."""
    if isinstance(value, float) and not math.isfinite(value):
        return "Infinity" if value > 0 else ("-Infinity" if value < 0 else "NaN")
    return value


def _summary_safe(summary: dict) -> dict:
    out = {}
    for key, value in summary.items():
        if key == "buckets":
            out[key] = [[_json_safe(b), c] for b, c in value]
        else:
            out[key] = _json_safe(value)
    return out


def _json_load(value):
    """Inverse of :func:`_json_safe`: revive stringified non-finites."""
    if value == "Infinity":
        return math.inf
    if value == "-Infinity":
        return -math.inf
    if value == "NaN":
        return math.nan
    return value


def _summary_load(summary: dict) -> dict:
    out = {}
    for key, value in summary.items():
        if key == "buckets":
            out[key] = [[_json_load(b), c] for b, c in value]
        else:
            out[key] = _json_load(value)
    return out


def collect(registry, tracer=None) -> dict:
    """Fold a live registry (+ optional tracer) into one plain dict."""
    data = {"metrics": registry.snapshot(), "spans": []}
    if tracer is not None:
        data["spans"] = [span.as_dict() for span in tracer.roots]
    return data


def write_jsonl(path: "str | Path", registry, tracer=None) -> Path:
    """Write the current state as JSON lines; returns the path."""
    path = Path(path)
    lines = [
        json.dumps({"type": "meta", "format": JSONL_FORMAT, "version": JSONL_VERSION})
    ]
    for (kind, name, labels), instrument in sorted(
        registry.instruments().items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
    ):
        record: dict = {"type": kind, "name": name, "labels": dict(labels)}
        if kind in ("counter", "gauge"):
            record["value"] = _json_safe(instrument.value)
        else:
            record["summary"] = _summary_safe(instrument.summary())
        lines.append(json.dumps(record))
    if tracer is not None:
        for span in tracer.roots:
            lines.append(json.dumps({"type": "span", "tree": span.as_dict()}))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_jsonl(path: "str | Path") -> dict:
    """Read a JSON-lines export back into the :func:`collect` shape."""
    metrics: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}
    spans: list[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            continue
        if kind == "span":
            spans.append(record["tree"])
            continue
        key = instrument_key(record["name"], record.get("labels"))
        if kind == "counter":
            metrics["counters"][key] = _json_load(record["value"])
        elif kind == "gauge":
            metrics["gauges"][key] = _json_load(record["value"])
        elif kind == "histogram":
            metrics["histograms"][key] = _summary_load(record["summary"])
        elif kind == "timer":
            metrics["timers"][key] = _summary_load(record["summary"])
    return {"metrics": metrics, "spans": spans}


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------

def prometheus_name(name: str, suffix: str = "") -> str:
    """``layer/metric`` -> ``repro_layer_metric`` (sanitized)."""
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}{suffix}"


def escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(merged[key])}"' for key in sorted(merged)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def to_prometheus_text(registry) -> str:
    """Render every instrument in Prometheus text format.

    Counters get a ``_total`` suffix; histograms and timers emit the
    standard ``_bucket``/``_sum``/``_count`` triple with cumulative
    ``le`` buckets ending at ``+Inf``.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(pname: str, kind: str) -> None:
        """Return emit type."""
        if pname not in typed:
            lines.append(f"# TYPE {pname} {kind}")
            typed.add(pname)

    for (kind, name, labels), instrument in sorted(
        registry.instruments().items(), key=lambda item: (item[0][0], item[0][1], item[0][2])
    ):
        label_map = dict(labels)
        if kind == "counter":
            pname = prometheus_name(name, "_total")
            emit_type(pname, "counter")
            lines.append(f"{pname}{_label_text(label_map)} {_format_value(instrument.value)}")
        elif kind == "gauge":
            pname = prometheus_name(name)
            emit_type(pname, "gauge")
            lines.append(f"{pname}{_label_text(label_map)} {_format_value(instrument.value)}")
        else:  # histogram / timer
            pname = prometheus_name(name)
            emit_type(pname, "histogram")
            for bound, cumulative in instrument.cumulative_buckets():
                le = "+Inf" if bound == math.inf else _format_value(bound)
                lines.append(
                    f"{pname}_bucket{_label_text(label_map, {'le': le})} {cumulative}"
                )
            lines.append(f"{pname}_sum{_label_text(label_map)} {_format_value(instrument.sum)}")
            lines.append(f"{pname}_count{_label_text(label_map)} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _split_key(key: str) -> tuple[str, dict]:
    """Inverse of :func:`instrument_key` (labels cannot contain ``,={}``)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for pair in rest.rstrip("}").split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


def prometheus_from_collected(data: dict) -> str:
    """Prometheus text from a collected/loaded dict (no live registry).

    Summaries carry exactly what the exposition format needs: counter
    and gauge values verbatim, histogram/timer cumulative buckets plus
    ``sum``/``count``.
    """
    metrics = data.get("metrics", {})
    lines: list[str] = []
    typed: set[str] = set()

    def emit_type(pname: str, kind: str) -> None:
        """Return emit type."""
        if pname not in typed:
            lines.append(f"# TYPE {pname} {kind}")
            typed.add(pname)

    for key, value in metrics.get("counters", {}).items():
        name, labels = _split_key(key)
        pname = prometheus_name(name, "_total")
        emit_type(pname, "counter")
        lines.append(f"{pname}{_label_text(labels)} {_format_value(value)}")
    for key, value in metrics.get("gauges", {}).items():
        name, labels = _split_key(key)
        pname = prometheus_name(name)
        emit_type(pname, "gauge")
        lines.append(f"{pname}{_label_text(labels)} {_format_value(value)}")
    for group in ("histograms", "timers"):
        for key, summary in metrics.get(group, {}).items():
            name, labels = _split_key(key)
            pname = prometheus_name(name)
            emit_type(pname, "histogram")
            for bound, cumulative in summary.get("buckets", []):
                le = "+Inf" if bound == math.inf else _format_value(bound)
                lines.append(
                    f"{pname}_bucket{_label_text(labels, {'le': le})} {cumulative}"
                )
            lines.append(
                f"{pname}_sum{_label_text(labels)} {_format_value(summary.get('sum', 0.0))}"
            )
            lines.append(f"{pname}_count{_label_text(labels)} {summary.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")

"""ASCII dashboard: one readable page from a collected obs state.

Takes the plain-dict shape produced by :func:`repro.obs.sinks.collect`
or :func:`repro.obs.sinks.load_jsonl` and renders sections for span
trees, counters, gauges, and distribution instruments, reusing the
repo's table/chart helpers so the output matches the experiment
tooling.
"""

from __future__ import annotations

import math

from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table

__all__ = ["render_dashboard", "render_span_tree"]


def _fmt_seconds(seconds: float) -> str:
    if not math.isfinite(seconds):
        return "n/a"
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def render_span_tree(trees: list[dict]) -> str:
    """Indented listing of span trees with durations and status."""
    rows: list[list] = []

    def walk(node: dict, depth: int) -> None:
        """Return walk."""
        label = "  " * depth + node.get("name", "?")
        status = node.get("status", "ok")
        rows.append([label, _fmt_seconds(node.get("duration_s", 0.0)), status])
        for child in node.get("children", []):
            walk(child, depth + 1)

    for tree in trees:
        walk(tree, 0)
    return format_table(["span", "duration", "status"], rows)


def _distribution_rows(group: dict) -> list[list]:
    rows = []
    for key, summary in group.items():
        rows.append(
            [
                key,
                int(summary.get("count", 0)),
                summary.get("mean", math.nan),
                summary.get("p50", math.nan),
                summary.get("p90", math.nan),
                summary.get("p99", math.nan),
                summary.get("max", math.nan),
            ]
        )
    return rows


def _bucket_chart(key: str, summary: dict, width: int) -> "str | None":
    """Per-bucket (non-cumulative) count chart for one histogram."""
    buckets = summary.get("buckets") or []
    points: list[tuple[float, float]] = []
    previous = 0
    for bound, cumulative in buckets:
        count = cumulative - previous
        previous = cumulative
        if count > 0 and math.isfinite(bound):
            points.append((float(bound), float(count)))
    if len(points) < 2:
        return None
    return line_chart(
        {key: points},
        width=width,
        height=10,
        title=f"distribution: {key}",
        x_label="bucket upper bound",
        y_label="count",
    )


def _render_engine_section(metrics: dict) -> "str | None":
    """Sweep-engine summary: jobs, cache hit ratio, queue wait, utilization."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    timers = metrics.get("timers", {})
    touched = any(
        key.startswith("engine/")
        for group in (counters, gauges, timers)
        for key in group
    )
    if not touched:
        return None
    rows: list[list] = []
    for label, key in (
        ("jobs scheduled", "engine/jobs_scheduled"),
        ("jobs completed", "engine/jobs_completed"),
        ("jobs failed", "engine/jobs_failed"),
        ("cache hits", "engine/cache_hits"),
        ("cache misses", "engine/cache_misses"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    hits = counters.get("engine/cache_hits", 0)
    misses = counters.get("engine/cache_misses", 0)
    if hits + misses > 0:
        rows.append(["cache hit ratio", f"{hits / (hits + misses):.0%}"])
    wait = timers.get("engine/queue_wait_s")
    if wait and wait.get("count", 0) > 0:
        rows.append(["queue wait p50", _fmt_seconds(wait.get("p50", math.nan))])
        rows.append(["queue wait max", _fmt_seconds(wait.get("max", math.nan))])
    runtime = timers.get("engine/job_runtime_s")
    if runtime and runtime.get("count", 0) > 0:
        rows.append(["job runtime p50", _fmt_seconds(runtime.get("p50", math.nan))])
        rows.append(["job runtime max", _fmt_seconds(runtime.get("max", math.nan))])
    if "engine/worker_utilization" in gauges:
        rows.append(
            ["worker utilization", f"{float(gauges['engine/worker_utilization']):.0%}"]
        )
    if not rows:
        return None
    return format_table(["engine", "value"], rows)


def _sum_metric(counters: dict, name: str) -> float:
    """Total across the unlabeled series and every labeled variant."""
    return sum(
        value
        for key, value in counters.items()
        if key == name or key.startswith(name + "{")
    )


def _label_breakdown(counters: dict, name: str, label: str) -> str:
    """Compact ``value=count`` listing for one labeled counter family."""
    prefix = f"{name}{{{label}="
    parts = [
        f"{key[len(prefix):-1]}={int(value)}"
        for key, value in sorted(counters.items())
        if key.startswith(prefix)
    ]
    return " ".join(parts)


def _render_serve_section(metrics: dict) -> "str | None":
    """Serving summary: admission, batching, latency, re-optimization."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    timers = metrics.get("timers", {})
    histograms = metrics.get("histograms", {})
    touched = any(
        key.startswith("serve/")
        for group in (counters, gauges, timers, histograms)
        for key in group
    )
    if not touched:
        return None
    rows: list[list] = []
    requests = _sum_metric(counters, "serve/requests")
    admitted = _sum_metric(counters, "serve/admitted")
    rejected = _sum_metric(counters, "serve/rejected")
    if requests:
        rows.append(["requests", int(requests)])
    if admitted or rejected:
        rows.append(["admitted", int(admitted)])
        rows.append(["rejected", int(rejected)])
        rows.append(["rejection ratio", f"{rejected / (admitted + rejected):.1%}"])
    for label, key in (
        ("assigns", "serve/assigned"),
        ("releases", "serve/released"),
        ("errors", "serve/errors"),
        ("deadline exceeded", "serve/deadline_exceeded"),
        ("client retries", "serve/client_retries"),
        ("retry budget exhausted", "serve/retry_budget_exhausted"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    flushes = _label_breakdown(counters, "serve/batch_flushes", "reason")
    if flushes:
        rows.append(["batch flushes", flushes])
    batch = histograms.get("serve/batch_size")
    if batch and batch.get("count", 0) > 0:
        rows.append(["batch size p50", f"{batch.get('p50', math.nan):.3g}"])
        rows.append(["batch size max", f"{batch.get('max', math.nan):.3g}"])
    latency = timers.get("serve/assign_latency_s")
    if latency and latency.get("count", 0) > 0:
        rows.append(["assign latency p50", _fmt_seconds(latency.get("p50", math.nan))])
        rows.append(["assign latency p99", _fmt_seconds(latency.get("p99", math.nan))])
    if "serve/queue_depth" in gauges:
        rows.append(["queue depth", int(gauges["serve/queue_depth"])])
    if "serve/active_devices" in gauges:
        rows.append(["active devices", int(gauges["serve/active_devices"])])
    reopt = _label_breakdown(counters, "serve/reopt_runs", "outcome")
    if reopt:
        rows.append(["reopt runs", reopt])
    if "serve/reopt_gain_ms" in gauges:
        rows.append(["last reopt gain", f"{float(gauges['serve/reopt_gain_ms']):.3f} ms"])
    if not rows:
        return None
    return format_table(["serve", "value"], rows)


def _render_shard_section(metrics: dict) -> "str | None":
    """Sharded-tier summary: routing, failover, and migration traffic."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    timers = metrics.get("timers", {})
    touched = any(
        key.startswith("shard/")
        for group in (counters, gauges, timers)
        for key in group
    )
    if not touched:
        return None
    rows: list[list] = []
    routed = _sum_metric(counters, "shard/routed")
    if routed:
        rows.append(["routed", int(routed)])
    for label, key in (
        ("spillovers", "shard/spillovers"),
        ("unroutable", "shard/unroutable"),
        ("migrated devices", "shard/migrated_devices"),
        ("migration lost", "shard/migration_lost_devices"),
        ("deadline timeouts", "shard/deadline_timeouts"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    hedges = _sum_metric(counters, "shard/hedged_requests")
    if hedges:
        wins = _sum_metric(counters, "shard/hedge_wins")
        rows.append(["hedges (wins)", f"{int(hedges)} ({int(wins)})"])
    cleanups = _sum_metric(counters, "shard/hedge_cleanups")
    if cleanups:
        rows.append(["hedge cleanups", int(cleanups)])
    ghosts = _sum_metric(counters, "shard/ghost_releases")
    if ghosts:
        rows.append(["ghost releases", int(ghosts)])
    ejections = _sum_metric(counters, "shard/latency_ejections")
    if ejections:
        rows.append(["latency ejections", int(ejections)])
        by_shard = _label_breakdown(counters, "shard/latency_ejections",
                                    "shard")
        if by_shard:
            rows.append(["ejections by shard", by_shard])
    trips = _sum_metric(counters, "shard/breaker_trips")
    if trips:
        rows.append(["breaker trips", int(trips)])
        by_shard = _label_breakdown(counters, "shard/breaker_trips", "shard")
        if by_shard:
            rows.append(["trips by shard", by_shard])
    rounds = _label_breakdown(counters, "shard/migration_rounds", "outcome")
    if rounds:
        rows.append(["migration rounds", rounds])
    latency = timers.get("shard/route_latency_s")
    if latency and latency.get("count", 0) > 0:
        rows.append(["route latency p50", _fmt_seconds(latency.get("p50", math.nan))])
        rows.append(["route latency p99", _fmt_seconds(latency.get("p99", math.nan))])
    if "shard/active_devices" in gauges:
        rows.append(["active devices", int(gauges["shard/active_devices"])])
    if not rows:
        return None
    return format_table(["shard", "value"], rows)


def _render_netem_section(metrics: dict) -> "str | None":
    """Network-emulation summary: what chaos actually hit the wire."""
    counters = metrics.get("counters", {})
    timers = metrics.get("timers", {})
    rows: list[list] = []
    for label, key in (
        ("dropped", "netem/dropped_messages"),
        ("partition drops", "netem/partition_drops"),
        ("delayed", "netem/delayed_messages"),
        ("duplicated", "netem/duplicated_messages"),
        ("reordered", "netem/reordered_messages"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    injected = timers.get("netem/injected_delay_s")
    if injected and injected.get("count", 0) > 0:
        rows.append(["injected delay p50",
                     _fmt_seconds(injected.get("p50", math.nan))])
        rows.append(["injected delay p99",
                     _fmt_seconds(injected.get("p99", math.nan))])
    if not rows:
        return None
    return format_table(["netem", "value"], rows)


def _render_contention_section(metrics: dict) -> "str | None":
    """Contention-model summary: evaluations and link pressure."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    rows: list[list] = []
    for label, key in (
        ("full evaluations", "contention/evaluations"),
        ("incremental deltas", "contention/delta_evals"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    if "contention/max_utilization" in gauges:
        rows.append(
            ["max link utilization",
             f"{float(gauges['contention/max_utilization']):.3f}"]
        )
    if "contention/saturated_links" in gauges:
        rows.append(
            ["saturated links", int(gauges["contention/saturated_links"])]
        )
    if not rows:
        return None
    return format_table(["contention", "value"], rows)


def _render_wal_section(metrics: dict) -> "str | None":
    """Durability summary: journal traffic and crash recoveries."""
    counters = metrics.get("counters", {})
    timers = metrics.get("timers", {})
    rows: list[list] = []
    for label, key in (
        ("records appended", "wal/records_appended"),
        ("snapshots written", "wal/snapshots_written"),
        ("records replayed", "wal/records_replayed"),
        ("recoveries", "wal/recoveries"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    recovery = timers.get("wal/recovery_time_s")
    if recovery and recovery.get("count", 0) > 0:
        rows.append(["recovery time p50",
                     _fmt_seconds(recovery.get("p50", math.nan))])
        rows.append(["recovery time max",
                     _fmt_seconds(recovery.get("max", math.nan))])
    if not rows:
        return None
    return format_table(["wal", "value"], rows)


def _render_trace_section(metrics: dict) -> "str | None":
    """Tracing summary: sampled traces and exported spans."""
    counters = metrics.get("counters", {})
    rows: list[list] = []
    for label, key in (
        ("traces sampled", "trace/traces_sampled"),
        ("spans exported", "trace/spans_exported"),
    ):
        if key in counters:
            rows.append([label, int(counters[key])])
    if not rows:
        return None
    return format_table(["trace", "value"], rows)


def _render_slo_section(metrics: dict) -> "str | None":
    """Error-budget summary: multi-window burn rates and pages."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    rows: list[list] = []
    for label, key in (
        ("fast burn rate", "slo/fast_burn_rate"),
        ("slow burn rate", "slo/slow_burn_rate"),
    ):
        if key in gauges:
            rows.append([label, f"{float(gauges[key]):.2f}x"])
    if "slo/pages" in counters:
        rows.append(["pages fired", int(counters["slo/pages"])])
    if not rows:
        return None
    return format_table(["slo", "value"], rows)


def render_dashboard(data: dict, width: int = 64) -> str:
    """Render the full dashboard; sections with no data are omitted."""
    metrics = data.get("metrics", {})
    spans = data.get("spans", [])
    sections: list[str] = ["repro observability dashboard", "=" * 29]

    if spans:
        sections.append("")
        sections.append("## spans")
        sections.append(render_span_tree(spans))

    engine_section = _render_engine_section(metrics)
    if engine_section:
        sections.append("")
        sections.append("## engine")
        sections.append(engine_section)

    serve_section = _render_serve_section(metrics)
    if serve_section:
        sections.append("")
        sections.append("## serve")
        sections.append(serve_section)

    shard_section = _render_shard_section(metrics)
    if shard_section:
        sections.append("")
        sections.append("## shard")
        sections.append(shard_section)

    netem_section = _render_netem_section(metrics)
    if netem_section:
        sections.append("")
        sections.append("## netem")
        sections.append(netem_section)

    contention_section = _render_contention_section(metrics)
    if contention_section:
        sections.append("")
        sections.append("## contention")
        sections.append(contention_section)

    wal_section = _render_wal_section(metrics)
    if wal_section:
        sections.append("")
        sections.append("## wal")
        sections.append(wal_section)

    trace_section = _render_trace_section(metrics)
    if trace_section:
        sections.append("")
        sections.append("## trace")
        sections.append(trace_section)

    slo_section = _render_slo_section(metrics)
    if slo_section:
        sections.append("")
        sections.append("## slo")
        sections.append(slo_section)

    counters = metrics.get("counters", {})
    if counters:
        sections.append("")
        sections.append("## counters")
        sections.append(
            format_table(
                ["metric", "total"],
                [[key, value] for key, value in counters.items()],
            )
        )

    gauges = metrics.get("gauges", {})
    if gauges:
        sections.append("")
        sections.append("## gauges")
        sections.append(
            format_table(
                ["metric", "value"],
                [[key, value] for key, value in gauges.items()],
            )
        )

    distributions = {**metrics.get("histograms", {}), **metrics.get("timers", {})}
    if distributions:
        sections.append("")
        sections.append("## distributions (histograms & timers)")
        sections.append(
            format_table(
                ["metric", "count", "mean", "p50", "p90", "p99", "max"],
                _distribution_rows(distributions),
                float_format=".4g",
            )
        )
        # chart the busiest distribution so the page has one picture
        busiest = max(
            distributions.items(), key=lambda item: item[1].get("count", 0), default=None
        )
        if busiest is not None and busiest[1].get("count", 0) > 0:
            chart = _bucket_chart(busiest[0], busiest[1], width)
            if chart:
                sections.append("")
                sections.append(chart)

    if len(sections) == 2:
        sections.append("")
        sections.append("(no observability data collected)")
    return "\n".join(sections)

"""Admission control and backpressure for the assignment service.

The service's request queue is bounded; an unbounded queue under
overload just converts every request into a timeout.  The controller
makes the cheap, deterministic decision *before* a request is queued:

* queue below the **watermark** — everyone gets in;
* between watermark and hard capacity — shed by priority class,
  lowest first, exactly the degradation order of
  :func:`repro.cluster.degradation.solve_degraded` and the fault
  layer's load shedding (``low`` sheds first, ``high`` last);
* at hard capacity — reject everything, whatever the class.

Between the watermark and the full queue the shed threshold moves
linearly: ``low`` is shed from the watermark up, ``normal`` from the
midpoint of the remaining band, ``high`` only when the queue is full.
A rejection carries a ``retry_after_ms`` hint derived from the drain
rate, so a well-behaved client backs off instead of hammering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.protocol import PRIORITY_CLASSES
from repro.utils.validation import check_positive, check_probability, require


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str = ""  # "", "watermark", "queue_full"
    retry_after_ms: float = 0.0


class AdmissionController:
    """Bounded-queue gatekeeper with priority-class shedding."""

    def __init__(
        self,
        max_queue: int = 1024,
        watermark: float = 0.5,
        drain_rate_hz: float = 1000.0,
    ) -> None:
        require(max_queue >= 1, f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.watermark = check_probability(watermark, "watermark")
        self._drain_rate_hz = check_positive(drain_rate_hz, "drain_rate_hz")
        #: lifetime decision counts, per (outcome, priority)
        self.admitted_total = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    def shed_threshold(self, priority: str) -> int:
        """Queue depth at which ``priority`` requests start being shed."""
        require(
            priority in PRIORITY_CLASSES,
            f"unknown priority {priority!r}; known: {PRIORITY_CLASSES}",
        )
        low_mark = int(self.watermark * self.max_queue)
        if priority == "low":
            return low_mark
        if priority == "normal":
            return low_mark + (self.max_queue - low_mark) // 2
        return self.max_queue  # "high": only the hard bound stops it

    def check(self, queue_depth: int, priority: str = "normal") -> AdmissionDecision:
        """Admit or reject a request given the current queue depth."""
        require(queue_depth >= 0, "queue_depth must be >= 0")
        if queue_depth >= self.max_queue:
            self.rejected_total += 1
            return AdmissionDecision(
                admitted=False,
                reason="queue_full",
                retry_after_ms=self._retry_after_ms(queue_depth),
            )
        if queue_depth >= self.shed_threshold(priority):
            self.rejected_total += 1
            return AdmissionDecision(
                admitted=False,
                reason="watermark",
                retry_after_ms=self._retry_after_ms(queue_depth),
            )
        self.admitted_total += 1
        return AdmissionDecision(admitted=True)

    # ------------------------------------------------------------------
    def observe_drain_rate(self, rate_hz: float) -> None:
        """Feed a fresh measured drain rate into the retry-after hint.

        The service updates this after every batch flush (EWMA on the
        caller's side keeps it smooth); the controller only needs a
        positive number to size the hint.
        """
        if rate_hz > 0:
            self._drain_rate_hz = float(rate_hz)

    def _retry_after_ms(self, queue_depth: int) -> float:
        """How long until the queue is plausibly below the watermark."""
        excess = queue_depth - int(self.watermark * self.max_queue) + 1
        return max(1.0, 1e3 * excess / self._drain_rate_hz)

"""repro.serve — the online assignment service.

The serving layer the paper's real-time framing implies: a
long-running asyncio component that accepts assignment requests over
line-delimited JSON (TCP or in-process), answers within a latency
budget via deadline-aware micro-batching, sheds load explicitly when
over its admission watermark, and improves the standing assignment
with a periodic off-path re-optimization loop.

Quickstart::

    import asyncio, repro
    from repro.serve import AssignmentService, InProcessClient, Request

    async def main():
        problem = repro.topology_instance(
            family="random_geometric", n_routers=40,
            n_devices=60, n_servers=6, tightness=0.7, seed=7,
        )
        service = AssignmentService(problem)
        await service.start()
        client = InProcessClient(service)
        print(await client.request(Request(op="assign", device=0)))
        await service.stop()

    asyncio.run(main())

See ``docs/serve.md`` for the protocol, the batching/admission knobs,
the re-optimization loop, and the ``repro serve`` / ``repro loadtest``
CLI front ends.
"""

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.batcher import FLUSH_REASONS, MicroBatcher
from repro.serve.loadtest import (
    PROFILES,
    LoadTestConfig,
    LoadTestReport,
    drive_trace,
    generate_trace,
    replay_serial,
    run_loadtest,
)
from repro.serve.protocol import (
    OPS,
    PRIORITY_CLASSES,
    STATUSES,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_line,
)
from repro.serve.server import InProcessClient, TCPClient, TCPServer, open_client
from repro.serve.service import AssignmentService, ServiceConfig
from repro.serve.state import ServiceState

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AssignmentService",
    "FLUSH_REASONS",
    "InProcessClient",
    "LoadTestConfig",
    "LoadTestReport",
    "MicroBatcher",
    "OPS",
    "PRIORITY_CLASSES",
    "PROFILES",
    "Request",
    "Response",
    "STATUSES",
    "ServiceConfig",
    "ServiceState",
    "TCPClient",
    "TCPServer",
    "decode_request",
    "decode_response",
    "drive_trace",
    "encode_line",
    "generate_trace",
    "open_client",
    "replay_serial",
    "run_loadtest",
]

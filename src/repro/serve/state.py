"""The live cluster state behind the assignment service.

:class:`ServiceState` owns one :class:`~repro.cluster.online.OnlineAssigner`
over one :class:`~repro.model.problem.AssignmentProblem` and exposes the
three operations the protocol speaks — ``assign``, ``release``,
``stats`` — plus the snapshot/swap pair the re-optimization loop uses
to improve the standing assignment off the hot path.

The state is deliberately synchronous and single-writer: the service's
batch consumer is the only mutator, so a batched run over a fixed
arrival trace is *by construction* the same sequence of
``OnlineAssigner`` calls a serial replay would make (the equivalence
the determinism tests pin down).

Durability is opt-in: hand the constructor a
:class:`~repro.wal.WriteAheadLog` and every mutation is journaled
(snapshots roll automatically); :meth:`recover` replays snapshot +
journal on restart, restoring the exact pre-crash state — the
byte-identical guarantee the WAL tests pin down.  Single-writer is
what makes replay exact: the journal *is* the mutation order.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.online import OnlineAssigner
from repro.errors import InfeasibleSolutionError, WalError
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.obs.trace import TraceContext
from repro.utils.validation import require


class ServiceState:
    """Current cluster occupancy: who is placed where, what is free."""

    def __init__(
        self,
        problem: AssignmentProblem,
        rule: str = "reserve",
        headroom: float = 0.85,
        wal=None,
    ) -> None:
        self.problem = problem
        self.assigner = OnlineAssigner(problem, rule=rule, headroom=headroom)
        self.epoch = 0  # mutation counter: bumped on every assign/release/swap
        self._assigns = 0
        self._releases = 0
        # total delay is maintained incrementally (O(1) per mutation) so
        # stats() stays flat as device counts grow; try_swap recomputes
        self._total_delay_s = 0.0
        self._wal = wal
        self._mute_wal = False  # True while replaying (or inside migrate)
        self.recovered_records = 0

    # ------------------------------------------------------------------
    # protocol operations (called only from the batch consumer)
    # ------------------------------------------------------------------
    def assign(self, device: int) -> int:
        """Place ``device``; returns the server.  Raises when impossible.

        A device that is already placed is a protocol error — the
        client must release it first (InfeasibleSolutionError carries
        the distinction in its message).
        """
        require(
            0 <= device < self.problem.n_devices,
            f"device {device} out of range [0, {self.problem.n_devices})",
        )
        if self.assigner.assignment.server_of(device) != UNASSIGNED:
            raise InfeasibleSolutionError(
                f"device {device} is already assigned; release it first"
            )
        server = self.assigner.assign(device)
        self._assigns += 1
        self.epoch += 1
        self._total_delay_s += float(self.problem.delay[device, server])
        self._log({"op": "assign", "device": int(device),
                   "server": int(server)})
        return server

    def release(self, device: int) -> int:
        """Return ``device``'s capacity; returns its old server."""
        server = self.assigner.release(device)
        self._releases += 1
        self.epoch += 1
        self._total_delay_s -= float(self.problem.delay[device, server])
        self._log({"op": "release", "device": int(device),
                   "server": int(server)})
        return server

    def stats(self) -> dict:
        """JSON-ready snapshot of occupancy and lifetime totals."""
        utilization = self.assigner.utilization
        return {
            "devices": int(self.problem.n_devices),
            "servers": int(self.problem.n_servers),
            "active_devices": self.active_count,
            "assigns_total": self._assigns,
            "releases_total": self._releases,
            "epoch": self.epoch,
            "mean_utilization": round(float(np.mean(utilization)), 6),
            "max_utilization": round(float(np.max(utilization)), 6),
            "total_delay_ms": round(self.total_delay_s * 1e3, 6),
        }

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def vector(self) -> np.ndarray:
        """The standing assignment vector (UNASSIGNED = not placed)."""
        return self.assigner.assignment.vector

    @property
    def active_count(self) -> int:
        """How many devices are currently placed."""
        return int(np.count_nonzero(self.vector != UNASSIGNED))

    @property
    def total_delay_s(self) -> float:
        """Total communication delay of the standing assignment.

        Maintained incrementally on assign/release and recomputed on
        swap; :meth:`recompute_total_delay_s` is the from-scratch
        reference the tests pin this against.
        """
        return self._total_delay_s

    @property
    def wal_seq(self) -> int:
        """Journal position: sequence of the last record written/loaded."""
        return 0 if self._wal is None else self._wal.seq

    @property
    def wal_appends_total(self) -> int:
        """Lifetime journal appends (0 without a WAL)."""
        return 0 if self._wal is None else self._wal.appends_total

    @property
    def wal_snapshots_total(self) -> int:
        """Lifetime snapshot rolls (0 without a WAL)."""
        return 0 if self._wal is None else self._wal.snapshots_total

    def recompute_total_delay_s(self) -> float:
        """Full fancy-index recomputation (the incremental oracle)."""
        vector = self.vector
        active = np.flatnonzero(vector != UNASSIGNED)
        if not active.size:
            return 0.0
        return float(np.sum(self.problem.delay[active, vector[active]]))

    # ------------------------------------------------------------------
    # re-optimization handshake
    # ------------------------------------------------------------------
    def snapshot(self) -> "tuple[int, np.ndarray]":
        """``(epoch, vector)`` for an off-path solver to improve on."""
        return self.epoch, self.vector

    def try_swap(self, epoch: int, vector: np.ndarray) -> bool:
        """Adopt ``vector`` iff the state is unchanged since ``epoch``.

        The re-optimizer solved a *copy* of the state; any assign or
        release that landed meanwhile invalidates its answer, so the
        swap is compare-and-set on the mutation counter: stale
        improvements are discarded (the loop simply tries again next
        period) rather than clobbering fresher occupancy.
        """
        if epoch != self.epoch:
            return False
        vector = np.asarray(vector, dtype=np.int64).reshape(-1)
        require(
            vector.shape[0] == self.problem.n_devices,
            f"swap vector must have length {self.problem.n_devices}",
        )
        self.assigner.reset_to(vector)
        self.epoch += 1
        # a swap rewrites the whole vector: re-anchor the incremental sum
        self._total_delay_s = self.recompute_total_delay_s()
        self._log({"op": "swap", "vector": [int(v) for v in vector]})
        return True

    # ------------------------------------------------------------------
    # cross-shard migration (see repro.shard.router)
    # ------------------------------------------------------------------
    def migrate_out(
        self, devices: "list[int]", epoch: int
    ) -> "list[int] | None":
        """Release a migration batch iff the state matches ``epoch``.

        The donor half of the cross-shard rebalance handshake: the
        router snapshots the shard's epoch through ``stats``, picks a
        bounded batch, and asks for it back conditioned on that epoch.
        Any assign/release that landed in between invalidates the
        router's picture, so the batch is rejected (``None``) and the
        router retries with fresher gossip — migrations yield to
        foreground traffic instead of clobbering it.  Devices already
        released by their owner are skipped, not errors.  Returns the
        devices actually freed.
        """
        snap_epoch, vector = self.snapshot()
        if epoch != snap_epoch:
            return None
        held = [
            d for d in devices
            if 0 <= int(d) < self.problem.n_devices
            and vector[int(d)] != UNASSIGNED
        ]
        if not held:
            return []
        new_vector = vector.copy()
        new_vector[held] = UNASSIGNED
        # one 'migrate' record stands in for the inner swap: replaying
        # the batch is cheaper than journaling the whole rewritten vector
        self._mute_wal = True
        try:
            swapped = self.try_swap(snap_epoch, new_vector)
        finally:
            self._mute_wal = False
        assert swapped  # single-writer: nothing can land in between
        self._releases += len(held)
        self._log({"op": "migrate", "devices": [int(d) for d in held]})
        return [int(d) for d in held]

    # ------------------------------------------------------------------
    # durability (see repro.wal)
    # ------------------------------------------------------------------
    def _log(self, record: dict) -> None:
        if self._wal is None or self._mute_wal:
            return
        self._wal.append(record)
        if self._wal.should_snapshot():
            self._wal.write_snapshot(self.snapshot_payload())

    def snapshot_payload(self) -> dict:
        """Everything :meth:`recover` needs to rebuild this state.

        ``total_delay_s`` ships verbatim (repr round-trip) rather than
        being recomputed on load: the incremental sum may differ from a
        fresh recomputation by float drift, and recovery must restore
        the state *byte-identical*, drift included.
        """
        return {
            "vector": [int(v) for v in self.vector],
            "epoch": int(self.epoch),
            "assigns": int(self._assigns),
            "releases": int(self._releases),
            "total_delay_s": float(self._total_delay_s),
        }

    def recover(self) -> int:
        """Replay the WAL (snapshot + journal) into this fresh state.

        Must run before any traffic.  Returns the number of journal
        records replayed; records and replays are also published as
        ``wal/*`` metrics.  Replay drives the same public mutators the
        live path uses, so counters, epoch and the incremental delay
        sum evolve exactly as they did pre-crash.
        """
        require(self._wal is not None, "recover() needs a WAL")
        require(self.epoch == 0 and self.active_count == 0,
                "recover() must run on a fresh state")
        registry = obs_runtime.metrics()
        recorder = obs_runtime.spans()
        started = time.perf_counter()
        # replay has no inbound request, so it roots its own trace,
        # named after the WAL directory to be findable in the sink
        context = TraceContext(
            trace_id=f"wal:{self._wal.directory.name}", sampled=True
        )
        with recorder.start_span(
            obs_names.XSPAN_WAL_REPLAY, context
        ) as span:
            snapshot, records = self._wal.load()
            span.event("loaded", snapshot=snapshot is not None,
                       journal_records=len(records))
            self._mute_wal = True
            try:
                if snapshot is not None:
                    self._restore_snapshot(snapshot)
                for record in records:
                    self._apply_wal_record(record)
            finally:
                self._mute_wal = False
            span.annotate(replayed=len(records), seq=self._wal.seq)
        self.recovered_records = len(records)
        if snapshot is not None or records:
            registry.counter(obs_names.WAL_RECOVERIES).inc()
            registry.counter(obs_names.WAL_REPLAYED).inc(len(records))
            registry.timer(obs_names.WAL_RECOVERY_TIME).observe(
                time.perf_counter() - started
            )
        return len(records)

    def _restore_snapshot(self, snapshot: dict) -> None:
        try:
            vector = np.asarray(snapshot["vector"], dtype=np.int64)
            epoch = int(snapshot["epoch"])
            assigns = int(snapshot["assigns"])
            releases = int(snapshot["releases"])
            total_delay_s = float(snapshot["total_delay_s"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"malformed WAL snapshot payload: {exc}") from exc
        if vector.shape[0] != self.problem.n_devices:
            raise WalError(
                f"WAL snapshot is for {vector.shape[0]} devices, "
                f"this problem has {self.problem.n_devices}"
            )
        self.assigner.reset_to(vector)
        self.epoch = epoch
        self._assigns = assigns
        self._releases = releases
        self._total_delay_s = total_delay_s

    def _apply_wal_record(self, record: dict) -> None:
        op = record.get("op")
        try:
            if op == "assign":
                server = self.assign(int(record["device"]))
                if server != int(record["server"]):
                    raise WalError(
                        f"WAL replay diverged: assign({record['device']}) "
                        f"landed on {server}, journal says {record['server']}"
                    )
            elif op == "release":
                self.release(int(record["device"]))
            elif op == "migrate":
                held = [int(d) for d in record["devices"]]
                vector = self.vector.copy()
                vector[held] = UNASSIGNED
                self.assigner.reset_to(vector)
                self.epoch += 1
                self._total_delay_s = self.recompute_total_delay_s()
                self._releases += len(held)
            elif op == "swap":
                vector = np.asarray(record["vector"], dtype=np.int64)
                self.assigner.reset_to(vector)
                self.epoch += 1
                self._total_delay_s = self.recompute_total_delay_s()
            else:
                raise WalError(f"unknown WAL record op {op!r}")
        except WalError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise WalError(f"malformed WAL record {record!r}: {exc}") from exc
        except InfeasibleSolutionError as exc:
            raise WalError(
                f"WAL replay diverged on {record!r}: {exc}"
            ) from exc

"""Client-side retries: budgeted, deadline-aware, decorrelated jitter.

:class:`RetryingClient` wraps any client surface (``send``/``flush``/
``request``/``close``) and re-issues requests that come back
``rejected`` (admission control says later) or ``timeout`` (the
deadline ran out somewhere downstream).  Three guards keep retries
from amplifying an outage into a storm:

* **one absolute deadline** — the first attempt stamps ``deadline_ms``
  and every retry inherits it, so the *sequence* is bounded, not each
  attempt; when the budget is gone the client stops, whatever the
  attempt count says;
* **a retry budget** — a token bucket earned by sending requests and
  spent by retrying them (:class:`RetryBudget`): at most a configured
  fraction of traffic can be retries, so a dying cluster sees load
  shed, not multiplied;
* **decorrelated jitter** — each backoff is drawn from
  ``[base, 3 × previous]`` (:func:`decorrelated_jitter_s`), the spread
  that keeps a thundering herd from re-synchronizing the way plain
  exponential backoff does.

Backoff draws come from a :func:`~repro.utils.rng.derive_seed`-derived
stream, so a seeded load test retries identically run over run.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.obs.trace import context_from_wire as trace_context_from_wire
from repro.serve.deadline import deadline_ms_in, expired, remaining_s
from repro.serve.protocol import Request, Response
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import require

#: response statuses worth a retry (everything else is terminal)
RETRYABLE_STATUSES = ("rejected", "timeout")


def decorrelated_jitter_s(
    prev_s: float, base_s: float, cap_s: float, rng
) -> float:
    """One decorrelated-jitter backoff draw.

    ``min(cap, base + U·(3·prev − base))`` — uniform over
    ``[base, 3·prev]``: the next sleep depends on the previous *drawn*
    sleep, not the attempt number, so concurrent clients decorrelate
    instead of marching through the same exponential schedule.
    """
    span = max(0.0, 3.0 * prev_s - base_s)
    return min(cap_s, base_s + rng.random() * span)


class RetryBudget:
    """Token bucket bounding what fraction of traffic may be retries.

    Every first attempt *earns* ``earn_per_request`` tokens (capped);
    every retry *spends* one.  With the default 0.1 earn rate, retries
    are capped at ~10% of offered load in steady state — enough to
    absorb gray loss, never enough to double traffic into an outage.
    """

    def __init__(
        self, initial: float = 10.0, earn_per_request: float = 0.1,
        cap: float = 50.0,
    ) -> None:
        require(initial >= 0, "initial must be >= 0")
        require(earn_per_request >= 0, "earn_per_request must be >= 0")
        require(cap >= initial, "cap must be >= initial")
        self._tokens = float(initial)
        self._cap = float(cap)
        self._earn = float(earn_per_request)
        self.spent_total = 0
        self.denied_total = 0

    @property
    def tokens(self) -> float:
        """Tokens currently available to spend on retries."""
        return self._tokens

    def earn(self) -> None:
        """Credit one first attempt."""
        self._tokens = min(self._cap, self._tokens + self._earn)

    def try_spend(self) -> bool:
        """Claim one retry token; ``False`` means shed, don't retry."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.spent_total += 1
            return True
        self.denied_total += 1
        return False


class RetryingClient:
    """A retrying, deadline-stamping wrapper around any client."""

    def __init__(
        self,
        inner,
        max_attempts: int = 3,
        base_backoff_s: float = 0.01,
        max_backoff_s: float = 0.5,
        deadline_budget_ms: "float | None" = None,
        budget: "RetryBudget | None" = None,
        seed: int = 0,
        name: str = "client",
    ) -> None:
        require(max_attempts >= 1, "max_attempts must be >= 1")
        require(base_backoff_s > 0, "base_backoff_s must be > 0")
        require(max_backoff_s >= base_backoff_s,
                "max_backoff_s must be >= base_backoff_s")
        if deadline_budget_ms is not None:
            require(deadline_budget_ms > 0, "deadline_budget_ms must be > 0")
        self.inner = inner
        self.max_attempts = int(max_attempts)
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.deadline_budget_ms = deadline_budget_ms
        self.budget = budget or RetryBudget()
        self._rng = make_rng(derive_seed(seed, "retry", name))
        self.retries_total = 0

    def send(self, request: Request) -> "asyncio.Future[Response]":
        """Client surface: a future resolving with the (retried) answer."""
        return asyncio.ensure_future(self.request(request))

    async def flush(self) -> None:
        """Delegate to the wrapped client."""
        await self.inner.flush()

    async def request(self, request: Request) -> Response:
        """Send with retries under one absolute deadline."""
        registry = obs_runtime.metrics()
        recorder = obs_runtime.spans()
        if request.deadline_ms is None and self.deadline_budget_ms is not None:
            # the whole retry sequence shares this one deadline: retries
            # spend the remaining budget, they don't reset it
            request = dataclasses.replace(
                request, deadline_ms=deadline_ms_in(self.deadline_budget_ms)
            )
        with recorder.start_span(
            obs_names.XSPAN_RETRY,
            trace_context_from_wire(request.trace),
            op=request.op,
        ) as span:
            if span.context is not None:
                # downstream spans parent onto the retry scope, so all
                # attempts of one request stitch under one node
                request = dataclasses.replace(
                    request, trace=span.context.to_dict()
                )
            response = await self._request_with_retries(
                registry, span, request
            )
            span.annotate(status=response.status)
            return response

    async def _request_with_retries(
        self, registry, span, request: Request
    ) -> Response:
        self.budget.earn()
        prev_backoff_s = self.base_backoff_s
        attempts = 1
        response = await self.inner.request(request)
        for _ in range(self.max_attempts - 1):
            if response.status not in RETRYABLE_STATUSES:
                break
            if expired(request.deadline_ms):
                span.event("deadline_expired", attempts=attempts)
                break
            if not self.budget.try_spend():
                registry.counter(
                    obs_names.SERVE_RETRY_BUDGET_EXHAUSTED
                ).inc()
                span.event("retry_budget_exhausted", attempts=attempts)
                break
            backoff_s = decorrelated_jitter_s(
                prev_backoff_s, self.base_backoff_s, self.max_backoff_s,
                self._rng,
            )
            if response.retry_after_ms is not None:
                # the server's hint is a floor, not a replacement: jitter
                # still spreads the herd the hint would re-synchronize
                backoff_s = max(backoff_s, response.retry_after_ms / 1e3)
            prev_backoff_s = backoff_s
            await asyncio.sleep(backoff_s)
            self.retries_total += 1
            attempts += 1
            registry.counter(obs_names.SERVE_CLIENT_RETRIES).inc()
            span.event(
                "retry",
                attempt=attempts,
                after=response.status,
                backoff_ms=round(backoff_s * 1e3, 3),
                deadline_remaining_ms=(
                    None if request.deadline_ms is None
                    else round(remaining_s(request.deadline_ms) * 1e3, 3)
                ),
            )
            response = await self.inner.request(request)
        span.annotate(attempts=attempts)
        return response

    async def close(self) -> None:
        """Delegate to the wrapped client."""
        await self.inner.close()

"""Line-delimited-JSON TCP front end and the matching clients.

The server speaks :mod:`repro.serve.protocol` over asyncio streams —
one request per line, one response per line, pipelining allowed,
responses matched by ``id``.  A malformed line is answered with an
``error`` response instead of dropping the connection, so one buggy
client request cannot silence its own earlier pipeline.

Two clients share the same surface:

* :class:`InProcessClient` — wraps a local
  :class:`~repro.serve.service.AssignmentService` with zero transport
  cost (what the load generator uses to measure the service itself);
* :class:`TCPClient` — the network path, with a reader task that
  resolves pipelined futures by response id.

``send`` is the ordering primitive on both: it hands the request over
synchronously (enqueue or socket write) and returns a future, so
callers that invoke it in trace order get FIFO processing.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.errors import ReproError, SerializationError
from repro.serve.protocol import (
    Request,
    Response,
    decode_request,
    decode_response,
    encode_line,
)
from repro.serve.service import AssignmentService
from repro.utils.validation import require

#: upper bound on one socket-buffer drain; a peer that stops reading
#: for this long is treated as gone (the unbounded-await audit's bound)
_DRAIN_TIMEOUT_S = 30.0


class TCPServer:
    """Serve one :class:`AssignmentService` over asyncio TCP streams."""

    def __init__(
        self,
        service: AssignmentService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 = ephemeral; the real port appears after start()
        self._server: "asyncio.base_events.Server | None" = None

    async def start(self) -> None:
        """Bind and start accepting connections (service must be started)."""
        require(self.service.started, "start the service before the server")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close open connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # one writer task per connection keeps response lines whole and
        # in future-resolution order, however many requests are in flight
        out: "asyncio.Queue[bytes | None]" = asyncio.Queue()

        async def pump() -> None:
            while (line := await out.get()) is not None:
                writer.write(line)
                # a peer that stops reading must not pin this task (and
                # the responses queued behind it) forever: a stuck drain
                # means the connection is effectively dead, so cut it
                await asyncio.wait_for(writer.drain(), timeout=_DRAIN_TIMEOUT_S)

        pump_task = asyncio.create_task(pump())
        try:
            while line := await reader.readline():
                if not line.strip():
                    continue
                try:
                    request = decode_request(line)
                except SerializationError as exc:
                    out.put_nowait(
                        encode_line(Response(id=0, status="error", detail=str(exc)))
                    )
                    continue
                future = self.service.submit_nowait(request)
                future.add_done_callback(
                    lambda fut: out.put_nowait(encode_line(fut.result()))
                )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            out.put_nowait(None)
            try:
                await pump_task
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.TimeoutError, TimeoutError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class InProcessClient:
    """Drive a local service directly — the zero-transport client."""

    def __init__(self, service: AssignmentService) -> None:
        self.service = service

    def send(self, request: Request) -> "asyncio.Future[Response]":
        """Submit now; the future resolves when the batch lands."""
        return self.service.submit_nowait(request)

    async def flush(self) -> None:
        """No transport, nothing to flush."""

    async def request(self, request: Request) -> Response:
        """Submit one request and await its response."""
        return await self.send(request)

    async def close(self) -> None:
        """The service's lifecycle belongs to its owner; nothing to do."""


class TCPClient:
    """Pipelined line-JSON client matching responses by id."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._reader_task: "asyncio.Task | None" = None
        self._pending: "dict[int, asyncio.Future[Response]]" = {}
        self._next_id = 0
        self._connected_once = False
        self._dead = False  # dispatcher exited: nothing will ever resolve

    async def connect(self) -> None:
        """Open the connection and start the response dispatcher."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._connected_once = True
        self._dead = False
        self._reader_task = asyncio.create_task(self._dispatch_responses())

    def send(self, request: Request) -> "asyncio.Future[Response]":
        """Write one request line now; the future resolves on its response.

        A request with ``id == 0`` is stamped with a fresh client id so
        pipelined responses can be matched.
        """
        if self._writer is None or self._dead:
            if self._connected_once:
                # closed under a concurrent sender (e.g. the peer died
                # and a failure handler dropped the connection), or the
                # dispatcher already exited — a write would "succeed"
                # into a dead transport and the future would only ever
                # time out.  Surface the transport failure immediately.
                raise ConnectionResetError("client connection is closed")
            require(False, "client is not connected")
        if request.id == 0:
            self._next_id += 1
            request = dataclasses.replace(request, id=self._next_id)
        require(
            request.id not in self._pending,
            f"request id {request.id} already in flight",
        )
        future: "asyncio.Future[Response]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request.id] = future
        self._writer.write(encode_line(request))
        return future

    async def flush(self) -> None:
        """Apply transport backpressure (awaits the socket buffer)."""
        if self._writer is not None:
            await self._writer.drain()

    async def request(self, request: Request) -> Response:
        """Submit one request and await its response."""
        future = self.send(request)
        await self.flush()
        return await future

    async def close(self) -> None:
        """Close the connection; unresolved futures get an error response."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
        self._fail_pending("connection closed")

    async def _dispatch_responses(self) -> None:
        assert self._reader is not None
        try:
            while line := await self._reader.readline():
                if not line.strip():
                    continue
                try:
                    response = decode_response(line)
                except SerializationError:
                    continue  # a garbled line cannot be matched to anyone
                future = self._pending.pop(response.id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._dead = True
            self._fail_pending("server closed the connection")

    def _fail_pending(self, detail: str) -> None:
        for request_id, future in list(self._pending.items()):
            if not future.done():
                future.set_result(
                    Response(id=request_id, status="error", detail=detail)
                )
        self._pending.clear()


async def open_client(host: str, port: int) -> TCPClient:
    """Connect a :class:`TCPClient`; raises ReproError when unreachable."""
    client = TCPClient(host, port)
    try:
        await client.connect()
    except OSError as exc:
        raise ReproError(f"cannot connect to {host}:{port}: {exc}") from exc
    return client

"""The asyncio assignment service: admission → micro-batch → state.

:class:`AssignmentService` is the long-running component the paper's
real-time framing implies: it accepts assignment requests, answers
within a latency budget, and survives load.  One event loop, three
moving parts:

* **admission** happens synchronously at submit time against the
  bounded queue (:mod:`repro.serve.admission`) — overload turns into
  explicit ``rejected`` responses with a retry hint, never into
  unbounded memory;
* the **batch consumer** drains the queue through the deadline-aware
  :class:`~repro.serve.batcher.MicroBatcher` and applies each request
  to the single-writer :class:`~repro.serve.state.ServiceState` in
  strict FIFO order, so batched and serial execution produce
  identical assignments;
* the **re-optimization loop** periodically solves a snapshot of the
  active devices with a full offline solver *off the hot path* (in a
  worker thread) and compare-and-swaps the improved assignment in.

``submit_nowait`` is the ordering primitive: it performs admission and
enqueueing synchronously on the event loop and returns a future, so a
caller that invokes it in trace order is guaranteed FIFO processing
even though responses resolve later, batch by batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleSolutionError, ReproError, ValidationError
from repro.model.problem import AssignmentProblem
from repro.model.solution import UNASSIGNED
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.obs.trace import context_from_wire as trace_context_from_wire
from repro.serve.admission import AdmissionController
from repro.serve.batcher import MicroBatcher
from repro.serve.deadline import expired
from repro.serve.protocol import Request, Response
from repro.serve.state import ServiceState
from repro.utils.validation import require
from repro.wal import WriteAheadLog

#: EWMA weight for the measured drain rate fed back into admission
_DRAIN_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving knob in one place (see docs/serve.md)."""

    rule: str = "reserve"
    headroom: float = 0.85
    max_batch: int = 32
    max_wait_s: float = 0.002
    max_queue: int = 1024
    watermark: float = 0.5
    reopt_interval_s: "float | None" = None  # None disables the loop
    reopt_solver: str = "local_search"
    reopt_seed: int = 0
    wal_dir: "str | None" = None  # None = no durability
    wal_snapshot_every: int = 256

    def __post_init__(self) -> None:
        require(self.max_batch >= 1, "max_batch must be >= 1")
        require(self.max_wait_s >= 0, "max_wait_s must be >= 0")
        require(self.max_queue >= 1, "max_queue must be >= 1")
        if self.reopt_interval_s is not None:
            require(self.reopt_interval_s > 0, "reopt_interval_s must be > 0")
        require(self.wal_snapshot_every >= 1,
                "wal_snapshot_every must be >= 1")


class AssignmentService:
    """Request/response front over one live cluster state."""

    def __init__(
        self,
        problem: AssignmentProblem,
        config: "ServiceConfig | None" = None,
    ) -> None:
        self.config = config or ServiceConfig()
        wal = None
        if self.config.wal_dir is not None:
            wal = WriteAheadLog(
                self.config.wal_dir,
                snapshot_every=self.config.wal_snapshot_every,
            )
        self.state = ServiceState(
            problem, rule=self.config.rule, headroom=self.config.headroom,
            wal=wal,
        )
        self.recovery_ms = 0.0
        if wal is not None:
            started = time.perf_counter()
            self.state.recover()
            self.recovery_ms = (time.perf_counter() - started) * 1e3
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            watermark=self.config.watermark,
            drain_rate_hz=max(
                1.0, self.config.max_batch / max(self.config.max_wait_s, 1e-4)
            ),
        )
        self._queue: "asyncio.Queue | None" = None
        self._batcher: "MicroBatcher | None" = None
        self._consumer: "asyncio.Task | None" = None
        self._reopt_task: "asyncio.Task | None" = None
        self._pending = 0  # requests admitted but not yet processed
        self._drain_rate_hz = 0.0
        self._last_flush_t = 0.0
        self.reopt_swaps = 0
        self.reopt_gain_ms_total = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the consumer loop is running."""
        return self._consumer is not None and not self._consumer.done()

    async def start(self) -> None:
        """Spawn the batch consumer (and the re-opt loop, if configured)."""
        require(not self.started, "service is already started")
        self._queue = asyncio.Queue()
        self._batcher = MicroBatcher(
            self._queue,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
        )
        self._last_flush_t = time.perf_counter()
        self._consumer = asyncio.create_task(self._consume(), name="serve-consumer")
        if self.config.reopt_interval_s is not None:
            self._reopt_task = asyncio.create_task(
                self._reopt_loop(), name="serve-reopt"
            )

    async def stop(self) -> None:
        """Drain the queue, answer everything in flight, stop the loops."""
        if self._reopt_task is not None:
            self._reopt_task.cancel()
            try:
                await self._reopt_task
            except asyncio.CancelledError:
                pass
            self._reopt_task = None
        if self._batcher is not None and self._consumer is not None:
            await self._batcher.close()
            await self._consumer
        self._consumer = None
        self._batcher = None
        self._queue = None

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit_nowait(self, request: Request) -> "asyncio.Future[Response]":
        """Admit (or reject) now; the returned future resolves post-batch.

        Must be called from the event loop thread.  Calls made in
        order are processed in order — this is the service's only
        ordering guarantee, and all the determinism tests need.
        """
        require(self.started, "service is not started")
        registry = obs_runtime.metrics()
        registry.counter(obs_names.SERVE_REQUESTS, {"op": request.op}).inc()
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()
        if request.op == "stats":
            future.set_result(
                Response(id=request.id, status="ok", stats=self._stats())
            )
            return future
        decision = self.admission.check(self._pending, request.priority)
        if not decision.admitted:
            registry.counter(
                obs_names.SERVE_REJECTED,
                {"reason": decision.reason, "priority": request.priority},
            ).inc()
            future.set_result(
                Response(
                    id=request.id,
                    status="rejected",
                    retry_after_ms=decision.retry_after_ms,
                    detail=decision.reason,
                )
            )
            return future
        registry.counter(obs_names.SERVE_ADMITTED, {"priority": request.priority}).inc()
        self._pending += 1
        assert self._queue is not None
        self._queue.put_nowait((request, future, time.perf_counter()))
        return future

    async def submit(self, request: Request) -> Response:
        """Submit one request and await its response."""
        return await self.submit_nowait(request)

    # ------------------------------------------------------------------
    # batch consumer
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        assert self._batcher is not None
        while True:
            flushed = await self._batcher.next_batch()
            if flushed is None:
                return
            batch, reason = flushed
            registry = obs_runtime.metrics()
            recorder = obs_runtime.spans()
            registry.counter(
                obs_names.SERVE_BATCH_FLUSHES, {"reason": reason}
            ).inc()
            registry.histogram(obs_names.SERVE_BATCH_SIZE).observe(len(batch))
            latency = registry.timer(obs_names.SERVE_ASSIGN_LATENCY)
            for request, future, enqueued_t in batch:
                response = self._serve_one(
                    recorder, request, enqueued_t, reason, len(batch)
                )
                self._pending -= 1
                if response.latency_ms is not None:
                    latency.observe(response.latency_ms / 1e3)
                if not future.done():  # client may have gone away
                    future.set_result(response)
            now = time.perf_counter()
            window = max(now - self._last_flush_t, 1e-9)
            self._last_flush_t = now
            rate = len(batch) / window
            self._drain_rate_hz = (
                rate
                if self._drain_rate_hz == 0.0
                else (1 - _DRAIN_EWMA_ALPHA) * self._drain_rate_hz
                + _DRAIN_EWMA_ALPHA * rate
            )
            self.admission.observe_drain_rate(self._drain_rate_hz)
            registry.gauge(obs_names.SERVE_QUEUE_DEPTH).set(self._pending)
            registry.gauge(obs_names.SERVE_ACTIVE_DEVICES).set(self.state.active_count)
            # yield once per batch so submitters/readers interleave fairly
            await asyncio.sleep(0)

    def _serve_one(
        self,
        recorder,
        request: Request,
        enqueued_t: float,
        reason: str,
        batch_size: int,
    ) -> Response:
        """One request through its (traced) application.

        The ``serve/request`` span parents onto the wire context the
        sender stamped, covering queue exit through state mutation;
        the inner ``serve/batch`` span isolates the batcher's share
        and carries the flush reason — the two hops the stitched
        waterfall shows on the shard side.
        """
        context = trace_context_from_wire(request.trace)
        with recorder.start_span(
            obs_names.XSPAN_SERVE, context, op=request.op
        ) as span:
            span.event(
                "dequeued",
                queue_wait_ms=round(
                    (time.perf_counter() - enqueued_t) * 1e3, 3
                ),
            )
            if request.deadline_ms is not None:
                span.event(
                    "deadline",
                    remaining_ms=round(
                        float(request.deadline_ms) - time.time() * 1e3, 3
                    ),
                )
            with recorder.start_span(
                obs_names.XSPAN_BATCH, span.context,
                reason=reason, size=batch_size,
            ):
                response = self._apply(request, enqueued_t)
            span.annotate(status=response.status)
            return response

    def _apply(self, request: Request, enqueued_t: float) -> Response:
        """Execute one admitted request against the state."""
        registry = obs_runtime.metrics()

        def latency_ms() -> float:
            return (time.perf_counter() - enqueued_t) * 1e3

        if expired(request.deadline_ms):
            # the budget died in the queue: answer fast, mutate nothing —
            # the client has already given up on this response
            registry.counter(obs_names.SERVE_DEADLINE_EXCEEDED).inc()
            return Response(
                id=request.id, status="timeout",
                detail="deadline expired before apply",
                latency_ms=latency_ms(),
            )
        try:
            if request.op == "assign":
                server = self.state.assign(int(request.device))
                registry.counter(obs_names.SERVE_ASSIGNED).inc()
                return Response(
                    id=request.id, status="ok", server=server,
                    latency_ms=latency_ms(),
                )
            if request.op == "release":
                server = self.state.release(int(request.device))
                registry.counter(obs_names.SERVE_RELEASED).inc()
                return Response(
                    id=request.id, status="ok", server=server,
                    latency_ms=latency_ms(),
                )
            if request.op == "migrate":
                released = self.state.migrate_out(
                    list(request.devices or ()), int(request.epoch)
                )
                if released is None:
                    # epoch moved on: the router retries with fresh gossip
                    return Response(
                        id=request.id, status="rejected",
                        detail="stale epoch",
                        latency_ms=latency_ms(),
                    )
                registry.counter(obs_names.SERVE_RELEASED).inc(len(released))
                return Response(
                    id=request.id, status="ok",
                    latency_ms=latency_ms(),
                    stats={"released": released, "epoch": self.state.epoch},
                )
        except ValidationError as exc:
            registry.counter(obs_names.SERVE_ERRORS).inc()
            return Response(
                id=request.id, status="error", detail=str(exc),
                latency_ms=latency_ms(),
            )
        except InfeasibleSolutionError as exc:
            if request.op == "release":
                # releasing a device that is not held is protocol misuse
                registry.counter(obs_names.SERVE_ERRORS).inc()
                return Response(
                    id=request.id, status="error", detail=str(exc),
                    latency_ms=latency_ms(),
                )
            return Response(
                id=request.id, status="infeasible", detail=str(exc),
                latency_ms=latency_ms(),
            )
        registry.counter(obs_names.SERVE_ERRORS).inc()
        return Response(
            id=request.id, status="error", detail=f"unhandled op {request.op!r}",
        )

    def _stats(self) -> dict:
        """Service-level snapshot (state + queue + admission + reopt)."""
        stats = {
            **self.state.stats(),
            "queue_depth": self._pending,
            "queue_max": self.admission.max_queue,
            "drain_rate_hz": round(self._drain_rate_hz, 3),
            "admitted_total": self.admission.admitted_total,
            "rejected_total": self.admission.rejected_total,
            "reopt_swaps": self.reopt_swaps,
            "reopt_gain_ms_total": round(self.reopt_gain_ms_total, 6),
        }
        if self.config.wal_dir is not None:
            stats["wal_recovered_records"] = self.state.recovered_records
            stats["wal_recovery_ms"] = round(self.recovery_ms, 3)
            stats["wal_seq"] = self.state.wal_seq
            stats["wal_appends_total"] = self.state.wal_appends_total
            stats["wal_snapshots_total"] = self.state.wal_snapshots_total
        registry = obs_runtime.metrics()
        if registry.enabled:
            # a compact live-metrics snapshot rides the stats response so
            # `repro shard stats` sees each process's counters without a
            # side channel; the null registry keeps this off the request
            # path entirely when obs is disabled
            stats["metrics"] = registry.snapshot()
        return stats

    # ------------------------------------------------------------------
    # re-optimization loop
    # ------------------------------------------------------------------
    async def _reopt_loop(self) -> None:
        assert self.config.reopt_interval_s is not None
        while True:
            await asyncio.sleep(self.config.reopt_interval_s)
            try:
                await self.reoptimize_once()
            except ReproError:
                # a failed round must never take the serving path down
                obs_runtime.metrics().counter(
                    obs_names.SERVE_REOPT_RUNS, {"outcome": "failed"}
                ).inc()

    async def reoptimize_once(self) -> bool:
        """One snapshot → solve → compare-and-swap round; True on swap.

        The solve runs in a worker thread so the event loop keeps
        serving; the swap is rejected when any assign/release landed
        after the snapshot (the next round sees the fresher state).
        """
        registry = obs_runtime.metrics()
        epoch, vector = self.state.snapshot()
        active = np.flatnonzero(vector != UNASSIGNED)
        if active.size < 2:
            registry.counter(obs_names.SERVE_REOPT_RUNS, {"outcome": "kept"}).inc()
            return False
        problem = self.state.problem
        old_cost = float(np.sum(problem.delay[active, vector[active]]))
        with obs_runtime.tracer().span(
            obs_names.SPAN_REOPT, active=int(active.size)
        ):
            improved = await asyncio.to_thread(
                _solve_snapshot,
                problem,
                active,
                self.config.reopt_solver,
                self.config.reopt_seed,
            )
        if improved is None:
            registry.counter(obs_names.SERVE_REOPT_RUNS, {"outcome": "failed"}).inc()
            return False
        new_vector, new_cost = improved
        if new_cost >= old_cost - 1e-12:
            registry.counter(obs_names.SERVE_REOPT_RUNS, {"outcome": "kept"}).inc()
            return False
        if not self.state.try_swap(epoch, new_vector):
            registry.counter(obs_names.SERVE_REOPT_RUNS, {"outcome": "stale"}).inc()
            return False
        gain_ms = (old_cost - new_cost) * 1e3
        self.reopt_swaps += 1
        self.reopt_gain_ms_total += gain_ms
        registry.counter(obs_names.SERVE_REOPT_RUNS, {"outcome": "swapped"}).inc()
        registry.gauge(obs_names.SERVE_REOPT_GAIN).set(gain_ms)
        return True


def _solve_snapshot(
    problem: AssignmentProblem,
    active: np.ndarray,
    solver_name: str,
    seed: int,
) -> "tuple[np.ndarray, float] | None":
    """Solve the active-device subproblem; returns (full vector, cost).

    Runs in a worker thread.  Returns ``None`` when the solver fails
    or lands infeasible — the caller keeps the standing assignment.
    """
    from repro.solvers.registry import get_solver

    sub = AssignmentProblem(
        delay=problem.delay[active],
        demand=problem.demand[active],
        capacity=problem.capacity,
        failed_servers=problem.failed_servers,
        name=f"{problem.name}|reopt={active.size}",
    )
    try:
        result = get_solver(solver_name, seed=seed).solve(sub)
    except ReproError:
        return None
    if not result.feasible:
        return None
    full = np.full(problem.n_devices, UNASSIGNED, dtype=np.int64)
    full[active] = result.assignment.vector
    return full, float(result.objective_value)

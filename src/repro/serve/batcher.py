"""Deadline-aware micro-batching over an asyncio queue.

Bursts of assignment requests amortize per-batch work (lock and state
round-trips, metric flushes, response writes) when they are drained in
groups, but a lone request must not wait for company forever.  The
batcher therefore flushes on whichever comes first:

* **size** — the batch reached ``max_batch`` items;
* **deadline** — ``max_wait_s`` elapsed since the batch's *first* item
  arrived (the oldest request bounds everyone's queueing delay);
* **drain** — the service is shutting down and flushes what is left.

Batch *boundaries* depend on arrival timing, but the item *order* is
FIFO regardless of how the boundaries fall — which is why a batched
run over a fixed trace reproduces the serial baseline exactly (see
``tests/serve/test_service.py``).
"""

from __future__ import annotations

import asyncio

#: sentinel a producer pushes to end the stream
CLOSE = object()

#: flush triggers, for the serve/batch_flushes counter labels
FLUSH_REASONS = ("size", "deadline", "drain")


class MicroBatcher:
    """Group items from an :class:`asyncio.Queue` into bounded batches."""

    def __init__(
        self,
        queue: "asyncio.Queue",
        max_batch: int = 32,
        max_wait_s: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._closed = False

    async def next_batch(self) -> "tuple[list, str] | None":
        """``(items, reason)`` for the next flush, or ``None`` when drained.

        Blocks until at least one item is available, then keeps
        accepting items until the size bound or the first item's wait
        deadline is hit.  After :data:`CLOSE` is consumed, the pending
        items are flushed with reason ``"drain"`` and every later call
        returns ``None``.
        """
        if self._closed:
            return None
        first = await self.queue.get()
        if first is CLOSE:
            self._closed = True
            return None
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_s
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return batch, "deadline"
            try:
                item = await asyncio.wait_for(self.queue.get(), timeout=remaining)
            except asyncio.TimeoutError:
                return batch, "deadline"
            if item is CLOSE:
                self._closed = True
                return batch, "drain"
            batch.append(item)
        return batch, "size"

    async def close(self) -> None:
        """Ask the consumer to stop once the queue ahead is drained."""
        await self.queue.put(CLOSE)

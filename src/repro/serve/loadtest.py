"""Load generation against the assignment service, open- and closed-loop.

Three traffic profiles:

* ``poisson`` — open-loop memoryless arrivals at ``rate_hz`` via
  :class:`~repro.workload.arrivals.PoissonProcess`: the generator does
  not wait for responses, so queueing delay shows up in the measured
  latency exactly as real overload would;
* ``burst`` — open-loop two-state MMPP
  (:class:`~repro.workload.arrivals.MMPPProcess`) with the same mean
  rate but 6x calm-to-burst rate spread: the micro-batcher's reason to
  exist;
* ``closed`` — ``concurrency`` workers each waiting for their response
  before sending the next request: measures saturation throughput.

The driver is a *device actor* model: it releases only devices whose
``assign`` was confirmed ``ok``, so admission rejections under
overload never cascade into protocol errors.  For determinism work,
:func:`generate_trace` produces a fixed op sequence instead, and
:func:`replay_serial` replays it through a bare
:class:`~repro.serve.state.ServiceState` — the unbatched baseline the
equivalence tests compare against.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.obs.slo import summarize_slo
from repro.obs.trace import new_trace_id
from repro.serve.deadline import deadline_ms_in, remaining_s
from repro.serve.protocol import PRIORITY_CLASSES, Request, Response
from repro.serve.state import ServiceState
from repro.utils.fileio import atomic_write_text
from repro.utils.tables import format_table
from repro.utils.validation import check_positive, check_probability, require
from repro.workload.arrivals import ArrivalProcess, MMPPProcess, PoissonProcess

#: arrival profiles the CLI exposes
PROFILES = ("poisson", "burst", "closed")

#: transport flush cadence for open-loop pipelining
_FLUSH_EVERY = 128


@dataclass(frozen=True)
class LoadTestConfig:
    """One load-test run's knobs."""

    n_requests: int = 1000
    rate_hz: float = 2000.0
    profile: str = "poisson"
    concurrency: int = 32
    seed: int = 0
    release_ratio: float = 0.45
    priority_mix: "tuple[float, float, float]" = (0.2, 0.6, 0.2)  # low/normal/high
    deadline_ms: "float | None" = None  # per-request budget stamped at send

    def __post_init__(self) -> None:
        require(self.n_requests >= 1, "n_requests must be >= 1")
        check_positive(self.rate_hz, "rate_hz")
        if self.deadline_ms is not None:
            check_positive(self.deadline_ms, "deadline_ms")
        require(self.profile in PROFILES,
                f"unknown profile {self.profile!r}; known: {PROFILES}")
        require(self.concurrency >= 1, "concurrency must be >= 1")
        check_probability(self.release_ratio, "release_ratio")
        require(
            len(self.priority_mix) == len(PRIORITY_CLASSES)
            and abs(sum(self.priority_mix) - 1.0) < 1e-9,
            "priority_mix must be one probability per class, summing to 1",
        )


@dataclass
class LoadTestReport:
    """What a run measured; renders as a table and serializes to JSON."""

    profile: str
    n_requests: int
    offered_rate_hz: float
    duration_s: float
    throughput_rps: float
    latency_ms: "dict[str, float]"  # p50/p95/p99/mean/max over answered requests
    statuses: "dict[str, int]"  # status -> count
    ops: "dict[str, int]"  # op -> count
    stats: "dict | None" = field(default=None)  # final service stats snapshot
    #: per-request budget left at completion (completion order); ``None``
    #: when the run stamped no deadlines
    deadline_remaining_ms: "list[float] | None" = None
    deadline_misses: int = 0
    slo: "dict | None" = None  # burn-rate summary (see repro.obs.slo)

    @property
    def errors(self) -> int:
        """Protocol-error responses (must be 0 in a healthy run)."""
        return self.statuses.get("error", 0)

    @property
    def rejected(self) -> int:
        """Admission-control rejections (expected under overload)."""
        return self.statuses.get("rejected", 0)

    def to_dict(self) -> dict:
        """Plain-JSON form."""
        return {
            "profile": self.profile,
            "n_requests": self.n_requests,
            "offered_rate_hz": self.offered_rate_hz,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms,
            "statuses": self.statuses,
            "ops": self.ops,
            "stats": self.stats,
            "deadline_remaining_ms": self.deadline_remaining_ms,
            "deadline_misses": self.deadline_misses,
            "slo": self.slo,
        }

    def save_json(self, path) -> None:
        """Persist the report (atomic write, like every repro artifact)."""
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2, sort_keys=True))

    def to_text(self) -> str:
        """Human-readable latency/throughput table."""
        rows = [
            ["profile", self.profile],
            ["requests", self.n_requests],
            ["offered rate (req/s)", f"{self.offered_rate_hz:.0f}"],
            ["duration (s)", f"{self.duration_s:.3f}"],
            ["throughput (req/s)", f"{self.throughput_rps:.0f}"],
            ["latency p50 (ms)", f"{self.latency_ms['p50']:.3f}"],
            ["latency p95 (ms)", f"{self.latency_ms['p95']:.3f}"],
            ["latency p99 (ms)", f"{self.latency_ms['p99']:.3f}"],
            ["latency max (ms)", f"{self.latency_ms['max']:.3f}"],
            ["ok / rejected / infeasible / error",
             " / ".join(str(self.statuses.get(s, 0))
                        for s in ("ok", "rejected", "infeasible", "error"))],
        ]
        if self.deadline_remaining_ms is not None:
            rows.append(["deadline misses", self.deadline_misses])
        if self.slo is not None:
            rows.append([
                "slo burn (fast/slow, worst)",
                f"{self.slo['worst_fast_burn']:.2f}"
                f" / {self.slo['worst_slow_burn']:.2f}",
            ])
        return format_table(["metric", "value"], rows)


# ----------------------------------------------------------------------
# fixed traces (the determinism path)
# ----------------------------------------------------------------------
def generate_trace(
    n_devices: int,
    n_requests: int,
    seed: int = 0,
    release_ratio: float = 0.45,
    max_active_fraction: float = 0.6,
    priority_mix: "tuple[float, float, float]" = (0.2, 0.6, 0.2),
) -> "list[Request]":
    """A deterministic assign/release op sequence over ``n_devices``.

    The generator tracks its own view of the active set and only ever
    releases devices it assigned earlier, keeping occupancy under
    ``max_active_fraction`` so a moderately provisioned cluster can
    serve the whole trace without infeasibilities.  Identical
    ``(n_devices, n_requests, seed, ...)`` always yields the identical
    request list — the replay contract of the equivalence tests.
    """
    require(n_devices >= 1, "n_devices must be >= 1")
    require(n_requests >= 1, "n_requests must be >= 1")
    check_probability(release_ratio, "release_ratio")
    check_probability(max_active_fraction, "max_active_fraction")
    rng = np.random.default_rng(seed)
    active: "list[int]" = []
    inactive = list(range(n_devices))
    max_active = max(1, int(max_active_fraction * n_devices))
    trace: "list[Request]" = []
    for index in range(n_requests):
        priority = PRIORITY_CLASSES[
            int(rng.choice(len(PRIORITY_CLASSES), p=priority_mix))
        ]
        want_release = active and (
            len(active) >= max_active or float(rng.random()) < release_ratio
        )
        if want_release or not inactive:
            position = int(rng.integers(len(active)))
            device = active.pop(position)
            inactive.append(device)
            trace.append(Request(op="release", id=index + 1, device=device,
                                 priority=priority))
        else:
            position = int(rng.integers(len(inactive)))
            device = inactive.pop(position)
            active.append(device)
            trace.append(Request(op="assign", id=index + 1, device=device,
                                 priority=priority))
    return trace


def replay_serial(
    problem,
    trace: "list[Request]",
    rule: str = "reserve",
    headroom: float = 0.85,
) -> "tuple[np.ndarray, list[str]]":
    """The unbatched baseline: the trace applied one op at a time.

    Returns the final assignment vector and the per-request status
    list.  A batched service run over the same trace must match both
    exactly (see ``tests/serve/test_service.py``).
    """
    from repro.errors import InfeasibleSolutionError, ValidationError

    state = ServiceState(problem, rule=rule, headroom=headroom)
    statuses: "list[str]" = []
    for request in trace:
        try:
            if request.op == "assign":
                state.assign(int(request.device))
            else:
                state.release(int(request.device))
            statuses.append("ok")
        except ValidationError:
            statuses.append("error")
        except InfeasibleSolutionError:
            statuses.append("error" if request.op == "release" else "infeasible")
    return state.vector, statuses


async def drive_trace(client, trace: "list[Request]") -> "list[Response]":
    """Send a fixed trace in order through ``client``; await every answer.

    When tracing is enabled each request carries a trace context derived
    from its request id, so replays stitch identically run over run.
    """
    recorder = obs_runtime.spans()
    futures = []
    for index, request in enumerate(trace):
        if recorder.enabled:
            context = recorder.new_context(new_trace_id(0, int(request.id)))
            request = replace(request, trace=context.to_dict())
        futures.append(client.send(request))
        if (index + 1) % _FLUSH_EVERY == 0:
            await client.flush()
    await client.flush()
    return list(await asyncio.gather(*futures))


# ----------------------------------------------------------------------
# live load generation (the measurement path)
# ----------------------------------------------------------------------
def _arrival_process(config: LoadTestConfig) -> ArrivalProcess:
    if config.profile == "burst":
        return MMPPProcess(
            base_rate_hz=0.5 * config.rate_hz,
            burst_rate_hz=3.0 * config.rate_hz,
            mean_calm_s=2.0,
            mean_burst_s=0.5,
        )
    return PoissonProcess(config.rate_hz)


class _DeviceActors:
    """Response-aware device bookkeeping shared by both loop modes."""

    def __init__(
        self,
        n_devices: int,
        config: LoadTestConfig,
        device_ids: "list[int] | None" = None,
    ) -> None:
        self.rng = np.random.default_rng(config.seed)
        self.config = config
        self.held: "list[int]" = []  # assign confirmed ok
        self.pending: "set[int]" = set()  # assign in flight
        # device_ids restricts the actor pool to a slice of the device
        # space (parallel load workers each drive a disjoint slice)
        self.idle = (
            list(range(n_devices)) if device_ids is None
            else [int(d) for d in device_ids]
        )

    def next_request(self) -> "Request | None":
        """The next op, or ``None`` when no device can act right now."""
        priority = PRIORITY_CLASSES[
            int(self.rng.choice(len(PRIORITY_CLASSES), p=self.config.priority_mix))
        ]
        want_release = self.held and (
            not self.idle or float(self.rng.random()) < self.config.release_ratio
        )
        if want_release:
            device = self.held.pop(int(self.rng.integers(len(self.held))))
            self.pending.add(device)
            return Request(op="release", device=device, priority=priority)
        if not self.idle:
            return None
        device = self.idle.pop(int(self.rng.integers(len(self.idle))))
        self.pending.add(device)
        return Request(op="assign", device=device, priority=priority)

    def settle(self, request: Request, response: Response) -> None:
        """Fold one response back into the actor state."""
        device = int(request.device)
        self.pending.discard(device)
        if request.op == "assign":
            (self.held if response.ok else self.idle).append(device)
        else:
            (self.idle if response.ok else self.held).append(device)


#: one measured completion: (latency_ms, status, op,
#: deadline_remaining_ms | None, completion time on the perf clock)
_Outcome = "tuple[float, str, str, float | None, float]"


def _prepare(request: Request, index: int, config: LoadTestConfig, recorder):
    """Stamp deadline and trace context on one outgoing request.

    Returns the (possibly re-stamped) request plus the root client span
    — a manual span because in open loop the send and the completion
    live in different callbacks, so no ``with`` block can bracket them.
    The trace id derives from ``(seed, index)``, so a seeded run traces
    the same ids every time; unsampled contexts still ride the wire so
    downstream hops inherit the head-based decision.
    """
    if config.deadline_ms is not None:
        request = replace(
            request, deadline_ms=deadline_ms_in(config.deadline_ms)
        )
    context = (
        recorder.new_context(new_trace_id(config.seed, index))
        if recorder.enabled else None
    )
    span = recorder.start_manual(
        obs_names.XSPAN_CLIENT, context, op=request.op
    )
    if span.context is not None:
        request = replace(request, trace=span.context.to_dict())
    elif context is not None:
        request = replace(request, trace=context.to_dict())
    return request, span


def _settle_outcome(request: Request, response: Response, span,
                    sent_t: float) -> _Outcome:
    """Close the client span and fold one completion into an outcome."""
    done_t = time.perf_counter()
    remaining_ms = (
        None if request.deadline_ms is None
        else round(remaining_s(request.deadline_ms) * 1e3, 3)
    )
    span.annotate(status=response.status)
    if remaining_ms is not None:
        span.annotate(deadline_remaining_ms=remaining_ms)
    span.finish()
    return ((done_t - sent_t) * 1e3, response.status, request.op,
            remaining_ms, done_t)


async def run_loadtest(
    client,
    n_devices: int,
    config: LoadTestConfig,
    collect_stats: bool = True,
    device_ids: "list[int] | None" = None,
) -> LoadTestReport:
    """Drive ``client`` with the configured profile; measure what came back.

    ``device_ids`` restricts the run to a slice of the device space so
    several load workers can share one cluster without colliding.
    """
    started = time.perf_counter()
    if config.profile == "closed":
        outcomes = await _closed_loop(client, n_devices, config, device_ids)
    else:
        outcomes = await _open_loop(client, n_devices, config, device_ids)
    duration_s = time.perf_counter() - started

    latencies = np.array([o[0] for o in outcomes], dtype=np.float64)
    statuses: "dict[str, int]" = {}
    ops: "dict[str, int]" = {}
    for _, status, op, _, _ in outcomes:
        statuses[status] = statuses.get(status, 0) + 1
        ops[op] = ops.get(op, 0) + 1
    # SLO verdict over the run: errors/timeouts burn budget, policy
    # outcomes (rejected/infeasible) do not; replayed on completion
    # timestamps so windowed burn rates mean what they say
    misses = [
        (remaining is not None and remaining < 0) or status == "timeout"
        for _, status, _, remaining, _ in outcomes
    ]
    slo = summarize_slo([
        (done_t, status not in ("error", "timeout"), missed)
        for (_, status, _, _, done_t), missed in zip(outcomes, misses)
    ]) if outcomes else None
    remaining_values = (
        [o[3] for o in outcomes if o[3] is not None]
        if config.deadline_ms is not None else None
    )
    stats = None
    if collect_stats:
        stats_response = await client.request(Request(op="stats"))
        stats = stats_response.stats
    return LoadTestReport(
        profile=config.profile,
        n_requests=len(outcomes),
        offered_rate_hz=config.rate_hz,
        duration_s=duration_s,
        throughput_rps=len(outcomes) / max(duration_s, 1e-9),
        latency_ms={
            "mean": float(np.mean(latencies)) if latencies.size else 0.0,
            "p50": float(np.percentile(latencies, 50)) if latencies.size else 0.0,
            "p95": float(np.percentile(latencies, 95)) if latencies.size else 0.0,
            "p99": float(np.percentile(latencies, 99)) if latencies.size else 0.0,
            "max": float(np.max(latencies)) if latencies.size else 0.0,
        },
        statuses=statuses,
        ops=ops,
        stats=stats,
        deadline_remaining_ms=remaining_values,
        deadline_misses=sum(misses),
        slo=slo,
    )


async def _open_loop(
    client, n_devices: int, config: LoadTestConfig,
    device_ids: "list[int] | None" = None,
) -> "list[_Outcome]":
    """Send on the arrival clock, never waiting for responses."""
    actors = _DeviceActors(n_devices, config, device_ids)
    process = _arrival_process(config)
    arrival_rng = np.random.default_rng(config.seed + 1)
    recorder = obs_runtime.spans()
    loop = asyncio.get_running_loop()
    outcomes: "list[_Outcome]" = []
    waiting: "list[asyncio.Future]" = []
    start = loop.time()
    next_arrival = 0.0
    sent = 0
    while sent < config.n_requests:
        next_arrival += process.next_interval(arrival_rng)
        delay = start + next_arrival - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        request = actors.next_request()
        if request is None:  # every device in flight: give responses a beat
            await client.flush()
            await asyncio.sleep(0)
            continue
        request, span = _prepare(request, sent, config, recorder)
        sent += 1
        sent_t = time.perf_counter()
        future = client.send(request)

        def settle(fut, request=request, sent_t=sent_t, span=span):
            response = fut.result()
            actors.settle(request, response)
            outcomes.append(_settle_outcome(request, response, span, sent_t))

        future.add_done_callback(settle)
        waiting.append(future)
        if sent % _FLUSH_EVERY == 0:
            await client.flush()
    await client.flush()
    await asyncio.gather(*waiting)
    await asyncio.sleep(0)  # let the last done-callbacks run
    return outcomes


async def _closed_loop(
    client, n_devices: int, config: LoadTestConfig,
    device_ids: "list[int] | None" = None,
) -> "list[_Outcome]":
    """``concurrency`` workers in lock-step with their own responses."""
    actors = _DeviceActors(n_devices, config, device_ids)
    recorder = obs_runtime.spans()
    outcomes: "list[_Outcome]" = []
    remaining = config.n_requests
    sent = 0
    lock = asyncio.Lock()

    async def worker() -> None:
        nonlocal remaining, sent
        while True:
            async with lock:
                if remaining <= 0:
                    return
                remaining -= 1
                request = actors.next_request()
                if request is not None:
                    request, span = _prepare(request, sent, config, recorder)
                    sent += 1
            if request is None:
                await asyncio.sleep(0)
                async with lock:
                    remaining += 1
                continue
            sent_t = time.perf_counter()
            response = await client.request(request)
            async with lock:
                actors.settle(request, response)
                outcomes.append(
                    _settle_outcome(request, response, span, sent_t)
                )

    await asyncio.gather(*(worker() for _ in range(config.concurrency)))
    return outcomes

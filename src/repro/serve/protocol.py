"""The wire protocol of the assignment service: line-delimited JSON.

One request per line, one response per line, matched by ``id`` so a
client may pipeline arbitrarily many requests over one connection.
The same dataclasses travel the in-process path, so a TCP client and
an embedded client observe byte-identical semantics.

Request line::

    {"id": 7, "op": "assign", "device": 12, "priority": "normal"}

Response line::

    {"id": 7, "status": "ok", "server": 3, "latency_ms": 0.41}

Operations: ``assign`` (place a device), ``release`` (return its
capacity), ``stats`` (service snapshot, answered off the batch path),
``migrate`` (release a batch of devices iff the service epoch still
matches — the donor half of the cross-shard rebalance handshake in
:mod:`repro.shard`; carries ``devices`` and ``epoch``, answers with
the devices actually freed in ``stats["released"]``).
Statuses: ``ok``; ``rejected`` (admission control said no — carries
``retry_after_ms``); ``infeasible`` (no server fits the device);
``error`` (malformed request or protocol misuse, e.g. releasing a
device that is not assigned); ``timeout`` (the request's propagated
``deadline_ms`` expired before it could be served — not a protocol
error: the caller may retry with a fresh deadline).

Priority classes mirror the shedding semantics of
:mod:`repro.cluster.degradation` and the fault-injection layer: under
pressure the service sheds ``low`` first, then ``normal``; ``high``
is rejected only when the queue is hard-full.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import SerializationError
from repro.utils.validation import require

#: admission priority classes, most-sheddable first (degradation order)
PRIORITY_CLASSES = ("low", "normal", "high")

#: request operations the service understands
OPS = ("assign", "release", "stats", "migrate")

#: response statuses
STATUSES = ("ok", "rejected", "infeasible", "error", "timeout")


@dataclass(frozen=True)
class Request:
    """One client request (one JSON line on the wire).

    ``deadline_ms`` is an *absolute* Unix-epoch-milliseconds deadline
    (see :mod:`repro.serve.deadline`): it is stamped once by the
    client (or the router's default budget) and propagated verbatim
    through every hop, so downstream stages inherit the shrinking
    budget instead of each granting a fresh one.

    ``trace`` is the distributed-tracing context — a
    :class:`~repro.obs.trace.TraceContext` wire dict ``(trace_id,
    span_id, sampled)`` — stamped by the tracing client and rewritten
    at every hop so the receiver's spans parent onto the sender's.
    It is omitted from the wire form when unset: a run with tracing
    off emits byte-identical protocol lines.
    """

    op: str
    id: int = 0
    device: "int | None" = None
    priority: str = "normal"
    devices: "tuple[int, ...] | None" = None
    epoch: "int | None" = None
    deadline_ms: "float | None" = None
    trace: "dict | None" = None

    def __post_init__(self) -> None:
        require(self.op in OPS, f"unknown op {self.op!r}; known: {OPS}")
        require(
            self.priority in PRIORITY_CLASSES,
            f"unknown priority {self.priority!r}; known: {PRIORITY_CLASSES}",
        )
        if self.op in ("assign", "release"):
            require(
                self.device is not None and int(self.device) >= 0,
                f"op {self.op!r} needs a nonnegative device index",
            )
        if self.op == "migrate":
            require(
                self.devices is not None and self.epoch is not None,
                "op 'migrate' needs 'devices' and 'epoch'",
            )
        if self.deadline_ms is not None:
            require(
                float(self.deadline_ms) > 0,
                "deadline_ms must be a positive absolute epoch-ms instant",
            )

    def to_dict(self) -> dict:
        """Plain-JSON form (omits unset optionals)."""
        payload: dict = {"id": int(self.id), "op": self.op}
        if self.device is not None:
            payload["device"] = int(self.device)
        if self.priority != "normal":
            payload["priority"] = self.priority
        if self.devices is not None:
            payload["devices"] = [int(d) for d in self.devices]
        if self.epoch is not None:
            payload["epoch"] = int(self.epoch)
        if self.deadline_ms is not None:
            payload["deadline_ms"] = round(float(self.deadline_ms), 3)
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Request":
        """Inverse of :meth:`to_dict`; raises SerializationError on junk."""
        try:
            device = payload.get("device")
            devices = payload.get("devices")
            epoch = payload.get("epoch")
            deadline_ms = payload.get("deadline_ms")
            trace = payload.get("trace")
            if trace is not None and not isinstance(trace, dict):
                raise SerializationError(
                    f"trace must be an object, got {type(trace).__name__}"
                )
            return cls(
                op=str(payload["op"]),
                id=int(payload.get("id", 0)),
                device=None if device is None else int(device),
                priority=str(payload.get("priority", "normal")),
                devices=None if devices is None else tuple(int(d) for d in devices),
                epoch=None if epoch is None else int(epoch),
                deadline_ms=None if deadline_ms is None else float(deadline_ms),
                trace=None if trace is None else dict(trace),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad request payload: {exc}") from exc


@dataclass(frozen=True)
class Response:
    """One service response (one JSON line on the wire)."""

    id: int
    status: str
    server: "int | None" = None
    latency_ms: "float | None" = None
    retry_after_ms: "float | None" = None
    detail: str = ""
    stats: "dict | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require(self.status in STATUSES,
                f"unknown status {self.status!r}; known: {STATUSES}")

    @property
    def ok(self) -> bool:
        """Whether the request was served."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """Plain-JSON form (omits unset optionals)."""
        payload: dict = {"id": int(self.id), "status": self.status}
        if self.server is not None:
            payload["server"] = int(self.server)
        if self.latency_ms is not None:
            payload["latency_ms"] = round(float(self.latency_ms), 4)
        if self.retry_after_ms is not None:
            payload["retry_after_ms"] = round(float(self.retry_after_ms), 4)
        if self.detail:
            payload["detail"] = self.detail
        if self.stats is not None:
            payload["stats"] = self.stats
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Response":
        """Inverse of :meth:`to_dict`; raises SerializationError on junk."""
        try:
            server = payload.get("server")
            return cls(
                id=int(payload.get("id", 0)),
                status=str(payload["status"]),
                server=None if server is None else int(server),
                latency_ms=payload.get("latency_ms"),
                retry_after_ms=payload.get("retry_after_ms"),
                detail=str(payload.get("detail", "")),
                stats=payload.get("stats"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"bad response payload: {exc}") from exc


def encode_line(message: "Request | Response") -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(message.to_dict(), sort_keys=True) + "\n").encode("utf-8")


def decode_request(line: "bytes | str") -> Request:
    """Parse one request line; raises SerializationError on junk."""
    return Request.from_dict(_decode(line))


def decode_response(line: "bytes | str") -> Response:
    """Parse one response line; raises SerializationError on junk."""
    return Response.from_dict(_decode(line))


def _decode(line: "bytes | str") -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"request line is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError(
            f"protocol line must be a JSON object, got {type(payload).__name__}"
        )
    return payload

"""Absolute deadlines on the request path: stamp, propagate, enforce.

A deadline travels the wire as ``deadline_ms`` — absolute Unix epoch
milliseconds — on every :class:`~repro.serve.protocol.Request`.  Being
absolute is the point: the budget shrinks as the request crosses hops
(client → router → shard → batch queue), so a request that already
spent its budget queueing is failed *fast* at the next hop instead of
consuming a full per-hop timeout there.  Every await on the serve and
shard request path is bounded through :func:`bounded`, which converts
``asyncio.TimeoutError`` into the typed
:class:`~repro.errors.DeadlineExceededError` the callers handle.

The clock is ``time.time`` (the one clock processes share); helpers
take an injectable clock for tests.
"""

from __future__ import annotations

import asyncio
import time

from repro.errors import DeadlineExceededError
from repro.utils.validation import require


def deadline_ms_in(budget_ms: float, clock=time.time) -> float:
    """Absolute wire deadline ``budget_ms`` from now."""
    require(budget_ms > 0, "budget_ms must be > 0")
    return clock() * 1e3 + float(budget_ms)


def remaining_s(deadline_ms: "float | None", clock=time.time) -> "float | None":
    """Seconds of budget left (negative = expired); None when unset."""
    if deadline_ms is None:
        return None
    return float(deadline_ms) / 1e3 - clock()


def expired(deadline_ms: "float | None", clock=time.time) -> bool:
    """Whether the deadline has already passed (False when unset)."""
    rem = remaining_s(deadline_ms, clock)
    return rem is not None and rem <= 0


async def bounded(
    awaitable,
    deadline_ms: "float | None" = None,
    timeout_s: "float | None" = None,
    where: str = "await",
    clock=time.time,
):
    """Await with the tighter of the deadline budget and a fixed timeout.

    With neither bound set this is a plain await.  An already-expired
    deadline raises before the awaitable is scheduled at all — the
    fail-fast half of deadline propagation.
    """
    budget = remaining_s(deadline_ms, clock)
    if budget is not None and budget <= 0:
        # drop the coroutine without running it (avoids the
        # "never awaited" warning for the common create-then-check path)
        asyncio.ensure_future(awaitable).cancel()
        raise DeadlineExceededError(
            f"{where}: deadline passed {-budget * 1e3:.1f} ms ago"
        )
    if timeout_s is not None:
        budget = timeout_s if budget is None else min(budget, timeout_s)
    if budget is None:
        return await awaitable
    try:
        return await asyncio.wait_for(awaitable, timeout=budget)
    except (asyncio.TimeoutError, TimeoutError):
        raise DeadlineExceededError(
            f"{where}: no answer within {budget * 1e3:.1f} ms"
        ) from None

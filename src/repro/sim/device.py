"""IoT traffic sources.

Each device owns an arrival process (from :mod:`repro.workload`), a
task factory, and its routed path to the assigned server; on each
arrival it emits a task into the network fabric.  Generation stops at
the horizon so the run drains cleanly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.model.entities import IoTDevice
from repro.sim.engine import Simulator
from repro.sim.network import NetworkFabric
from repro.sim.server import EdgeServerQueue
from repro.sim.task import Task
from repro.topology.routing import Path
from repro.utils.validation import check_positive
from repro.workload.arrivals import ArrivalProcess
from repro.workload.tasks import TaskFactory


class IoTTrafficSource:
    """Generates this device's tasks and launches them toward its server."""

    def __init__(
        self,
        sim: Simulator,
        device: IoTDevice,
        server_id: int,
        path: Path,
        fabric: NetworkFabric,
        server_queue: EdgeServerQueue,
        arrivals: ArrivalProcess,
        task_factory: TaskFactory,
        rng: np.random.Generator,
        horizon_s: float,
        on_created: "Callable[[Task], None] | None" = None,
        sink: "Callable[[Task], None] | None" = None,
    ) -> None:
        check_positive(horizon_s, "horizon_s")
        self._sim = sim
        self.device = device
        self._server_id = server_id
        self._path = path
        self._fabric = fabric
        self._server_queue = server_queue
        self._arrivals = arrivals
        self._task_factory = task_factory
        self._rng = rng
        self._horizon_s = horizon_s
        self._on_created = on_created
        # where tasks go: default straight to the assigned server's queue;
        # the chaos dispatcher overrides this to own routing and retries
        self._sink = sink if sink is not None else self._forward_to_server
        self.tasks_generated = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._arrivals.next_interval(self._rng)
        next_time = self._sim.now + gap
        if next_time > self._horizon_s:
            return
        self._sim.schedule(gap, self._emit)

    def _emit(self) -> None:
        task = self._task_factory.make(
            device_id=self.device.device_id,
            server_id=self._server_id,
            created_at=self._sim.now,
            deadline_s=self.device.deadline_s,
            rng=self._rng,
        )
        self.tasks_generated += 1
        if self._on_created is not None:
            self._on_created(task)
        self._sink(task)
        self._schedule_next()

    def _forward_to_server(self, task: Task) -> None:
        self._fabric.forward(task, self._path, self._server_queue.submit)

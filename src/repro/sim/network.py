"""Store-and-forward network: per-link FIFO transmitters.

Each *direction* of each link has one transmitter: a packet must wait
for the transmitter to be free (queueing delay), occupies it for
``size_bits / bandwidth_bps`` (transmission delay), then propagates
for ``latency_s + processing_s`` before arriving at the next hop —
propagation is pipelined, so the transmitter frees up as soon as the
last bit is on the wire, like a real output port.

This is where the simulator goes beyond the static delay matrix: under
load, shared links build queues and the *measured* communication delay
exceeds the matrix entry — precisely the effect the F5 experiment
sweeps.

Fault injection adds *link degradation* on top: a degraded port runs at
a fraction of its nominal bandwidth, adds fixed extra propagation
latency, and optionally a per-packet uniform jitter — the knobs the
chaos scenarios use to model flaky edge-cloud links.  An undegraded
fabric behaves exactly as before.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.topology.graph import Link, NetworkGraph
from repro.topology.routing import Path
from repro.utils.validation import check_nonnegative, check_positive, require


class LinkTransmitter:
    """FIFO output port for one direction of one link."""

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        self._sim = sim
        self._link = link
        self._rng = rng
        self._queue: deque[tuple[Task, Callable[[Task], None]]] = deque()
        self._busy = False
        self._bandwidth_factor = 1.0
        self._extra_latency_s = 0.0
        self._jitter_s = 0.0
        self.packets_sent = 0
        self.busy_time = 0.0

    @property
    def degraded(self) -> bool:
        """Whether the port is currently operating below nominal."""
        return (
            self._bandwidth_factor != 1.0
            or self._extra_latency_s > 0.0
            or self._jitter_s > 0.0
        )

    def degrade(
        self,
        bandwidth_factor: float = 1.0,
        extra_latency_s: float = 0.0,
        jitter_s: float = 0.0,
    ) -> None:
        """Throttle the port; in-queue packets feel it from the next send."""
        check_positive(bandwidth_factor, "bandwidth_factor")
        check_nonnegative(extra_latency_s, "extra_latency_s")
        check_nonnegative(jitter_s, "jitter_s")
        require(
            jitter_s == 0.0 or self._rng is not None,
            "jitter requires the fabric to be built with an rng",
        )
        self._bandwidth_factor = bandwidth_factor
        self._extra_latency_s = extra_latency_s
        self._jitter_s = jitter_s

    def restore(self) -> None:
        """Return the port to nominal bandwidth and latency."""
        self._bandwidth_factor = 1.0
        self._extra_latency_s = 0.0
        self._jitter_s = 0.0

    def send(self, task: Task, deliver: Callable[[Task], None]) -> None:
        """Enqueue ``task``; ``deliver`` fires when it reaches the far end."""
        self._queue.append((task, deliver))
        if not self._busy:
            self._transmit_next()

    def _propagation_delay(self) -> float:
        delay = self._link.latency_s + self._link.processing_s + self._extra_latency_s
        if self._jitter_s > 0.0 and self._rng is not None:
            delay += float(self._rng.uniform(0.0, self._jitter_s))
        return delay

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        task, deliver = self._queue.popleft()
        transmission = task.size_bits / (
            self._link.bandwidth_bps * self._bandwidth_factor
        )
        self.busy_time += transmission
        self.packets_sent += 1

        def last_bit_sent() -> None:
            # port frees immediately; delivery lags by propagation + processing
            """Return last bit sent."""
            self._sim.schedule(
                self._propagation_delay(),
                lambda: deliver(task),
            )
            self._transmit_next()

        self._sim.schedule(transmission, last_bit_sent)

    @property
    def queue_length(self) -> int:
        """Return queue length."""
        return len(self._queue)


class NetworkFabric:
    """All transmitters of a topology plus hop-by-hop forwarding."""

    def __init__(
        self,
        sim: Simulator,
        graph: NetworkGraph,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        self._sim = sim
        self._graph = graph
        self._rng = rng
        self._transmitters: dict[tuple[int, int], LinkTransmitter] = {}
        #: degradations to apply to transmitters not yet instantiated
        self._pending_degrade: dict[tuple[int, int], tuple[float, float, float]] = {}

    def _transmitter(self, u: int, v: int) -> LinkTransmitter:
        key = (u, v)
        transmitter = self._transmitters.get(key)
        if transmitter is None:
            transmitter = LinkTransmitter(self._sim, self._graph.link(u, v), self._rng)
            pending = self._pending_degrade.pop(key, None)
            if pending is not None:
                transmitter.degrade(*pending)
            self._transmitters[key] = transmitter
        return transmitter

    def degrade_link(
        self,
        u: int,
        v: int,
        bandwidth_factor: float = 1.0,
        extra_latency_s: float = 0.0,
        jitter_s: float = 0.0,
    ) -> None:
        """Degrade both directions of the ``(u, v)`` link.

        Lazily created transmitters inherit the degradation, so a
        scenario can degrade a link before any traffic crosses it.
        """
        self._graph.link(u, v)  # validates the link exists
        for key in ((u, v), (v, u)):
            transmitter = self._transmitters.get(key)
            if transmitter is not None:
                transmitter.degrade(bandwidth_factor, extra_latency_s, jitter_s)
            else:
                require(
                    jitter_s == 0.0 or self._rng is not None,
                    "jitter requires the fabric to be built with an rng",
                )
                self._pending_degrade[key] = (
                    bandwidth_factor, extra_latency_s, jitter_s,
                )

    def restore_link(self, u: int, v: int) -> None:
        """Return both directions of the ``(u, v)`` link to nominal."""
        for key in ((u, v), (v, u)):
            self._pending_degrade.pop(key, None)
            transmitter = self._transmitters.get(key)
            if transmitter is not None:
                transmitter.restore()

    def degraded_links(self) -> list[tuple[int, int]]:
        """Directions currently operating below nominal."""
        live = [key for key, t in self._transmitters.items() if t.degraded]
        return sorted(live + list(self._pending_degrade))

    def forward(self, task: Task, path: Path, on_arrival: Callable[[Task], None]) -> None:
        """Send ``task`` along ``path``; ``on_arrival`` fires at the last node."""
        nodes = path.nodes
        if len(nodes) <= 1:  # device co-located with server
            self._sim.schedule(0.0, lambda: on_arrival(task))
            return

        def hop(index: int) -> None:
            """Transmit across link ``index`` and chain to the next hop."""
            if index >= len(nodes) - 1:
                on_arrival(task)
                return
            self._transmitter(nodes[index], nodes[index + 1]).send(
                task, lambda t: hop(index + 1)
            )

        hop(0)

    def total_packets_sent(self) -> int:
        """Return total packets sent."""
        return sum(t.packets_sent for t in self._transmitters.values())

    def link_utilization(self, duration: float) -> dict[tuple[int, int], float]:
        """Per-direction fraction of time each used port spent transmitting."""
        if duration <= 0:
            return {}
        return {
            key: transmitter.busy_time / duration
            for key, transmitter in self._transmitters.items()
        }

"""Store-and-forward network: per-link FIFO transmitters.

Each *direction* of each link has one transmitter: a packet must wait
for the transmitter to be free (queueing delay), occupies it for
``size_bits / bandwidth_bps`` (transmission delay), then propagates
for ``latency_s + processing_s`` before arriving at the next hop —
propagation is pipelined, so the transmitter frees up as soon as the
last bit is on the wire, like a real output port.

This is where the simulator goes beyond the static delay matrix: under
load, shared links build queues and the *measured* communication delay
exceeds the matrix entry — precisely the effect the F5 experiment
sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.topology.graph import Link, NetworkGraph
from repro.topology.routing import Path


class LinkTransmitter:
    """FIFO output port for one direction of one link."""

    def __init__(self, sim: Simulator, link: Link) -> None:
        self._sim = sim
        self._link = link
        self._queue: deque[tuple[Task, Callable[[Task], None]]] = deque()
        self._busy = False
        self.packets_sent = 0
        self.busy_time = 0.0

    def send(self, task: Task, deliver: Callable[[Task], None]) -> None:
        """Enqueue ``task``; ``deliver`` fires when it reaches the far end."""
        self._queue.append((task, deliver))
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        task, deliver = self._queue.popleft()
        transmission = task.size_bits / self._link.bandwidth_bps
        self.busy_time += transmission
        self.packets_sent += 1

        def last_bit_sent() -> None:
            # port frees immediately; delivery lags by propagation + processing
            """Return last bit sent."""
            self._sim.schedule(
                self._link.latency_s + self._link.processing_s,
                lambda: deliver(task),
            )
            self._transmit_next()

        self._sim.schedule(transmission, last_bit_sent)

    @property
    def queue_length(self) -> int:
        """Return queue length."""
        return len(self._queue)


class NetworkFabric:
    """All transmitters of a topology plus hop-by-hop forwarding."""

    def __init__(self, sim: Simulator, graph: NetworkGraph) -> None:
        self._sim = sim
        self._graph = graph
        self._transmitters: dict[tuple[int, int], LinkTransmitter] = {}

    def _transmitter(self, u: int, v: int) -> LinkTransmitter:
        key = (u, v)
        transmitter = self._transmitters.get(key)
        if transmitter is None:
            transmitter = LinkTransmitter(self._sim, self._graph.link(u, v))
            self._transmitters[key] = transmitter
        return transmitter

    def forward(self, task: Task, path: Path, on_arrival: Callable[[Task], None]) -> None:
        """Send ``task`` along ``path``; ``on_arrival`` fires at the last node."""
        nodes = path.nodes
        if len(nodes) <= 1:  # device co-located with server
            self._sim.schedule(0.0, lambda: on_arrival(task))
            return

        def hop(index: int) -> None:
            """Return hop."""
            if index >= len(nodes) - 1:
                on_arrival(task)
                return
            self._transmitter(nodes[index], nodes[index + 1]).send(
                task, lambda t: hop(index + 1)
            )

        hop(0)

    def total_packets_sent(self) -> int:
        """Return total packets sent."""
        return sum(t.packets_sent for t in self._transmitters.values())

    def link_utilization(self, duration: float) -> dict[tuple[int, int], float]:
        """Per-direction fraction of time each used port spent transmitting."""
        if duration <= 0:
            return {}
        return {
            key: transmitter.busy_time / duration
            for key, transmitter in self._transmitters.items()
        }

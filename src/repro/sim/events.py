"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, seq)``: the monotonically increasing
sequence number makes ordering total and deterministic — two events
scheduled for the same instant fire in scheduling order, which is what
keeps whole simulations reproducible from a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback; comparison uses only (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as dead; the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Binary-heap future-event list."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Enqueue ``callback`` to fire at ``time``; returns a cancellable handle."""
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> "float | None":
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    @property
    def approx_len(self) -> int:
        """Heap size including cancelled events — O(1), for telemetry."""
        return len(self._heap)

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

"""The unit of simulated work: one IoT message/task.

Created at a device, forwarded hop-by-hop over the network, processed
at an edge server.  Timestamps are filled in as the task moves; the
metrics recorder derives every latency statistic from them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass
class Task:
    """One message from an IoT device to its assigned edge server."""

    task_id: int
    device_id: int
    server_id: int
    size_bits: float
    compute_units: float
    created_at: float
    deadline_s: "float | None" = None
    arrived_at: "float | None" = None
    completed_at: "float | None" = None

    def __post_init__(self) -> None:
        check_positive(self.size_bits, "size_bits")
        check_positive(self.compute_units, "compute_units")

    @property
    def network_latency(self) -> "float | None":
        """Device-to-server communication delay (the paper's quantity)."""
        if self.arrived_at is None:
            return None
        return self.arrived_at - self.created_at

    @property
    def total_latency(self) -> "float | None":
        """End-to-end latency including server queueing and processing."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    @property
    def missed_deadline(self) -> "bool | None":
        """Whether the task finished after its deadline (None = no deadline)."""
        if self.deadline_s is None:
            return None
        if self.completed_at is None:
            return True  # never completed counts as missed
        return self.total_latency > self.deadline_s

"""Edge-server processing queues.

A server is a single FIFO service station: tasks arrive from the
network, wait for the processor, and hold it for
``compute_units / service_rate`` seconds (optionally exponentially
distributed around that mean, giving M/M/1-like behaviour per server).
Server queueing is what turns an *overloaded* assignment into visibly
unbounded latency in the F5 experiment — the dynamic counterpart of
the paper's static capacity constraint.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.model.entities import EdgeServer
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.task import Task
from repro.utils.validation import require


class EdgeServerQueue:
    """FIFO single-processor queue for one edge server."""

    def __init__(
        self,
        sim: Simulator,
        server: EdgeServer,
        rng: np.random.Generator,
        service: str = "exponential",
        on_complete: "Callable[[Task], None] | None" = None,
    ) -> None:
        require(service in ("exponential", "deterministic"), f"unknown service {service!r}")
        self._sim = sim
        self.server = server
        self._rng = rng
        self._service = service
        self._on_complete = on_complete
        self._queue: deque[Task] = deque()
        self._busy = False
        self.tasks_completed = 0
        self.busy_time = 0.0
        # bound once at construction; a no-op when observability is off
        self._wait_hist = obs_runtime.metrics().histogram(
            obs_names.SIM_QUEUE_WAIT, {"server": str(server.server_id)}
        )

    def submit(self, task: Task) -> None:
        """Task arrived over the network; queue it for processing."""
        task.arrived_at = self._sim.now
        self._queue.append(task)
        if not self._busy:
            self._serve_next()

    def _service_time(self, task: Task) -> float:
        mean = task.compute_units / self.server.service_rate
        if self._service == "deterministic":
            return mean
        return float(self._rng.exponential(mean))

    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        task = self._queue.popleft()
        self._wait_hist.observe(self._sim.now - task.arrived_at)
        service_time = self._service_time(task)
        self.busy_time += service_time

        def finish() -> None:
            """Return finish."""
            task.completed_at = self._sim.now
            self.tasks_completed += 1
            if self._on_complete is not None:
                self._on_complete(task)
            self._serve_next()

        self._sim.schedule(service_time, finish)

    @property
    def queue_length(self) -> int:
        """Return queue length."""
        return len(self._queue)

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the processor was busy."""
        return self.busy_time / duration if duration > 0 else 0.0

"""Edge-server processing queues.

A server is a single FIFO service station: tasks arrive from the
network, wait for the processor, and hold it for
``compute_units / service_rate`` seconds (optionally exponentially
distributed around that mean, giving M/M/1-like behaviour per server).
Server queueing is what turns an *overloaded* assignment into visibly
unbounded latency in the F5 experiment — the dynamic counterpart of
the paper's static capacity constraint.

For the fault-injection experiments the queue also models the server's
*lifecycle*: it can crash (:meth:`EdgeServerQueue.fail`) — cancelling
the in-service event and losing or parking queued work per the crash
policy — recover (:meth:`EdgeServerQueue.recover`), run as a straggler
(:meth:`EdgeServerQueue.set_speed_factor`), and withdraw individual
tasks (:meth:`EdgeServerQueue.withdraw`, the timeout path).  All of
this is inert in the fault-free simulation: a queue that is never
failed behaves exactly as before.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.model.entities import EdgeServer
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.task import Task
from repro.utils.validation import check_positive, require

#: what happens to queued (not yet in service) tasks when the server crashes
CRASH_POLICIES = ("drop", "requeue")


class EdgeServerQueue:
    """FIFO single-processor queue for one edge server."""

    def __init__(
        self,
        sim: Simulator,
        server: EdgeServer,
        rng: np.random.Generator,
        service: str = "exponential",
        on_complete: "Callable[[Task], None] | None" = None,
        on_failed: "Callable[[Task, str], None] | None" = None,
        admit: "Callable[[Task], bool] | None" = None,
        crash_policy: str = "drop",
    ) -> None:
        require(service in ("exponential", "deterministic"), f"unknown service {service!r}")
        require(
            crash_policy in CRASH_POLICIES,
            f"unknown crash_policy {crash_policy!r}; known: {CRASH_POLICIES}",
        )
        self._sim = sim
        self.server = server
        self._rng = rng
        self._service = service
        self._on_complete = on_complete
        self._on_failed = on_failed
        self._admit = admit
        self._crash_policy = crash_policy
        self._queue: deque[Task] = deque()
        self._busy = False
        self._up = True
        self._speed_factor = 1.0
        self._in_service: "Task | None" = None
        self._service_event: "Event | None" = None
        self._service_ends_at = 0.0
        self.tasks_completed = 0
        self.tasks_rejected = 0
        self.busy_time = 0.0
        # bound once at construction; a no-op when observability is off
        self._wait_hist = obs_runtime.metrics().histogram(
            obs_names.SIM_QUEUE_WAIT, {"server": str(server.server_id)}
        )

    def bind(
        self,
        on_complete: "Callable[[Task], None] | None" = None,
        on_failed: "Callable[[Task, str], None] | None" = None,
        admit: "Callable[[Task], bool] | None" = None,
    ) -> None:
        """Rewire lifecycle callbacks after construction.

        The fault runner builds queues before the dispatcher that
        handles their failures exists; this closes the loop.
        """
        if on_complete is not None:
            self._on_complete = on_complete
        if on_failed is not None:
            self._on_failed = on_failed
        if admit is not None:
            self._admit = admit

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        """Whether the server is currently accepting and serving tasks."""
        return self._up

    @property
    def speed_factor(self) -> float:
        """Service-rate multiplier (1.0 = nominal, <1 = straggler)."""
        return self._speed_factor

    def set_speed_factor(self, factor: float) -> None:
        """Scale the service rate; the in-service task is unaffected."""
        check_positive(factor, "speed_factor")
        self._speed_factor = factor

    def fail(self) -> None:
        """Crash: abort in-service work, lose or park queued tasks.

        The in-service task is always lost (its service event is
        cancelled).  Queued tasks are lost under the ``drop`` crash
        policy or kept for post-repair service under ``requeue``.
        Every lost task is reported through ``on_failed``.
        """
        if not self._up:
            return
        self._up = False
        victims: list[tuple[Task, str]] = []
        if self._in_service is not None:
            victims.append((self._in_service, "crashed_in_service"))
            self._abort_service()
        if self._crash_policy == "drop":
            while self._queue:
                victims.append((self._queue.popleft(), "crashed_queued"))
        self._busy = False
        for task, reason in victims:
            self._reject(task, reason)

    def recover(self) -> None:
        """Repair: resume serving whatever survived the crash."""
        if self._up:
            return
        self._up = True
        if not self._busy:
            self._serve_next()

    def withdraw(self, task: Task) -> bool:
        """Remove ``task`` from the station (the timeout/cancel path).

        Returns True when the task was queued (removed) or in service
        (its service event is cancelled and the processor moves on).
        """
        try:
            self._queue.remove(task)
            return True
        except ValueError:
            pass
        if task is self._in_service:
            self._abort_service()
            self._busy = False
            self._serve_next()
            return True
        return False

    def _abort_service(self) -> None:
        if self._service_event is not None:
            self._service_event.cancel()
            # the processor never ran the remainder; refund it
            self.busy_time -= max(0.0, self._service_ends_at - self._sim.now)
        self._service_event = None
        self._in_service = None

    def _reject(self, task: Task, reason: str) -> None:
        self.tasks_rejected += 1
        if self._on_failed is not None:
            self._on_failed(task, reason)

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Task arrived over the network; queue it for processing."""
        if self._admit is not None and not self._admit(task):
            return  # stale duplicate of a retried task: silently dropped
        task.arrived_at = self._sim.now
        if not self._up:
            self._reject(task, "server_down")
            return
        self._queue.append(task)
        if not self._busy:
            self._serve_next()

    def _service_time(self, task: Task) -> float:
        mean = task.compute_units / (self.server.service_rate * self._speed_factor)
        if self._service == "deterministic":
            return mean
        return float(self._rng.exponential(mean))

    def _serve_next(self) -> None:
        if not self._up or not self._queue:
            self._busy = False
            return
        self._busy = True
        task = self._queue.popleft()
        self._wait_hist.observe(self._sim.now - task.arrived_at)
        service_time = self._service_time(task)
        self.busy_time += service_time
        self._in_service = task
        self._service_ends_at = self._sim.now + service_time

        def finish() -> None:
            """Service done: stamp completion and pull the next task."""
            self._in_service = None
            self._service_event = None
            task.completed_at = self._sim.now
            self.tasks_completed += 1
            if self._on_complete is not None:
                self._on_complete(task)
            self._serve_next()

        self._service_event = self._sim.schedule(service_time, finish)

    @property
    def queue_length(self) -> int:
        """Return queue length."""
        return len(self._queue)

    def utilization(self, duration: float) -> float:
        """Fraction of ``duration`` the processor was busy."""
        return self.busy_time / duration if duration > 0 else 0.0

"""Trace replay: the same workload against different assignments.

Independent seeded runs compare assignments with sampling noise on top;
replaying one materialized :class:`~repro.workload.traces.Trace` gives a
*paired* comparison — both assignments see byte-identical tasks at
identical instants, so any difference in measured latency is due to the
assignment alone.  This is the low-variance mode the F5 analysis in
EXPERIMENTS.md cross-checks against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.model.solution import Assignment
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder, SimReport
from repro.sim.network import NetworkFabric
from repro.sim.server import EdgeServerQueue
from repro.sim.task import Task
from repro.topology.delay import TransmissionDelayModel
from repro.topology.routing import routing_paths
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_nonnegative
from repro.workload.traces import Trace


def replay_trace(
    assignment: Assignment,
    trace: Trace,
    seed: int = 0,
    drain_s: float = 5.0,
    service: str = "deterministic",
) -> SimReport:
    """Replay ``trace`` through ``assignment``'s network and servers.

    The default *deterministic* service keeps the entire run free of
    randomness except what the trace itself encodes, making replays of
    two assignments exactly paired.  ``seed`` only matters with
    ``service="exponential"``.
    """
    problem = assignment.problem
    if problem.graph is None or problem.devices is None or problem.servers is None:
        raise ValidationError("trace replay requires a topology-backed problem")
    if not assignment.is_complete:
        raise ValidationError("cannot replay a trace over a partial assignment")
    check_nonnegative(drain_s, "drain_s")
    device_by_id = {d.device_id: d for d in problem.devices}
    for entry in trace.entries:
        if entry.device_id not in device_by_id:
            raise ValidationError(
                f"trace references unknown device {entry.device_id}"
            )

    sim = Simulator()
    recorder = MetricsRecorder()
    fabric = NetworkFabric(sim, problem.graph)
    delay_model = TransmissionDelayModel()

    queues: list[EdgeServerQueue] = []
    for server in problem.servers:
        queues.append(
            EdgeServerQueue(
                sim,
                server,
                rng=make_rng(derive_seed(seed, "server", server.server_id)),
                service=service,
                on_complete=recorder.on_completed,
            )
        )

    # routing: one Dijkstra per server, shared across its devices
    vector = assignment.vector
    paths: dict[int, object] = {}
    for server_index, server in enumerate(problem.servers):
        assigned = np.flatnonzero(vector == server_index)
        if assigned.size == 0:
            continue
        nodes = [problem.devices[int(i)].node_id for i in assigned]
        per_server = routing_paths(
            problem.graph, nodes, server.node_id, delay_model.link_weight
        )
        for device_index in assigned:
            node = problem.devices[int(device_index)].node_id
            paths[int(device_index)] = per_server[node]

    for task_id, entry in enumerate(trace.entries):
        device = device_by_id[entry.device_id]
        server_index = int(vector[device.device_id])
        task = Task(
            task_id=task_id,
            device_id=device.device_id,
            server_id=problem.servers[server_index].server_id,
            size_bits=entry.size_bits,
            compute_units=entry.compute_units,
            created_at=entry.time_s,
            deadline_s=device.deadline_s,
        )
        queue = queues[server_index]
        path = paths[device.device_id]

        def launch(task=task, path=path, queue=queue) -> None:
            """Return launch."""
            recorder.on_created(task)
            fabric.forward(task, path, queue.submit)

        sim.schedule_at(entry.time_s, launch)

    sim.run(until=trace.horizon_s + drain_s)
    return recorder.report(
        duration_s=trace.horizon_s,
        server_utilization=[q.utilization(trace.horizon_s) for q in queues],
    )


def paired_comparison(
    baseline: Assignment,
    candidate: Assignment,
    trace: Trace,
    seed: int = 0,
) -> dict[str, float]:
    """Replay one trace through two assignments and report the deltas.

    Returns a dict with both means and the candidate-minus-baseline
    differences (negative = candidate faster).
    """
    if baseline.problem is not candidate.problem:
        raise ValidationError("paired comparison requires assignments of one problem")
    base_report = replay_trace(baseline, trace, seed=seed)
    cand_report = replay_trace(candidate, trace, seed=seed)
    return {
        "baseline_mean_network_ms": base_report.mean_network_latency_ms,
        "candidate_mean_network_ms": cand_report.mean_network_latency_ms,
        "delta_mean_network_ms": (
            cand_report.mean_network_latency_ms - base_report.mean_network_latency_ms
        ),
        "baseline_p99_total_ms": base_report.p99_total_latency_ms,
        "candidate_p99_total_ms": cand_report.p99_total_latency_ms,
        "delta_p99_total_ms": (
            cand_report.p99_total_latency_ms - base_report.p99_total_latency_ms
        ),
    }

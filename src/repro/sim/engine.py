"""The discrete-event simulation core.

Minimal by design: a clock, a future-event list, and a run loop.  All
domain behaviour (links, servers, sources) lives in components that
schedule callbacks on the shared :class:`Simulator`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.events import Event, EventQueue
from repro.utils.validation import check_nonnegative, require


class Simulator:
    """Event loop with a virtual clock (seconds)."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Return events processed."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Fire ``callback`` after ``delay`` seconds of virtual time."""
        check_nonnegative(delay, "delay")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Fire ``callback`` at absolute virtual ``time`` (not in the past)."""
        require(time >= self._now, f"cannot schedule at {time} before now={self._now}")
        return self._queue.push(time, callback)

    def run(self, until: "float | None" = None, max_events: int = 50_000_000) -> None:
        """Process events in order until the queue drains or ``until``.

        Events scheduled exactly at ``until`` still fire.  The event
        budget guards against runaway feedback loops (a component that
        schedules itself at zero delay).
        """
        if until is not None:
            check_nonnegative(until, "until")
        # local instrument handles: one no-op attribute call per event
        # when observability is off
        registry = obs_runtime.metrics()
        events_total = registry.counter(obs_names.SIM_EVENTS)
        depth_hist = registry.histogram(obs_names.SIM_EVENT_QUEUE_DEPTH)
        processed = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            if event.time < self._now:  # pragma: no cover - defensive
                raise SimulationError(
                    f"time went backwards: event at {event.time} < now {self._now}"
                )
            self._now = event.time
            event.callback()
            processed += 1
            self._events_processed += 1
            events_total.inc()
            depth_hist.observe(self._queue.approx_len)
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a zero-delay loop"
                )
        if until is not None and self._now < until:
            self._now = until

"""One-call replay of a solved assignment as live traffic.

:func:`simulate_assignment` builds the whole simulation — fabric,
server queues, traffic sources, recorder — from a topology-backed
problem and a complete assignment, runs it for the requested horizon
plus a drain period, and returns the :class:`~repro.sim.metrics.SimReport`.

This is the bridge the F5 experiment crosses: solver results computed
on the static delay matrix are fed back in here, and the *measured*
latencies and deadline misses are what the figure reports.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.obs import names as obs_names
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRecorder, SimReport
from repro.sim.network import NetworkFabric
from repro.sim.server import EdgeServerQueue
from repro.sim.device import IoTTrafficSource
from repro.topology.delay import TransmissionDelayModel
from repro.topology.routing import routing_paths
from repro.utils.rng import derive_seed, make_rng
from repro.utils.validation import check_nonnegative, check_positive, require
from repro.workload.arrivals import ArrivalProcess, PoissonProcess
from repro.workload.tasks import TaskFactory


def simulate_assignment(
    assignment: Assignment,
    duration_s: float = 60.0,
    seed: int = 0,
    rate_scale: float = 1.0,
    drain_s: float = 5.0,
    service: str = "exponential",
    task_factory: "TaskFactory | None" = None,
    arrivals: "dict[int, ArrivalProcess] | None" = None,
    warmup_s: float = 0.0,
) -> SimReport:
    """Simulate ``assignment`` for ``duration_s`` of virtual time.

    Parameters
    ----------
    assignment:
        A complete assignment over a topology-backed problem (one built
        by :func:`~repro.model.instances.topology_instance`).
    rate_scale:
        Multiplies every device's arrival rate — the load knob of the
        deadline-miss sweep.
    drain_s:
        Extra virtual time after generation stops so in-flight tasks
        can finish; their latencies are still recorded.
    service:
        ``"exponential"`` (M/M/1-like servers) or ``"deterministic"``.
    arrivals:
        Optional per-device arrival-process overrides (device_id →
        process); other devices default to Poisson at their entity rate.
    warmup_s:
        Tasks created before this instant are excluded from the
        latency/deadline statistics (standard transient removal).
    """
    problem = assignment.problem
    if problem.graph is None or problem.devices is None or problem.servers is None:
        raise ValidationError(
            "simulation requires a topology-backed problem (use topology_instance)"
        )
    if not assignment.is_complete:
        raise ValidationError("cannot simulate a partial assignment")
    check_positive(duration_s, "duration_s")
    check_positive(rate_scale, "rate_scale")
    check_nonnegative(drain_s, "drain_s")
    check_nonnegative(warmup_s, "warmup_s")
    require(warmup_s < duration_s, "warmup_s must be shorter than duration_s")

    sim = Simulator()
    recorder = MetricsRecorder(warmup_s=warmup_s)
    fabric = NetworkFabric(sim, problem.graph)
    delay_model = TransmissionDelayModel()

    queues: list[EdgeServerQueue] = []
    for server in problem.servers:
        queues.append(
            EdgeServerQueue(
                sim,
                server,
                rng=make_rng(derive_seed(seed, "server", server.server_id)),
                service=service,
                on_complete=recorder.on_completed,
            )
        )

    # one Dijkstra per server covers every device assigned to it
    factory = task_factory if task_factory is not None else TaskFactory()
    sources: list[IoTTrafficSource] = []
    vector = assignment.vector
    for server_index, server in enumerate(problem.servers):
        assigned = np.flatnonzero(vector == server_index)
        if assigned.size == 0:
            continue
        device_nodes = [problem.devices[int(i)].node_id for i in assigned]
        paths = routing_paths(
            problem.graph, device_nodes, server.node_id, delay_model.link_weight
        )
        for device_index in assigned:
            device = problem.devices[int(device_index)]
            process = (arrivals or {}).get(device.device_id) or PoissonProcess(
                device.rate_hz * rate_scale
            )
            if arrivals and device.device_id in arrivals and rate_scale != 1.0:
                # overridden processes are used as-is; scaling them too
                # would double-apply the load knob
                process = arrivals[device.device_id]
            sources.append(
                IoTTrafficSource(
                    sim=sim,
                    device=device,
                    server_id=server.server_id,
                    path=paths[device.node_id],
                    fabric=fabric,
                    server_queue=queues[server_index],
                    arrivals=process,
                    task_factory=factory,
                    rng=make_rng(derive_seed(seed, "device", device.device_id)),
                    horizon_s=duration_s,
                    on_created=recorder.on_created,
                )
            )

    with obs_runtime.tracer().span(
        obs_names.SPAN_SIM_RUN, duration_s=duration_s, sources=len(sources)
    ):
        for source in sources:
            source.start()
        sim.run(until=duration_s + drain_s)

    if recorder.tasks_completed_total > recorder.tasks_created:
        raise SimulationError(
            f"conservation violated: {recorder.tasks_completed_total} completed "
            f"> {recorder.tasks_created} created"
        )
    registry = obs_runtime.metrics()
    registry.counter(obs_names.SIM_TASKS_CREATED).inc(recorder.tasks_created)
    registry.counter(obs_names.SIM_TASKS_COMPLETED).inc(recorder.tasks_completed_total)
    utilizations = [q.utilization(duration_s) for q in queues]
    if registry.enabled:
        link_hist = registry.histogram(obs_names.SIM_LINK_UTILIZATION)
        for value in fabric.link_utilization(duration_s).values():
            link_hist.observe(value)
        for queue, value in zip(queues, utilizations):
            registry.gauge(
                obs_names.SIM_SERVER_UTILIZATION,
                {"server": str(queue.server.server_id)},
            ).set(value)
    return recorder.report(
        duration_s=duration_s,
        server_utilization=utilizations,
    )

"""Measurement: what the simulated deployment actually experienced.

:class:`MetricsRecorder` hooks task creation and completion;
:class:`SimReport` is the frozen result the benchmarks tabulate.
Latency percentiles are computed from the full per-task sample (runs
are minutes of virtual time, so the sample fits comfortably); rolling
:class:`~repro.utils.stats.OnlineStats` back the conservation checks.

Latencies are *snapshotted as floats at completion time* rather than
kept as live ``Task`` references: under retry/failover a stale copy of
a re-dispatched task can still be in flight inside a link queue and
later overwrite the task's timestamps — a float snapshot is immune.

For the fault experiments the recorder also counts the task-lifecycle
events (timeouts, retries, failovers, losses) and, when built with a
``window_s``, buckets creations/completions into fixed windows of
*creation* time so :meth:`MetricsRecorder.goodput_timeline` can show
exactly when a crash dents throughput and how fast a policy recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sim.task import Task
from repro.utils.stats import Summary, summarize


@dataclass(frozen=True)
class SimReport:
    """Aggregated outcome of one simulation run."""

    duration_s: float
    tasks_created: int
    tasks_completed: int
    network_latency: Summary
    total_latency: Summary
    deadline_miss_rate: "float | None"
    server_utilization: "tuple[float, ...]"
    mean_network_latency_ms: float
    p99_total_latency_ms: float
    # fault-injection lifecycle counters; all zero in a fault-free run
    tasks_lost: int = 0
    timeouts: int = 0
    retries: int = 0
    failovers: int = 0
    goodput: float = 1.0
    goodput_timeline: "tuple[tuple[float, float], ...]" = field(default=())

    def as_dict(self) -> dict:
        """Flat dict for tables/JSON."""
        return {
            "duration_s": self.duration_s,
            "tasks_created": self.tasks_created,
            "tasks_completed": self.tasks_completed,
            "mean_network_latency_ms": self.mean_network_latency_ms,
            "p99_total_latency_ms": self.p99_total_latency_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "max_server_utilization": max(self.server_utilization)
            if self.server_utilization
            else float("nan"),
            "tasks_lost": self.tasks_lost,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failovers": self.failovers,
            "goodput": self.goodput,
        }


class MetricsRecorder:
    """Collects per-task outcomes during a run.

    ``warmup_s`` implements the standard DES transient cut: tasks
    *created* before the warm-up boundary are counted for conservation
    but excluded from every latency/deadline statistic, so measurements
    reflect steady state rather than the empty-system start.

    ``window_s``, when set, additionally buckets tasks by creation time
    into fixed windows for :meth:`goodput_timeline`.
    """

    def __init__(self, warmup_s: float = 0.0, window_s: "float | None" = None) -> None:
        if warmup_s < 0:
            raise SimulationError(f"warmup_s must be >= 0, got {warmup_s}")
        if window_s is not None and window_s <= 0:
            raise SimulationError(f"window_s must be > 0, got {window_s}")
        self.warmup_s = warmup_s
        self.window_s = window_s
        self.tasks_created = 0
        self.tasks_completed_total = 0
        self.tasks_lost = 0
        self.timeouts = 0
        self.retries = 0
        self.failovers = 0
        #: (created_at, network_latency, total_latency) per measured task
        self._completed: list[tuple[float, float, float]] = []
        self._deadline_tasks = 0
        self._deadline_misses = 0
        self._window_created: dict[int, int] = {}
        self._window_completed: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _window(self, created_at: float) -> int:
        assert self.window_s is not None
        return int(created_at // self.window_s)

    def on_created(self, task: Task) -> None:
        """Return on created."""
        self.tasks_created += 1
        if self.window_s is not None:
            index = self._window(task.created_at)
            self._window_created[index] = self._window_created.get(index, 0) + 1

    def on_completed(self, task: Task) -> None:
        """Return on completed."""
        if task.completed_at is None or task.arrived_at is None:
            raise SimulationError(f"task {task.task_id} completed without timestamps")
        self.tasks_completed_total += 1
        if self.window_s is not None:
            index = self._window(task.created_at)
            self._window_completed[index] = self._window_completed.get(index, 0) + 1
        if task.created_at < self.warmup_s:
            return  # transient: conserved but not measured
        self._completed.append(
            (task.created_at, task.network_latency, task.total_latency)
        )
        if task.deadline_s is not None:
            self._deadline_tasks += 1
            if task.missed_deadline:
                self._deadline_misses += 1

    # ------------------------------------------------------------------
    # fault-lifecycle hooks (wired by the chaos dispatcher)
    # ------------------------------------------------------------------
    def on_timeout(self, task: Task) -> None:
        """An in-flight attempt exceeded its timeout."""
        self.timeouts += 1

    def on_retry(self, task: Task) -> None:
        """A failed task was re-sent to the same server."""
        self.retries += 1

    def on_failover(self, task: Task) -> None:
        """A failed task was re-dispatched to an alternate server."""
        self.failovers += 1

    def on_lost(self, task: Task) -> None:
        """A task exhausted its retry budget (or had none); it is gone."""
        self.tasks_lost += 1

    # ------------------------------------------------------------------
    @property
    def tasks_completed(self) -> int:
        """Return tasks completed."""
        return len(self._completed)

    def network_latencies(self) -> np.ndarray:
        """Return network latencies."""
        return np.array([s[1] for s in self._completed], dtype=np.float64)

    def total_latencies(self) -> np.ndarray:
        """Return total latencies."""
        return np.array([s[2] for s in self._completed], dtype=np.float64)

    def goodput(self) -> float:
        """Fraction of created tasks that eventually completed."""
        if self.tasks_created == 0:
            return 1.0
        return self.tasks_completed_total / self.tasks_created

    def goodput_timeline(self) -> "tuple[tuple[float, float], ...]":
        """Per-window ``(window_start_s, completed/created)`` pairs.

        Tasks are attributed to the window of their *creation* time, so
        a crash that loses work dents exactly the windows in which the
        lost tasks were born — the recovery curve the X6 experiment
        plots.  Empty without ``window_s``.
        """
        if self.window_s is None or not self._window_created:
            return ()
        return tuple(
            (
                index * self.window_s,
                self._window_completed.get(index, 0) / created,
            )
            for index, created in sorted(self._window_created.items())
        )

    def report(
        self,
        duration_s: float,
        server_utilization: "list[float] | None" = None,
    ) -> SimReport:
        """Freeze the run into a :class:`SimReport`."""
        network = summarize(self.network_latencies())
        total = summarize(self.total_latencies())
        miss_rate = (
            self._deadline_misses / self._deadline_tasks if self._deadline_tasks else None
        )
        return SimReport(
            duration_s=duration_s,
            tasks_created=self.tasks_created,
            tasks_completed=self.tasks_completed,
            network_latency=network,
            total_latency=total,
            deadline_miss_rate=miss_rate,
            server_utilization=tuple(server_utilization or ()),
            mean_network_latency_ms=network.mean * 1e3,
            p99_total_latency_ms=total.p99 * 1e3,
            tasks_lost=self.tasks_lost,
            timeouts=self.timeouts,
            retries=self.retries,
            failovers=self.failovers,
            goodput=self.goodput(),
            goodput_timeline=self.goodput_timeline(),
        )

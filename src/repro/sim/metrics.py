"""Measurement: what the simulated deployment actually experienced.

:class:`MetricsRecorder` hooks task creation and completion;
:class:`SimReport` is the frozen result the benchmarks tabulate.
Latency percentiles are computed from the full per-task sample (runs
are minutes of virtual time, so the sample fits comfortably); rolling
:class:`~repro.utils.stats.OnlineStats` back the conservation checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sim.task import Task
from repro.utils.stats import Summary, summarize


@dataclass(frozen=True)
class SimReport:
    """Aggregated outcome of one simulation run."""

    duration_s: float
    tasks_created: int
    tasks_completed: int
    network_latency: Summary
    total_latency: Summary
    deadline_miss_rate: "float | None"
    server_utilization: "tuple[float, ...]"
    mean_network_latency_ms: float
    p99_total_latency_ms: float

    def as_dict(self) -> dict:
        """Flat dict for tables/JSON."""
        return {
            "duration_s": self.duration_s,
            "tasks_created": self.tasks_created,
            "tasks_completed": self.tasks_completed,
            "mean_network_latency_ms": self.mean_network_latency_ms,
            "p99_total_latency_ms": self.p99_total_latency_ms,
            "deadline_miss_rate": self.deadline_miss_rate,
            "max_server_utilization": max(self.server_utilization)
            if self.server_utilization
            else float("nan"),
        }


class MetricsRecorder:
    """Collects per-task outcomes during a run.

    ``warmup_s`` implements the standard DES transient cut: tasks
    *created* before the warm-up boundary are counted for conservation
    but excluded from every latency/deadline statistic, so measurements
    reflect steady state rather than the empty-system start.
    """

    def __init__(self, warmup_s: float = 0.0) -> None:
        if warmup_s < 0:
            raise SimulationError(f"warmup_s must be >= 0, got {warmup_s}")
        self.warmup_s = warmup_s
        self.tasks_created = 0
        self.tasks_completed_total = 0
        self._completed: list[Task] = []
        self._deadline_tasks = 0
        self._deadline_misses = 0

    # ------------------------------------------------------------------
    def on_created(self, task: Task) -> None:
        """Return on created."""
        self.tasks_created += 1

    def on_completed(self, task: Task) -> None:
        """Return on completed."""
        if task.completed_at is None or task.arrived_at is None:
            raise SimulationError(f"task {task.task_id} completed without timestamps")
        self.tasks_completed_total += 1
        if task.created_at < self.warmup_s:
            return  # transient: conserved but not measured
        self._completed.append(task)
        if task.deadline_s is not None:
            self._deadline_tasks += 1
            if task.missed_deadline:
                self._deadline_misses += 1

    # ------------------------------------------------------------------
    @property
    def tasks_completed(self) -> int:
        """Return tasks completed."""
        return len(self._completed)

    def network_latencies(self) -> np.ndarray:
        """Return network latencies."""
        return np.array([t.network_latency for t in self._completed], dtype=np.float64)

    def total_latencies(self) -> np.ndarray:
        """Return total latencies."""
        return np.array([t.total_latency for t in self._completed], dtype=np.float64)

    def report(
        self,
        duration_s: float,
        server_utilization: "list[float] | None" = None,
    ) -> SimReport:
        """Freeze the run into a :class:`SimReport`."""
        network = summarize(self.network_latencies())
        total = summarize(self.total_latencies())
        miss_rate = (
            self._deadline_misses / self._deadline_tasks if self._deadline_tasks else None
        )
        return SimReport(
            duration_s=duration_s,
            tasks_created=self.tasks_created,
            tasks_completed=self.tasks_completed,
            network_latency=network,
            total_latency=total,
            deadline_miss_rate=miss_rate,
            server_utilization=tuple(server_utilization or ()),
            mean_network_latency_ms=network.mean * 1e3,
            p99_total_latency_ms=total.p99 * 1e3,
        )

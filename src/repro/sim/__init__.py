"""Discrete-event simulation of an edge deployment.

The optimization layer works on a *static* delay matrix; this package
answers the follow-up question every systems reviewer asks: do static
wins survive contact with queueing?  It replays an assignment as
actual traffic — Poisson/periodic/bursty arrivals at IoT devices,
store-and-forward transmission with per-link FIFO queues along the
routed path, FIFO processing queues at edge servers — and measures
end-to-end latency, deadline miss rate and server utilization.

* :mod:`repro.sim.events` / :mod:`repro.sim.engine` — event queue and
  simulation core;
* :mod:`repro.sim.network` — link transmitters and hop-by-hop
  forwarding;
* :mod:`repro.sim.server` — edge-server processing queues;
* :mod:`repro.sim.device` — IoT traffic sources;
* :mod:`repro.sim.metrics` — latency/miss/utilization recording;
* :mod:`repro.sim.runner` — one-call replay of a solved assignment.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.metrics import MetricsRecorder, SimReport
from repro.sim.runner import simulate_assignment
from repro.sim.trace_runner import paired_comparison, replay_trace

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "MetricsRecorder",
    "SimReport",
    "simulate_assignment",
    "paired_comparison",
    "replay_trace",
]

"""Quickstart: build an edge deployment, configure it, validate it.

Walks the full pipeline in ~30 lines of API:

1. generate a topology-backed assignment instance,
2. solve it with the paper's TACC agent and two baselines,
3. replay the best assignment in the discrete-event simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.solvers.lp import lp_lower_bound
from repro.utils.tables import format_table


def main() -> None:
    # 1. a city-scale deployment: 50 routers, 60 IoT devices, 6 edge servers
    problem = repro.topology_instance(
        family="random_geometric",
        n_routers=50,
        n_devices=60,
        n_servers=6,
        tightness=0.8,
        seed=42,
        deadline_s=0.05,
    )
    print(problem)
    print(f"LP lower bound: {lp_lower_bound(problem) * 1e3:.2f} ms total delay\n")

    # 2. configure the cluster three ways
    rows = []
    results = {}
    for name in ("greedy", "local_search", "tacc"):
        result = repro.get_solver(name, seed=7).solve(problem)
        results[name] = result
        rows.append(
            [
                name,
                result.objective_value * 1e3,
                result.assignment.max_delay() * 1e3,
                float(result.assignment.utilization().max()),
                result.feasible,
                result.runtime_s,
            ]
        )
    print(
        format_table(
            ["solver", "total delay (ms)", "worst device (ms)",
             "max utilization", "feasible", "runtime (s)"],
            rows,
        )
    )

    # 3. does the static win survive queueing?  Replay TACC's assignment.
    report = repro.simulate_assignment(results["tacc"].assignment, duration_s=30.0, seed=3)
    print(
        f"\nsimulated 30 s: {report.tasks_completed} tasks, "
        f"mean network latency {report.mean_network_latency_ms:.2f} ms, "
        f"p99 end-to-end {report.p99_total_latency_ms:.1f} ms, "
        f"deadline miss rate {report.deadline_miss_rate:.1%}"
    )


if __name__ == "__main__":
    main()

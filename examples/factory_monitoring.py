"""Industrial monitoring: bursty cameras, hard capacity limits.

Scenario: a factory floor meshes PLCs and inspection cameras over a
grid network.  Cameras are *bursty* (two-state MMPP: quiet until an
anomaly, then a spike of frames); servers are heterogeneous (the GAP
general form: a device costs different load on different servers).
Capacity is tight, so the interesting question is not only "how low is
the delay" but "who keeps every server under its limit".

The example contrasts the capacity-blind nearest-server rule (what a
naive deployment does) with TACC, then stress-tests both in the
simulator at 3x nominal load.

Run:  python examples/factory_monitoring.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.sim.runner import simulate_assignment
from repro.utils.tables import format_table
from repro.workload.arrivals import MMPPProcess


def main() -> None:
    problem = repro.topology_instance(
        family="grid",
        n_routers=36,
        n_devices=48,
        n_servers=6,
        tightness=0.88,          # deliberately tight: near-full cluster
        heterogeneous_servers=True,
        seed=77,
        deadline_s=0.08,
        mean_rate_hz=1.5,
    )
    assert problem.devices is not None

    # every 4th device is an inspection camera: quiet at 0.5 Hz, bursts
    # at 12 Hz for ~2 s when an anomaly streak hits
    bursty = {
        device.device_id: MMPPProcess(
            base_rate_hz=0.5, burst_rate_hz=12.0, mean_calm_s=8.0, mean_burst_s=2.0
        )
        for device in problem.devices
        if device.device_id % 4 == 0
    }

    rows = []
    for name in ("nearest", "greedy", "tacc"):
        result = repro.get_solver(name, seed=3).solve(problem)
        assignment = result.assignment
        utilization = assignment.utilization()
        overloaded = assignment.overloaded_servers()
        if overloaded:
            measured = "refused (would overload)"
            miss = "-"
        else:
            report = simulate_assignment(
                assignment, duration_s=40.0, seed=11, rate_scale=3.0, arrivals=bursty
            )
            measured = f"{report.mean_network_latency_ms:.2f} ms"
            miss = f"{report.deadline_miss_rate:.1%}"
        rows.append(
            [
                name,
                assignment.total_delay() * 1e3,
                float(np.max(utilization)),
                len(overloaded),
                measured,
                miss,
            ]
        )
    print(
        format_table(
            ["policy", "static delay (ms)", "max utilization",
             "overloaded servers", "measured latency @3x", "miss rate @3x"],
            rows,
        )
    )
    print(
        "\nThe nearest-server rule wins on raw delay by overloading servers "
        "— an assignment the admission controller must refuse.  TACC gets "
        "within a few percent of that delay while keeping every server "
        "under its limit."
    )


if __name__ == "__main__":
    main()

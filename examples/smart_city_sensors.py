"""Smart-city air-quality network: why topology awareness matters.

Scenario: a municipality deploys periodic environmental sensors across
a *hierarchical* metro network (core → aggregation → street cabinets).
In a hierarchy, two geometrically adjacent street cabinets can sit
under different aggregation subtrees — many expensive hops apart — so
the "assign to the geographically nearest server" rule of thumb is
exactly wrong.

This example quantifies that: it configures the same deployment with
(a) the full topology-aware TACC agent and (b) the same agent fed a
straight-line-distance delay matrix, then scores and simulates both on
the real network.

Run:  python examples/smart_city_sensors.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.model.problem import AssignmentProblem
from repro.model.solution import Assignment
from repro.sim.runner import simulate_assignment
from repro.topology.delay import EuclideanDelayModel
from repro.utils.tables import format_table
from repro.workload.arrivals import PeriodicProcess


def main() -> None:
    # a 3-tier fog hierarchy with sensors reporting every ~0.4 s under
    # a 60 ms municipal latency SLO
    problem = repro.topology_instance(
        family="edge_hierarchy",
        n_routers=40,
        n_devices=50,
        n_servers=5,
        tightness=0.8,
        seed=2024,
        deadline_s=0.06,
        mean_rate_hz=2.5,
    )
    assert problem.graph is not None and problem.devices is not None
    assert problem.servers is not None

    # (b) the proximity-planner's view: straight-line distances
    blind = AssignmentProblem.from_topology(
        problem.graph, problem.devices, problem.servers,
        delay_model=EuclideanDelayModel(), name="euclidean-view",
    )
    blind.capacity = problem.capacity.copy()

    aware_result = repro.get_solver("tacc", seed=5).solve(problem)
    blind_result = repro.get_solver("tacc", seed=5).solve(blind)
    # score the proximity plan on the *real* delays
    blind_on_real = Assignment(problem, blind_result.assignment.vector)

    # fixed-period sensor traffic instead of the default Poisson
    periodic = {
        device.device_id: PeriodicProcess(1.0 / device.rate_hz, jitter=0.2)
        for device in problem.devices
    }

    rows = []
    for label, assignment in [
        ("topology-aware", aware_result.assignment),
        ("proximity (euclidean)", blind_on_real),
    ]:
        report = simulate_assignment(
            assignment, duration_s=40.0, seed=9, arrivals=periodic
        )
        rows.append(
            [
                label,
                assignment.total_delay() * 1e3,
                report.mean_network_latency_ms,
                report.deadline_miss_rate if report.deadline_miss_rate is not None else 0.0,
                float(np.max(assignment.utilization())),
            ]
        )
    print(
        format_table(
            ["planner", "static delay (ms)", "measured latency (ms)",
             "SLO miss rate", "max utilization"],
            rows,
        )
    )
    static_win = rows[1][1] / rows[0][1] - 1.0
    print(
        f"\nIgnoring the topology costs the city {static_win:.0%} extra "
        "communication delay on the same hardware."
    )


if __name__ == "__main__":
    main()

"""Delivery-fleet tracking: keeping the configuration current under motion.

Scenario: couriers' telematics units roam a metro area; as they move,
they re-attach to different gateways and their routed delays to the
edge cluster drift.  A configuration that was optimal at 9am is stale
by noon.

This example runs the full dynamic loop: random-waypoint mobility
rewires the topology each epoch, and four reconfiguration strategies
maintain the assignment — never (static), every epoch (always),
cost-aware (hysteresis), and incremental local repair (polish).  The
output is the F8 trade-off: delay held vs devices migrated.

Run:  python examples/fleet_tracking.py
"""

from __future__ import annotations

import repro
from repro.cluster.controller import RECONFIGURE_STRATEGIES, ReconfigurationController
from repro.utils.tables import format_table
from repro.workload.mobility import RandomWaypointMobility

EPOCHS = 10


def main() -> None:
    base = repro.topology_instance(
        family="random_geometric",
        n_routers=40,
        n_devices=40,
        n_servers=5,
        tightness=0.75,
        seed=123,
    )
    # one shared trajectory so every strategy faces identical motion
    mobility = RandomWaypointMobility(base, speed=0.1, move_fraction=0.5, seed=9)
    epochs = list(mobility.epochs(EPOCHS))

    rows = []
    for strategy in RECONFIGURE_STRATEGIES:
        solver = repro.get_solver("tacc", seed=1, episodes=150)
        controller = ReconfigurationController(solver, strategy=strategy)
        decision = controller.initialize(base)
        initial_ms = decision.cost * 1e3
        final_ms = initial_ms
        worst_ms = initial_ms
        for epoch_state in epochs:
            decision = controller.observe(epoch_state.epoch, epoch_state.problem)
            final_ms = decision.cost * 1e3
            worst_ms = max(worst_ms, final_ms)
        rows.append(
            [
                strategy,
                initial_ms,
                final_ms,
                worst_ms,
                controller.total_moves,
                controller.reconfigurations,
            ]
        )
    print(
        format_table(
            ["strategy", "epoch-0 delay (ms)", "final delay (ms)",
             "worst epoch (ms)", "devices migrated", "reconfigs"],
            rows,
            float_format=".1f",
        )
    )
    print(
        "\nStatic drifts as the fleet moves; 'always' holds delay at maximum "
        "migration churn; hysteresis buys most of that back for a fraction "
        "of the moves; polish repairs incrementally without ever re-solving."
    )


if __name__ == "__main__":
    main()

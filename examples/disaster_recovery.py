"""Riding out server failures: static plans vs reactive reconfiguration.

Scenario: a storm knocks edge sites offline one by one and repairs
trickle in.  The question an operator actually asks is not "what is my
average delay" but "how many devices am I serving right now, and what
did the failover cost me".

This example drives a TACC-configured cluster through a shared failure
timeline twice — once never touching the plan (devices on a dead
server are simply down), once re-solving the degraded problem on every
fault change — and prints the availability timeline plus the migration
bill.

Run:  python examples/disaster_recovery.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.cluster.faults import ServerFaultProcess, degraded_problem, serving_fraction
from repro.utils.tables import format_table

EPOCHS = 12


def main() -> None:
    problem = repro.topology_instance(
        family="waxman",
        n_routers=40,
        n_devices=40,
        n_servers=5,
        tightness=0.55,          # headroom: survivors can absorb a failure
        seed=2077,
    )
    initial = repro.get_solver("tacc", seed=1, episodes=150).solve(problem)
    print(f"initial plan: {initial.objective_value * 1e3:.1f} ms total delay, "
          f"{problem.n_servers} servers up\n")

    faults = ServerFaultProcess(
        problem.n_servers, fail_prob=0.18, repair_prob=0.45, seed=9
    )
    timeline = [faults.step(epoch) for epoch in range(1, EPOCHS + 1)]

    static_vector = initial.assignment.vector
    reactive_vector = initial.assignment.vector
    moves = 0
    rows = []
    previous_failed: frozenset[int] = frozenset()
    for event in timeline:
        if event.failed != previous_failed:
            result = repro.get_solver(
                "tacc", seed=100 + event.epoch, episodes=120
            ).solve(degraded_problem(problem, event.failed))
            if result.feasible:
                new_vector = result.assignment.vector
                moves += int(np.count_nonzero(new_vector != reactive_vector))
                reactive_vector = new_vector
        previous_failed = event.failed
        rows.append(
            [
                event.epoch,
                len(event.failed),
                serving_fraction(static_vector, event.failed, problem.n_devices),
                serving_fraction(reactive_vector, event.failed, problem.n_devices),
                moves,
            ]
        )
    print(
        format_table(
            ["epoch", "servers down", "static availability",
             "reactive availability", "devices migrated (cum.)"],
            rows,
            float_format=".2f",
        )
    )
    static_mean = float(np.mean([r[2] for r in rows]))
    reactive_mean = float(np.mean([r[3] for r in rows]))
    print(
        f"\nMean availability through the storm: static {static_mean:.1%}, "
        f"reactive {reactive_mean:.1%} — bought with {moves} migrations."
    )


if __name__ == "__main__":
    main()

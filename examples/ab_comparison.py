"""A/B-testing cluster configurations with paired trace replay.

Scenario: an operator wants to know whether switching the production
configuration from the incumbent greedy plan to TACC's plan is worth a
maintenance window.  Independent simulations would answer with noise
bars; replaying *one recorded workload trace* through both plans gives
an exactly-paired answer — identical packets at identical instants,
so every microsecond of difference is attributable to the plan.

Also demonstrates the instance diagnostics: the report explains *why*
the gap is what it is (capacity pressure, delay/demand correlation).

Run:  python examples/ab_comparison.py
"""

from __future__ import annotations

import repro
from repro.model.analysis import classify_difficulty, difficulty_report
from repro.sim.trace_runner import paired_comparison, replay_trace
from repro.utils.tables import format_table
from repro.workload.traces import generate_trace


def main() -> None:
    problem = repro.topology_instance(
        family="barabasi_albert",
        n_routers=40,
        n_devices=45,
        n_servers=5,
        tightness=0.85,
        seed=314,
        deadline_s=0.06,
    )

    # why should we expect a gap at all?  Ask the diagnostics.
    print(f"instance difficulty: {classify_difficulty(problem)}")
    diagnostics = difficulty_report(problem)
    print(
        format_table(
            ["diagnostic", "value"],
            [[k, v] for k, v in diagnostics.items()],
        )
    )

    incumbent = repro.get_solver("greedy", seed=1).solve(problem)
    candidate = repro.get_solver("tacc", seed=1).solve(problem)

    # record one hour-scale workload once; replay it through both plans
    trace = generate_trace(problem.devices, horizon_s=60.0, seed=7)
    print(f"\nrecorded trace: {trace.n_entries} tasks over {trace.horizon_s:.0f} s")

    outcome = paired_comparison(
        baseline=incumbent.assignment,
        candidate=candidate.assignment,
        trace=trace,
    )
    rows = [
        ["static total delay (ms)",
         incumbent.objective_value * 1e3, candidate.objective_value * 1e3],
        ["measured mean network latency (ms)",
         outcome["baseline_mean_network_ms"], outcome["candidate_mean_network_ms"]],
        ["measured p99 end-to-end (ms)",
         outcome["baseline_p99_total_ms"], outcome["candidate_p99_total_ms"]],
    ]
    print(format_table(["metric", "greedy (incumbent)", "tacc (candidate)"], rows))

    saving = -outcome["delta_mean_network_ms"]
    base = outcome["baseline_mean_network_ms"]
    print(
        f"\nOn identical traffic, the TACC plan shaves "
        f"{saving:.3f} ms ({saving / base:.1%}) off mean network latency."
    )

    # sanity: per-plan miss rates on the same trace
    for label, assignment in (("greedy", incumbent.assignment),
                              ("tacc", candidate.assignment)):
        report = replay_trace(assignment, trace)
        print(f"{label}: deadline miss rate {report.deadline_miss_rate:.2%}")


if __name__ == "__main__":
    main()

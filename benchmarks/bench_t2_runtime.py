"""T2 — solver runtime scalability (see DESIGN.md)."""

from conftest import emit

from repro.experiments import t2_runtime


def test_t2_runtime(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        t2_runtime.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "t2_runtime")
    # shape check: constructive greedy is orders of magnitude faster than
    # the RL and exact solvers at every size
    sizes = {r["size"] for r in table.rows}
    for size in sizes:
        rows = {r["solver"]: r for r in table.rows if r["size"] == size}
        assert rows["greedy"]["runtime_s_mean"] < rows["tacc"]["runtime_s_mean"]

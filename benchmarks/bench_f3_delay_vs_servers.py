"""F3 — total delay vs number of edge servers (see DESIGN.md)."""

from conftest import emit

from repro.experiments import f3_servers


def test_f3_delay_vs_servers(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f3_servers.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f3_delay_vs_servers")
    # shape check: TACC's delay falls (or holds) as the cluster grows
    tacc = sorted(
        (r["n_servers"], r["total_delay_ms_mean"])
        for r in table.rows
        if r["solver"] == "tacc"
    )
    assert tacc[-1][1] <= tacc[0][1] * 1.05

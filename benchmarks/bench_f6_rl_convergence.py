"""F6 — RL training convergence (see DESIGN.md)."""

import math

from conftest import emit

from repro.experiments import f6_convergence


def test_f6_rl_convergence(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f6_convergence.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f6_rl_convergence")
    # shape checks: best-so-far curves are monotone non-increasing, and
    # every learner's final cost is at or above the exact optimum
    optimum = min(
        r["best_cost_ms_mean"] for r in table.rows if r["solver"] == "optimum"
    )
    for solver in ("tacc", "qlearning", "bandit"):
        series = sorted(
            (r["episode"], r["best_cost_ms_mean"])
            for r in table.rows
            if r["solver"] == solver and not math.isnan(r["best_cost_ms_mean"])
        )
        assert len(series) > 2
        assert all(a[1] >= b[1] - 1e-9 for a, b in zip(series, series[1:]))
        assert series[-1][1] >= optimum - 1e-6

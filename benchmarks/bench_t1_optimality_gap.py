"""T1 — optimality gap on small instances (see DESIGN.md)."""

from conftest import emit

from repro.experiments import t1_optimality


def test_t1_optimality_gap(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        t1_optimality.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "t1_optimality_gap")
    # shape check: TACC's mean gap must be far below random's
    tacc = [r["gap_pct_mean"] for r in table.rows if r["solver"] == "tacc"]
    random_ = [r["gap_pct_mean"] for r in table.rows if r["solver"] == "random"]
    assert sum(tacc) / len(tacc) < sum(random_) / len(random_)

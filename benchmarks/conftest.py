"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one of the paper's tables/figures, prints it
(visible with ``-s``) and writes the data to ``benchmarks/results/``
as JSON for EXPERIMENTS.md.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:
``quick`` (default, seconds per figure) or ``full`` (paper-scale).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "quick")
    assert value in ("quick", "full"), f"REPRO_BENCH_SCALE must be quick|full, got {value}"
    return value


@pytest.fixture(scope="session")
def results_dir(scale) -> Path:
    """Scale-specific artifact directory.

    Quick and full runs write to separate subdirectories so a CI quick
    run can never clobber the shipped full-scale data behind
    EXPERIMENTS.md.
    """
    path = Path(__file__).parent / "results" / scale
    path.mkdir(parents=True, exist_ok=True)
    return path


def emit(table, results_dir: Path, name: str) -> None:
    """Print the paper-style table and persist its data."""
    table.save_json(results_dir / f"{name}.json")
    print()
    print(table.to_text())

"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one of the paper's tables/figures, prints it
(visible with ``-s``) and writes the data to ``benchmarks/results/``
as JSON for EXPERIMENTS.md.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:
``quick`` (default, seconds per figure) or ``full`` (paper-scale).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "quick")
    assert value in ("quick", "full"), f"REPRO_BENCH_SCALE must be quick|full, got {value}"
    return value


@pytest.fixture(scope="session")
def results_dir(scale) -> Path:
    """Scale-specific artifact directory.

    Quick and full runs write to separate subdirectories so a CI quick
    run can never clobber the shipped full-scale data behind
    EXPERIMENTS.md.
    """
    path = Path(__file__).parent / "results" / scale
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture
def obs_capture(results_dir, request):
    """Opt-in observability for one bench.

    Request this fixture and the whole bench runs inside a live
    observability session; on teardown the collected metrics and spans
    are written to ``<results_dir>/<bench>.obs.jsonl`` next to the
    bench's JSON table, so a trajectory can attribute its wall-clock to
    phases with ``python -m repro obs <file>``.
    """
    from repro import obs

    with obs.observed() as session:
        yield session
        name = request.node.name.removeprefix("test_")
        session.write_jsonl(results_dir / f"{name}.obs.jsonl")


def emit(table, results_dir: Path, name: str) -> None:
    """Print the paper-style table and persist its data."""
    table.save_json(results_dir / f"{name}.json")
    print()
    print(table.to_text())

"""Engine bench: pool speedup and cache hit-rate on synthetic grids.

The engine acceptance bar is a >= 2x wall-clock win at 4 workers and a
~100% cache-hit second pass, without changing a single output row.
Two synthetic grids separate what "4 workers" can mean:

* **latency-bound** — every cell sleeps (a measurement probe, a remote
  call).  The pool overlaps the waits, so the speedup demonstrates the
  engine's concurrency on *any* host, single-core CI included.
* **cpu-bound** — every cell burns arithmetic.  Speedup here tracks
  the cores the machine actually has, so the 2x assertion only applies
  where >= 4 cores exist; on smaller hosts the measured number is
  still recorded for the table.

Each case then re-runs its grid against the cache populated by the
pooled pass: the warm wall-clock and hit ratio quantify memoization,
and the bench asserts the rows from serial, pooled, and cached
executions are identical — the determinism contract, measured.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

from conftest import emit

from repro.engine import EngineOptions, JobSpec, run_jobs
from repro.experiments.harness import ResultTable

POOL_WORKERS = 4


def _grid(fn: str, n_jobs: int, params: dict, seed: int) -> list[JobSpec]:
    return [
        JobSpec(
            experiment="engine_bench",
            fn=fn,
            params={**params, "cell": cell},
            seed=seed + cell,
            label=f"{fn.rpartition(':')[2]}[{cell}]",
        )
        for cell in range(n_jobs)
    ]


def _timed_run(specs: list[JobSpec], options: EngineOptions):
    start = time.perf_counter()
    rows = run_jobs(specs, options)
    return rows, time.perf_counter() - start, options.last_report


def run(scale: str, seed: int = 0) -> ResultTable:
    """Build the speedup/caching table (see module docstring)."""
    n_jobs = 8 if scale == "quick" else 16
    sleep_s = 0.15 if scale == "quick" else 0.4
    iterations = 400_000 if scale == "quick" else 2_000_000
    cases = (
        ("latency_bound", "repro.engine.synthetic:latency_cell", {"sleep_s": sleep_s}),
        ("cpu_bound", "repro.engine.synthetic:cpu_cell", {"iterations": iterations}),
    )

    table = ResultTable(
        [
            "case",
            "jobs",
            "workers",
            "serial_s",
            "pooled_s",
            "speedup",
            "warm_s",
            "warm_hit_ratio",
            "rows_identical",
        ],
        title="engine speedup: serial vs pooled vs cached (synthetic grids)",
    )

    with tempfile.TemporaryDirectory(prefix="repro-engine-bench-") as tmp:
        for case, fn, params in cases:
            specs = _grid(fn, n_jobs, params, seed)
            cache_dir = Path(tmp) / case

            serial_rows, serial_s, _ = _timed_run(specs, EngineOptions(jobs=1))
            pooled_rows, pooled_s, _ = _timed_run(
                specs, EngineOptions(jobs=POOL_WORKERS, cache_dir=cache_dir)
            )
            warm_rows, warm_s, warm_report = _timed_run(
                specs, EngineOptions(jobs=POOL_WORKERS, cache_dir=cache_dir)
            )

            table.add_row(
                case=case,
                jobs=n_jobs,
                workers=POOL_WORKERS,
                serial_s=serial_s,
                pooled_s=pooled_s,
                speedup=serial_s / pooled_s,
                warm_s=warm_s,
                warm_hit_ratio=warm_report.cache.hit_ratio,
                rows_identical=serial_rows == pooled_rows == warm_rows,
            )
    return table


def test_engine_speedup(benchmark, scale, results_dir):
    table = benchmark.pedantic(run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1)
    emit(table, results_dir, "engine_speedup")
    by_case = {row["case"]: row for row in table.rows}

    for row in table.rows:
        # the determinism contract: one grid, one table, whatever the path
        assert row["rows_identical"], row
        # the second pass against a warm cache recomputes nothing
        assert row["warm_hit_ratio"] == 1.0, row

    # overlapping sleeps needs no cores: >= 2x on any host
    assert by_case["latency_bound"]["speedup"] >= 2.0, by_case["latency_bound"]

    # arithmetic needs real cores: hold the bar only where they exist
    if (os.cpu_count() or 1) >= POOL_WORKERS:
        assert by_case["cpu_bound"]["speedup"] >= 2.0, by_case["cpu_bound"]

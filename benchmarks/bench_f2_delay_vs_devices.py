"""F2 — total delay vs number of IoT devices (see DESIGN.md)."""

import math

from conftest import emit

from repro.experiments import f2_devices


def test_f2_delay_vs_devices(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f2_devices.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f2_delay_vs_devices")
    # shape checks: monotone growth in N for TACC, and TACC <= random everywhere
    tacc = sorted(
        (r["n_devices"], r["total_delay_ms_mean"])
        for r in table.rows
        if r["solver"] == "tacc"
    )
    assert all(a[1] <= b[1] for a, b in zip(tacc, tacc[1:]))
    for n_devices, tacc_delay in tacc:
        rand = next(
            r["total_delay_ms_mean"]
            for r in table.rows
            if r["solver"] == "random" and r["n_devices"] == n_devices
        )
        assert math.isnan(rand) or tacc_delay <= rand

"""X6 (extension) — dispatch policies under a mid-run crash (see DESIGN.md)."""

from conftest import emit

from repro.experiments import x6_chaos


def test_x6_chaos(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x6_chaos.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "x6_chaos")
    by_policy = {r["policy"]: r for r in table.rows}

    # failover must hold goodput through the crash window...
    assert by_policy["failover"]["crash_goodput_mean"] >= 0.95
    # ...while doing nothing visibly loses the crashed server's share
    assert by_policy["none"]["crash_goodput_mean"] < 0.95
    assert by_policy["none"]["tasks_lost_mean"] > 0
    # same-server retries spend budget but cannot beat failover's goodput
    assert by_policy["retry"]["retries_mean"] > 0
    assert (
        by_policy["failover"]["goodput_mean"]
        >= by_policy["none"]["goodput_mean"] - 1e-9
    )

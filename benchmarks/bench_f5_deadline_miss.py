"""F5 — measured latency and deadline misses vs arrival rate (see DESIGN.md)."""

from conftest import emit

from repro.experiments import f5_deadline


def test_f5_deadline_miss(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f5_deadline.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f5_deadline_miss")
    # shape check: at every arrival rate the TACC assignment's measured
    # mean network latency is at most the random assignment's
    rates = sorted({r["rate_scale"] for r in table.rows})
    for rate in rates:
        by_solver = {
            r["solver"]: r for r in table.rows if r["rate_scale"] == rate
        }
        assert (
            by_solver["tacc"]["mean_network_latency_ms_mean"]
            <= by_solver["random"]["mean_network_latency_ms_mean"] * 1.05
        )
    # latency grows with offered load for every solver
    for solver in {r["solver"] for r in table.rows}:
        series = sorted(
            (r["rate_scale"], r["p99_total_latency_ms_mean"])
            for r in table.rows
            if r["solver"] == solver
        )
        assert series[-1][1] >= series[0][1] * 0.8

"""Gray-failure bench (G5): goodput and tail latency under wire chaos.

Two cases run the *same* gray-failure schedule against the same
3-shard multi-process cluster — a lossy edge to shard-2, a gray
shard-1 (4x slow, and a third of its requests held past the
deadline), background delay on every edge, and a mid-run SIGKILL of
shard-0 with WAL recovery on restart:

* **hedged** — the full defense stack: absolute deadlines propagated
  on the wire, p95-derived hedged requests (assigns race a ring
  successor, releases re-send to the holder), latency-aware outlier
  ejection, and WAL-backed crash recovery;
* **no_hedge** — the same deadlines (without them a dropped message
  would hang a closed slot forever) but hedging disabled: every lost
  or slow message rides the full deadline before surfacing as a
  ``timeout``.

Expected shape: the hedged case holds goodput >= 0.9 with a p99 far
below the deadline, while the no-hedge baseline's p99 is pegged at
the deadline and its goodput drops with the loss rate.  Both cases
must finish with **zero protocol errors** — chaos surfaces as
``timeout``/``rejected`` statuses, never as broken framing.
"""

from __future__ import annotations

import asyncio
import tempfile

from conftest import emit

from repro.experiments.harness import ResultTable
from repro.faults.scenario import FaultEventSpec, FaultScenario
from repro.netem import NetemRule, NetemScript
from repro.serve import LoadTestConfig
from repro.shard import HarnessConfig, run_sharded_loadtest

#: shards for every case (matches the CI gray-smoke job)
N_SHARDS = 3
#: open-loop offered rate (requests/second) — deliberately below a
#: single-core host's capacity so timeouts measure chaos, not overload
RATE_HZ = 120.0
#: absolute per-request budget carried on the wire
DEADLINE_MS = 2000.0


def _gray_script(seed: int) -> NetemScript:
    """The gray schedule: loss, slowness, and background jitter."""
    return NetemScript(
        name="g5-gray",
        seed=seed,
        rules=(
            # a lossy edge: a tenth of requests to shard-2 vanish
            NetemRule(kind="drop", edge="*->shard-2", direction="forward",
                      p=0.1),
            # the gray shard: shard-1 answers everything, 4x slower,
            # and holds a third of its requests past the deadline —
            # alive on every probe, yet dragging the tail
            NetemRule(kind="slow", edge="*->shard-1", factor=4.0),
            NetemRule(kind="reorder", edge="*->shard-1",
                      direction="forward", p=0.35,
                      extra_s=DEADLINE_MS / 1e3 + 0.5),
            # background wire noise on every edge
            NetemRule(kind="delay", edge="*", direction="forward",
                      delay_s=0.002, jitter_s=0.002),
        ),
    )


def run(scale: str, seed: int = 0) -> ResultTable:
    """Build the gray-failure table (see module docstring)."""
    n_requests = 600 if scale == "quick" else 2400
    expected_s = n_requests / RATE_HZ
    # the outage is a fixed 1.5 s whatever the run length — a SIGKILL
    # plus WAL recovery does not take longer because the load test does
    crash_at_s = 0.4 * expected_s
    scenario = FaultScenario(
        name="g5-kill-shard-0",
        events=(
            FaultEventSpec(at_s=crash_at_s, kind="server_crash", server=0),
            FaultEventSpec(at_s=crash_at_s + 1.5, kind="server_repair",
                           server=0),
        ),
    )
    load = LoadTestConfig(
        n_requests=n_requests, rate_hz=RATE_HZ, profile="poisson",
        concurrency=32, seed=seed,
    )

    table = ResultTable(
        [
            "case",
            "requests",
            "duration_s",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "ok",
            "timeouts",
            "rejected",
            "errors",
            "goodput",
            "hedges",
            "hedge_wins",
            "ejections",
            "ghost_releases",
            "netem_lost",
            "recovery_ms",
        ],
        title="gray failure: goodput and p99, hedging+deadlines on vs off",
    )

    for case, hedge in (("hedged", True), ("no_hedge", False)):
        with tempfile.TemporaryDirectory(prefix="g5-wal-") as wal_root:
            config = HarnessConfig(
                n_shards=N_SHARDS,
                # the flat family gets per-server pseudo-regions, so the
                # ring populates all three shards (edge_hierarchy has
                # only 3 coarse regions and collapses to 2)
                family="random_geometric",
                routers=40,
                devices=90,
                servers=9,
                tightness=0.7,
                seed=seed,
                wal_root=wal_root,
                default_deadline_ms=DEADLINE_MS,
                hedge=hedge,
            )
            result = asyncio.run(
                run_sharded_loadtest(
                    config, load, scenario, netem=_gray_script(seed)
                )
            )
        report = result.report
        router = result.router_stats or {}
        netem = result.netem_stats or {}
        recovery_ms = max(
            (entry["ms"] for entry in result.wal_recovery.values()
             if entry["records"]),
            default=0.0,
        )
        ok = report.statuses.get("ok", 0)
        table.add_row(
            case=case,
            requests=report.n_requests,
            duration_s=report.duration_s,
            throughput_rps=report.throughput_rps,
            p50_ms=report.latency_ms["p50"],
            p99_ms=report.latency_ms["p99"],
            ok=ok,
            timeouts=report.statuses.get("timeout", 0),
            rejected=report.rejected,
            errors=report.errors,
            goodput=round(ok / report.n_requests, 4),
            hedges=router.get("hedges_total", 0),
            hedge_wins=router.get("hedge_wins_total", 0),
            ejections=router.get("ejections_total", 0),
            ghost_releases=router.get("ghost_releases_total", 0),
            netem_lost=netem.get("lost_total", 0),
            recovery_ms=round(recovery_ms, 2),
        )

    return table


def test_gray_failure(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "gray_failure")
    by_case = {row["case"]: row for row in table.rows}
    hedged, baseline = by_case["hedged"], by_case["no_hedge"]

    # chaos must never surface as protocol errors
    for row in table.rows:
        assert row["errors"] == 0, f"{row['case']}: protocol errors"

    # the defense stack holds goodput and keeps the tail off the deadline
    assert hedged["goodput"] >= 0.9, hedged
    assert hedged["p99_ms"] < DEADLINE_MS, hedged
    assert hedged["hedges"] > 0, "gray schedule never triggered a hedge"

    # the no-hedge baseline degrades: lower goodput, deadline-bound tail
    assert baseline["goodput"] < hedged["goodput"], (baseline, hedged)
    assert hedged["p99_ms"] < baseline["p99_ms"], (baseline, hedged)

    # the SIGKILLed shard came back through WAL replay
    assert hedged["recovery_ms"] > 0.0, "no WAL recovery observed"

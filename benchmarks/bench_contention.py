"""X7 (extension) — tail amplification vs oversubscription (see docs/cost_model.md)."""

from conftest import emit

from repro.experiments import x7_contention


def test_x7_contention(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x7_contention.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "contention_tail")
    rows = {(r["solver"], r["oversubscription"]): r for r in table.rows}
    factors = sorted({r["oversubscription"] for r in table.rows})
    low, high = factors[0], factors[-1]

    # at the fat end of the sweep the two configurations agree: the
    # static delay matrix is an adequate model when links are unloaded
    base_low = rows[("local_search", low)]["p99_ms_mean"]
    cong_low = rows[("congestion_local_search", low)]["p99_ms_mean"]
    assert abs(base_low - cong_low) <= 0.25 * base_low

    # past the knee the delay-only tail amplifies while the
    # contention-aware configuration holds it: the crossover sign
    gain_high = rows[("congestion_local_search", high)]["p99_gain_ms_mean"]
    gain_low = rows[("congestion_local_search", low)]["p99_gain_ms_mean"]
    assert gain_high > 0
    assert gain_high > 5.0 * max(gain_low, 0.1)

    # the mechanism is link saturation, not base-delay luck: delay-only
    # drives at least one link past capacity at the thin end
    assert rows[("local_search", high)]["max_utilization_mean"] > 1.0
    assert (
        rows[("congestion_local_search", high)]["max_utilization_mean"]
        < rows[("local_search", high)]["max_utilization_mean"]
    )

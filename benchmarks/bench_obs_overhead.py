"""Micro-bench: what does instrumentation cost when it is off (and on)?

The observability acceptance bar is that the default (disabled) state
adds < 5% to solver wall-clock versus the pre-instrumentation seed.
The instrumented hot paths differ from the seed only by no-op calls on
null instruments, so the bench demonstrates the bound two ways:

* **A/B runtime** — the same solve / DES run with observability
  disabled vs enabled; the disabled column is today's default cost.
* **Implied overhead** — the measured per-call cost of a null
  instrument times the number of instrumentation samples the workload
  actually produces (read from the enabled run's own snapshot),
  expressed as a share of the disabled runtime.  This is the precise
  price of the seed -> instrumented diff, immune to scheduler noise.
"""

from __future__ import annotations

import time

from conftest import emit

import repro
from repro import obs
from repro.experiments.harness import ResultTable
from repro.obs.metrics import NULL_REGISTRY
from repro.utils.rng import derive_seed


def _null_ns_per_call(samples: int = 1_000_000) -> float:
    """Measured cost of one no-op instrument call, in nanoseconds."""
    counter = NULL_REGISTRY.counter("bench")
    start = time.perf_counter()
    for _ in range(samples):
        counter.inc()
    return (time.perf_counter() - start) / samples * 1e9


def _timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(scale: str, seed: int = 0) -> ResultTable:
    """Build the overhead table (see module docstring)."""
    repeats = 3 if scale == "quick" else 10
    episodes = 120 if scale == "quick" else 400
    problem = repro.topology_instance(
        family="random_geometric",
        n_routers=25,
        n_devices=24,
        n_servers=4,
        tightness=0.75,
        seed=derive_seed(seed, "obs-overhead"),
    )
    null_ns = _null_ns_per_call()

    def solve() -> None:
        """One TACC solve (the RL training loop is the hot path)."""
        repro.get_solver("tacc", seed=seed, episodes=episodes).solve(problem)

    assignment = repro.get_solver("greedy", seed=seed).solve(problem).assignment

    def simulate() -> None:
        """One short DES run (the event loop is the hot path)."""
        repro.simulate_assignment(assignment, duration_s=5.0, seed=seed)

    table = ResultTable(
        [
            "case",
            "disabled_s",
            "enabled_s",
            "enabled_overhead_pct",
            "obs_samples",
            "null_ns_per_call",
            "implied_disabled_pct",
        ],
        title="obs overhead: instrumented-disabled vs instrumented-enabled",
    )

    for case, fn, count_samples in (
        ("tacc_solve", solve, lambda snap: _solver_samples(snap, problem.n_devices)),
        ("des_run", simulate, _sim_samples),
    ):
        disabled_s = _timed(fn, repeats)
        with obs.observed() as session:
            enabled_s = _timed(fn, repeats)
            # the session saw all `repeats` runs; scale to one run to
            # match the single-run disabled_s denominator
            samples = count_samples(session.snapshot()) // repeats
        implied_pct = samples * null_ns / (disabled_s * 1e9) * 100.0
        table.add_row(
            case=case,
            disabled_s=disabled_s,
            enabled_s=enabled_s,
            enabled_overhead_pct=(enabled_s / disabled_s - 1.0) * 100.0,
            obs_samples=samples,
            null_ns_per_call=null_ns,
            implied_disabled_pct=implied_pct,
        )
    return table


def _counter_total(snapshot: dict, prefix: str) -> float:
    return sum(
        value
        for key, value in snapshot.get("counters", {}).items()
        if key.startswith(prefix)
    )


def _hist_count(snapshot: dict, prefix: str) -> int:
    groups = {**snapshot.get("histograms", {}), **snapshot.get("timers", {})}
    return int(
        sum(summary["count"] for key, summary in groups.items() if key.startswith(prefix))
    )


def _solver_samples(snapshot: dict, n_devices: int) -> int:
    """Instrumentation samples one solve emits (episode + step scale).

    Per step (one per device per episode): a mask-blocked inc.  Per
    episode: epsilon set, episode inc, cost observe (or dead-end inc).
    Per solve: a handful of counters/timers plus the span.
    """
    episodes = _counter_total(snapshot, "rl/episodes")
    return int(episodes * (n_devices + 3) + _hist_count(snapshot, "solver/") + 8)


def _sim_samples(snapshot: dict) -> int:
    """Instrumentation samples one DES run emits (2 per event + waits)."""
    events = _counter_total(snapshot, "sim/events")
    waits = _hist_count(snapshot, "sim/queue_wait_s")
    return int(events * 2 + waits + 8)


def test_obs_overhead(benchmark, scale, results_dir):
    table = benchmark.pedantic(run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1)
    emit(table, results_dir, "obs_overhead")
    null_ns = table.rows[0]["null_ns_per_call"]
    # a no-op instrument call must stay far below a microsecond
    assert null_ns < 1000.0
    for row in table.rows:
        # the disabled (default) configuration stays under the 5% bar
        assert row["implied_disabled_pct"] < 5.0, row

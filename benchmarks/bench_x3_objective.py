"""X3 (extension) — objective trade-off (see DESIGN.md)."""

from conftest import emit

from repro.experiments import x3_objective


def test_x3_objective(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x3_objective.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "x3_objective")
    rows = {r["solver"]: r for r in table.rows}
    # the trade-off must be visible: bottleneck wins max delay,
    # tacc wins (or ties) total delay
    assert rows["bottleneck"]["max_delay_ms_mean"] <= rows["tacc"]["max_delay_ms_mean"]
    assert (
        rows["tacc"]["total_delay_ms_mean"]
        <= rows["bottleneck"]["total_delay_ms_mean"] * 1.02
    )

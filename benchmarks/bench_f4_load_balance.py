"""F4 — load distribution and overload safety (see DESIGN.md)."""

from conftest import emit

from repro.experiments import f4_load


def test_f4_load_balance(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f4_load.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f4_load_balance")
    rows = {r["solver"]: r for r in table.rows}
    # the paper's guarantee: TACC never overloads...
    assert rows["tacc"]["max_utilization_mean"] <= 1.0 + 1e-9
    assert rows["tacc"]["overloaded_servers_mean"] == 0.0
    # ...while the capacity-blind strawman does on tight instances
    assert rows["nearest"]["max_utilization_mean"] >= rows["tacc"]["max_utilization_mean"]

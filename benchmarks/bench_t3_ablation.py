"""T3 — ablation of TACC design choices (see DESIGN.md)."""

from conftest import emit

from repro.experiments import t3_ablation


def test_t3_ablation(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        t3_ablation.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "t3_ablation")
    rows = {r["variant"]: r for r in table.rows}
    full = rows["tacc_full"]["true_delay_ms_mean"]
    # topology awareness is the titular claim: solving against hop-count or
    # euclidean matrices must not beat the full delay model
    assert rows["delay_hop_count"]["true_delay_ms_mean"] >= full * 0.98
    assert rows["delay_euclidean"]["true_delay_ms_mean"] >= full * 0.98
    # masking guarantees zero overloads in the full configuration
    assert rows["tacc_full"]["overloaded_servers_mean"] == 0.0

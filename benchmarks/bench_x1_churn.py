"""X1 (extension) — membership under device churn (see DESIGN.md)."""

from conftest import emit

from repro.experiments import x1_churn


def test_x1_churn(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x1_churn.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "x1_churn")
    last = max(r["epoch"] for r in table.rows)
    final = {r["policy"]: r for r in table.rows if r["epoch"] == last}
    # rebalancing must recover incremental-join drift: compare per active
    # device, since admission decisions (rejections) make the active sets
    # diverge slightly between policies under capacity pressure
    def per_device(row):
        return row["cost_ms_mean"] / row["active_mean"]

    assert per_device(final["reserve+rebalance"]) <= per_device(
        final["greedy_join"]
    ) * 1.02
    # all policies kept a live membership and admission control engaged
    for row in final.values():
        assert row["active_mean"] > 0
        assert row["rejected_total_mean"] >= 0

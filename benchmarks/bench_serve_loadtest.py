"""Serving bench: loadtest latency/throughput across arrival profiles.

Four cases against one in-process assignment service:

* **poisson / burst / closed** — the three load-generator profiles at a
  sustainable offered rate: latency percentiles and throughput of the
  micro-batched serving path, with zero admission rejections expected;
* **overload** — open-loop Poisson at far beyond the service rate into
  a deliberately small queue: the service must shed with explicit
  ``rejected`` responses (admission control), never with protocol
  errors or unbounded queueing.

The bench also pins the serving determinism contract at benchmark
scale: a fixed trace driven through the batched service must land the
byte-identical final assignment and per-request statuses of the serial
``OnlineAssigner`` replay.
"""

from __future__ import annotations

import asyncio

import numpy as np
from conftest import emit

from repro.experiments.harness import ResultTable
from repro.model.instances import topology_instance
from repro.serve import (
    AssignmentService,
    InProcessClient,
    LoadTestConfig,
    ServiceConfig,
    drive_trace,
    generate_trace,
    replay_serial,
    run_loadtest,
)

#: offered rate the service can sustain (requests/second)
NOMINAL_RATE_HZ = 4000.0
#: offered rate far beyond the drain rate, for the overload case
OVERLOAD_RATE_HZ = 60_000.0


def _problem(scale: str, seed: int):
    n_devices = 60 if scale == "quick" else 120
    return topology_instance(
        family="random_geometric",
        n_routers=40,
        n_devices=n_devices,
        n_servers=8,
        tightness=0.7,
        seed=seed,
    )


async def _run_profile(problem, config: LoadTestConfig, service_config: ServiceConfig):
    service = AssignmentService(problem, service_config)
    await service.start()
    try:
        return await run_loadtest(
            InProcessClient(service), problem.n_devices, config
        )
    finally:
        await service.stop()


def _verify_determinism(problem, n_requests: int, seed: int) -> bool:
    """Batched service over a fixed trace == serial replay, at bench scale."""
    trace = generate_trace(problem.n_devices, n_requests, seed=seed)
    serial_vector, serial_statuses = replay_serial(problem, trace)

    async def scenario():
        service = AssignmentService(problem, ServiceConfig(max_queue=10 * n_requests))
        await service.start()
        try:
            responses = await drive_trace(InProcessClient(service), trace)
        finally:
            await service.stop()
        return service.state.vector, [r.status for r in responses]

    batched_vector, batched_statuses = asyncio.run(scenario())
    return bool(
        np.array_equal(batched_vector, serial_vector)
        and batched_statuses == serial_statuses
    )


def run(scale: str, seed: int = 0) -> ResultTable:
    """Build the serving latency/throughput table (see module docstring)."""
    n_requests = 1500 if scale == "quick" else 12_000
    problem = _problem(scale, seed)

    table = ResultTable(
        [
            "case",
            "requests",
            "offered_rate_hz",
            "duration_s",
            "throughput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "ok",
            "rejected",
            "infeasible",
            "errors",
            "matches_serial",
        ],
        title="serving loadtest: latency/throughput per arrival profile",
    )

    cases = [
        ("poisson", NOMINAL_RATE_HZ, ServiceConfig(max_queue=4096)),
        ("burst", NOMINAL_RATE_HZ, ServiceConfig(max_queue=4096)),
        ("closed", NOMINAL_RATE_HZ, ServiceConfig(max_queue=4096)),
        # the queue must sit below the device-actor count (60/120), or the
        # bounded number of in-flight actors could never push depth past it
        ("overload", OVERLOAD_RATE_HZ, ServiceConfig(max_queue=32, watermark=0.5)),
    ]
    matches = _verify_determinism(problem, n_requests, seed + 1)
    for case, rate_hz, service_config in cases:
        profile = case if case != "overload" else "poisson"
        report = asyncio.run(
            _run_profile(
                problem,
                LoadTestConfig(
                    n_requests=n_requests,
                    rate_hz=rate_hz,
                    profile=profile,
                    concurrency=32,
                    seed=seed,
                ),
                service_config,
            )
        )
        table.add_row(
            case=case,
            requests=report.n_requests,
            offered_rate_hz=rate_hz,
            duration_s=report.duration_s,
            throughput_rps=report.throughput_rps,
            p50_ms=report.latency_ms["p50"],
            p95_ms=report.latency_ms["p95"],
            p99_ms=report.latency_ms["p99"],
            ok=report.statuses.get("ok", 0),
            rejected=report.rejected,
            infeasible=report.statuses.get("infeasible", 0),
            errors=report.errors,
            matches_serial=matches,
        )
    return table


def test_serve_loadtest(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "serve_loadtest")
    by_case = {row["case"]: row for row in table.rows}

    for row in table.rows:
        # a healthy device-actor run never produces protocol errors
        assert row["errors"] == 0, row
        # the batched service reproduced the serial baseline exactly
        assert row["matches_serial"], row

    # at a sustainable rate nothing is shed
    for case in ("poisson", "burst", "closed"):
        assert by_case[case]["rejected"] == 0, by_case[case]

    # far past the watermark the service sheds explicitly instead of
    # queueing without bound (the no-crash half is implicit: we got here)
    assert by_case["overload"]["rejected"] > 0, by_case["overload"]
    # latency of served requests stays bounded by the queue, not the backlog
    assert by_case["overload"]["p99_ms"] < 1000.0, by_case["overload"]

"""X4 (extension) — measurement-noise robustness (see DESIGN.md)."""

from conftest import emit

from repro.experiments import x4_noise


def test_x4_noise(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x4_noise.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "x4_noise")
    sigmas = sorted({r["jitter_sigma"] for r in table.rows})
    probe_counts = sorted({r["probes"] for r in table.rows})
    # regret grows with jitter (compare the extremes at the lowest probe count)
    low_probe = probe_counts[0]

    def tacc_regret(sigma, probes):
        return next(
            r["regret_pct_mean"]
            for r in table.rows
            if r["solver"] == "tacc"
            and r["jitter_sigma"] == sigma
            and r["probes"] == probes
        )

    assert tacc_regret(sigmas[-1], low_probe) >= tacc_regret(sigmas[0], low_probe)
    # more probes help at the heaviest jitter
    if len(probe_counts) > 1:
        assert tacc_regret(sigmas[-1], probe_counts[-1]) <= tacc_regret(
            sigmas[-1], low_probe
        ) * 1.05

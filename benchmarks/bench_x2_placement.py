"""X2 (extension) — placement sensitivity (see DESIGN.md)."""

from conftest import emit

from repro.experiments import x2_placement


def test_x2_placement(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x2_placement.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "x2_placement")
    tacc = {
        r["placement"]: r["total_delay_ms_mean"]
        for r in table.rows
        if r["solver"] == "tacc"
    }
    # delay-aware placement must beat random placement even under TACC
    assert min(tacc["spread"], tacc["medoid"]) <= tacc["random"]

"""Sharded-tier bench (G4): throughput, failover goodput, device scale.

Five cases around one topology instance:

* **single** — the G3 baseline: one in-process assignment service;
* **sharded_inproc** — the same load through a :class:`ShardRouter`
  over in-process shard backends: pure router overhead, no processes;
* **sharded_procs** — a real multi-process cluster (one ``repro shard
  serve`` subprocess per shard, line-JSON TCP between router and
  shards), the deployment shape the tier exists for;
* **failover** — the multi-process cluster with a scripted SIGKILL of
  one shard mid-run (plus a repair at full scale): the router must
  keep answering with zero protocol errors and bounded goodput loss
  through the crash window;
* **scale** — a 100k-device instance (10k at quick scale) through the
  in-process router: the consistent-hash routing path at a device
  count two orders of magnitude past the paper's instances.

Single-box caveat: on a 1-CPU host the multi-process cases measure
protocol and supervision overhead, not parallel speedup — shards
time-slice one core, so ``sharded_procs`` cannot beat ``single``.
The acceptance claim "N shards ≥ N-ish × one process" needs N+1 free
cores; the recorded numbers are honest for the hardware they ran on
(see EXPERIMENTS.md for the note).
"""

from __future__ import annotations

import asyncio

from conftest import emit

from repro.experiments.harness import ResultTable
from repro.faults.scenario import FaultEventSpec, FaultScenario
from repro.model.instances import topology_instance
from repro.serve import (
    AssignmentService,
    InProcessClient,
    LoadTestConfig,
    ServiceConfig,
    run_loadtest,
)
from repro.shard import (
    HarnessConfig,
    InProcessBackend,
    ShardRouter,
    build_plan,
    run_sharded_loadtest,
)

#: shards for every sharded case
N_SHARDS = 4
#: open-loop offered rate for the failover case (requests/second)
FAILOVER_RATE_HZ = 1000.0


def _problem(scale: str, seed: int):
    n_devices = 60 if scale == "quick" else 120
    return topology_instance(
        family="edge_hierarchy",
        n_routers=40,
        n_devices=n_devices,
        n_servers=8,
        tightness=0.7,
        seed=seed,
    )


async def _run_single(problem, config: LoadTestConfig):
    service = AssignmentService(problem, ServiceConfig(max_queue=4096))
    await service.start()
    try:
        return await run_loadtest(InProcessClient(service), problem.n_devices, config)
    finally:
        await service.stop()


async def _run_sharded_inproc(problem, config: LoadTestConfig, n_shards: int):
    """The same loadtest through an in-process router; returns
    (report, spillovers)."""
    plan = build_plan(problem, n_shards)
    services = {}
    backends = {}
    for spec in plan.shards:
        service = AssignmentService(
            plan.subproblem(problem, spec.name), ServiceConfig(max_queue=4096)
        )
        await service.start()
        services[spec.name] = service
        backends[spec.name] = InProcessBackend(spec.name, service)
    router = ShardRouter(plan, backends)
    await router.start()
    try:
        report = await run_loadtest(router, problem.n_devices, config)
        return report, router.spillovers_total
    finally:
        await router.stop()
        for service in services.values():
            if service.started:
                await service.stop()


def _scale_problem(scale: str, seed: int):
    """The device-scale case: far past paper-size instances."""
    n_devices = 10_000 if scale == "quick" else 100_000
    return topology_instance(
        family="edge_hierarchy",
        n_routers=120,
        n_devices=n_devices,
        n_servers=32,
        tightness=0.7,
        seed=seed,
    )


def run(scale: str, seed: int = 0) -> ResultTable:
    """Build the sharded-tier table (see module docstring)."""
    n_requests = 1500 if scale == "quick" else 12_000
    problem = _problem(scale, seed)

    table = ResultTable(
        [
            "case",
            "requests",
            "devices",
            "shards",
            "duration_s",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "ok",
            "rejected",
            "errors",
            "spillovers",
            "goodput_steady",
            "goodput_crash",
        ],
        title="sharded serving: throughput, failover goodput, device scale",
    )

    def add(case, report, devices, shards, spillovers, steady="-", crash="-"):
        table.add_row(
            case=case,
            requests=report.n_requests,
            devices=devices,
            shards=shards,
            duration_s=report.duration_s,
            throughput_rps=report.throughput_rps,
            p50_ms=report.latency_ms["p50"],
            p99_ms=report.latency_ms["p99"],
            ok=report.statuses.get("ok", 0),
            rejected=report.rejected,
            errors=report.errors,
            spillovers=spillovers,
            goodput_steady=steady,
            goodput_crash=crash,
        )

    closed = LoadTestConfig(
        n_requests=n_requests, rate_hz=4000.0, profile="closed",
        concurrency=32, seed=seed,
    )

    # single-process baseline (the G3 shape, for the ratio)
    report = asyncio.run(_run_single(problem, closed))
    add("single", report, problem.n_devices, 1, 0)

    # router overhead in isolation
    report, spillovers = asyncio.run(
        _run_sharded_inproc(problem, closed, N_SHARDS)
    )
    add("sharded_inproc", report, problem.n_devices, N_SHARDS, spillovers)

    # the real thing: subprocess shards behind TCP
    harness = HarnessConfig(
        n_shards=N_SHARDS,
        routers=40,
        devices=problem.n_devices,
        servers=8,
        tightness=0.7,
        seed=seed,
    )
    sharded = asyncio.run(run_sharded_loadtest(harness, closed))
    stats = sharded.report.stats or {}
    add(
        "sharded_procs", sharded.report, problem.n_devices,
        len(sharded.plan_shards), stats.get("spillovers_total", 0),
    )

    # failover: kill one shard a quarter into an open-loop run
    fail_requests = 2000 if scale == "quick" else 8000
    expected_s = fail_requests / FAILOVER_RATE_HZ
    kill_at = 0.25 * expected_s
    events = [FaultEventSpec(at_s=kill_at, kind="server_crash", server=0)]
    if scale == "full":
        events.append(
            FaultEventSpec(
                at_s=0.6 * expected_s, kind="server_repair", server=0
            )
        )
    scenario = FaultScenario(name="kill-shard-0", events=tuple(events))
    poisson = LoadTestConfig(
        n_requests=fail_requests, rate_hz=FAILOVER_RATE_HZ,
        profile="poisson", concurrency=64, seed=seed,
    )
    failover = asyncio.run(run_sharded_loadtest(harness, poisson, scenario))

    def goodput(t0, t1):
        ok = total = 0
        for window in failover.timeline:
            if t0 <= window["t0"] < t1:
                ok += window["ok"]
                total += window["total"]
        return round(ok / total, 4) if total else 1.0

    stats = failover.report.stats or {}
    table.add_row(
        case="failover",
        requests=failover.report.n_requests,
        devices=problem.n_devices,
        shards=len(failover.plan_shards),
        duration_s=failover.report.duration_s,
        throughput_rps=failover.report.throughput_rps,
        p50_ms=failover.report.latency_ms["p50"],
        p99_ms=failover.report.latency_ms["p99"],
        ok=failover.report.statuses.get("ok", 0),
        rejected=failover.report.rejected,
        errors=failover.report.errors,
        spillovers=stats.get("spillovers_total", 0),
        goodput_steady=goodput(0.0, kill_at),
        goodput_crash=goodput(kill_at, kill_at + 2.0),
    )

    # device scale: routing cost at 100k devices (10k quick)
    big = _scale_problem(scale, seed)
    scale_requests = 3000 if scale == "quick" else 20_000
    report, spillovers = asyncio.run(
        _run_sharded_inproc(
            big,
            LoadTestConfig(
                n_requests=scale_requests, rate_hz=4000.0,
                profile="closed", concurrency=32, seed=seed,
            ),
            N_SHARDS,
        )
    )
    add("scale", report, big.n_devices, N_SHARDS, spillovers)

    return table


def test_shard_loadtest(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "shard_loadtest")
    by_case = {row["case"]: row for row in table.rows}

    for row in table.rows:
        # the router never surfaces protocol errors — not even while a
        # shard is down (failure releases reconcile to ok)
        assert row["errors"] == 0, row

    # healthy sharded runs shed nothing at a sustainable rate
    for case in ("sharded_inproc", "sharded_procs", "scale"):
        assert by_case[case]["rejected"] == 0, by_case[case]

    # failover: load before the kill is clean, and the crash window
    # keeps bounded goodput (capacity loss may reject, never error)
    assert by_case["failover"]["goodput_steady"] >= 0.99, by_case["failover"]
    assert by_case["failover"]["goodput_crash"] >= 0.5, by_case["failover"]
    assert by_case["failover"]["spillovers"] > 0, by_case["failover"]

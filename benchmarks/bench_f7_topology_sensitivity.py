"""F7 — sensitivity to the topology family (see DESIGN.md)."""

import math

from conftest import emit

from repro.experiments import f7_topology


def test_f7_topology_sensitivity(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f7_topology.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f7_topology_sensitivity")
    # shape check: on every family TACC stays close to the LP bound and
    # below random
    families = {r["family"] for r in table.rows}
    for family in families:
        rows = {r["solver"]: r for r in table.rows if r["family"] == family}
        tacc = rows["tacc"]["cost_over_lp_mean"]
        rand = rows["random"]["cost_over_lp_mean"]
        assert not math.isnan(tacc)
        assert tacc <= rand
        assert tacc < 1.5  # within 50% of the fractional bound everywhere

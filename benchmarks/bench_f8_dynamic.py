"""F8 — dynamic reconfiguration under mobility (see DESIGN.md)."""

from conftest import emit

from repro.experiments import f8_dynamic


def test_f8_dynamic(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        f8_dynamic.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "f8_dynamic")
    last_epoch = max(r["epoch"] for r in table.rows)
    final = {
        r["strategy"]: r for r in table.rows if r["epoch"] == last_epoch
    }
    # shape checks: reconfiguring beats static at the end of the run, and
    # static migrates nothing while the active strategies migrate something
    assert final["always"]["cost_ms_mean"] <= final["static"]["cost_ms_mean"]
    assert final["static"]["cumulative_moves_mean"] == 0.0
    assert final["always"]["cumulative_moves_mean"] > 0.0
    assert (
        final["hysteresis"]["cumulative_moves_mean"]
        <= final["always"]["cumulative_moves_mean"] + 1e-9
    )

"""X5 (extension) — availability under server failures (see DESIGN.md)."""

from conftest import emit

from repro.experiments import x5_faults


def test_x5_faults(benchmark, scale, results_dir):
    table = benchmark.pedantic(
        x5_faults.run, args=(scale,), kwargs={"seed": 0}, rounds=1, iterations=1
    )
    emit(table, results_dir, "x5_faults")

    def availability(policy):
        rows = [r for r in table.rows if r["policy"] == policy and r["epoch"] > 0]
        return sum(r["serving_fraction_mean"] for r in rows) / len(rows)

    # reacting to failures must never serve fewer devices than doing nothing
    assert availability("reactive") >= availability("static") - 1e-9
    # and it must actually migrate to achieve that
    last = max(r["epoch"] for r in table.rows)
    final = {r["policy"]: r for r in table.rows if r["epoch"] == last}
    assert final["reactive"]["cumulative_moves_mean"] > 0
    assert final["static"]["cumulative_moves_mean"] == 0

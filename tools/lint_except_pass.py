#!/usr/bin/env python3
"""Forbid silent failure modes on the serving request path.

Two rules, both AST-enforced:

* ``except Exception: pass`` (or a bare ``except: pass``) turns a gray
  failure into an invisible one: the request neither succeeds nor
  surfaces as a typed error, which is exactly the failure mode the
  robustness work exists to kill.  Narrow handlers
  (``except ShardUnavailableError: pass``) stay legal — they document
  which failure is being absorbed and why it is safe.
* ``start_span(...)`` outside a ``with`` statement drops the span
  context: the span is opened but nothing guarantees it closes, so the
  trace silently loses a hop.  On the request path every
  ``start_span`` call must be a ``with`` item.  The explicit-finish
  escape hatch ``start_manual`` is for measurement harnesses whose
  send and completion live in different callbacks
  (``loadtest.py``/``harness.py``) and is forbidden everywhere else.

Usage::

    python tools/lint_except_pass.py [ROOT ...]

Walks the given roots (default: the request-path packages under
``src/repro``), AST-parses every ``*.py`` file, and reports each
violation as ``path:line: message``.  Exit 1 when any are found, 0
otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: packages forming the serve/shard request path
REQUEST_PATH_ROOTS = (
    "src/repro/serve",
    "src/repro/shard",
    "src/repro/netem",
    "src/repro/wal",
    "src/repro/contention",
)

#: exception names too broad to silently swallow
BROAD_NAMES = {"Exception", "BaseException"}

#: files allowed to open explicit-finish spans (measurement harnesses
#: whose send and completion live in different callbacks)
MANUAL_SPAN_FILES = {"loadtest.py", "harness.py"}


def _is_broad(node: "ast.expr | None") -> bool:
    """Whether an ``except`` clause catches everything (or close to)."""
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Attribute):  # builtins.Exception
        return node.attr in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing at all."""
    return all(
        isinstance(statement, ast.Pass)
        or (isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis)
        for statement in handler.body
    )


def _span_method(node: ast.Call) -> "str | None":
    """The recorder span-opening method a call invokes, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    return name if name in ("start_span", "start_manual") else None


def check_source(source: str, path: str = "<string>") -> "list[str]":
    """All violations in one source text, as ``path:line: msg`` lines."""
    violations = []
    tree = ast.parse(source, filename=path)
    with_contexts: "set[int]" = {
        id(item.context_expr)
        for node in ast.walk(tree)
        if isinstance(node, (ast.With, ast.AsyncWith))
        for item in node.items
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler):
            if _is_broad(node.type) and _swallows(node):
                shown = (
                    ast.unparse(node.type) if node.type is not None else ""
                )
                violations.append(
                    f"{path}:{node.lineno}: except "
                    f"{shown or '<bare>'}: pass swallows failures on the "
                    f"request path — handle, re-raise, or narrow the type"
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        method = _span_method(node)
        if method == "start_span" and id(node) not in with_contexts:
            violations.append(
                f"{path}:{node.lineno}: start_span(...) outside a "
                f"`with` statement drops the span context — open request"
                f"-path spans as `with recorder.start_span(...) as span:`"
            )
        elif (method == "start_manual"
              and Path(path).name not in MANUAL_SPAN_FILES):
            violations.append(
                f"{path}:{node.lineno}: start_manual(...) is reserved "
                f"for measurement harnesses ({', '.join(sorted(MANUAL_SPAN_FILES))}) "
                f"— request-path spans must use `with ... start_span(...)`"
            )
    return violations


def check_tree(roots: "list[str]") -> "list[str]":
    """All violations under the given root directories."""
    violations = []
    for root in roots:
        base = Path(root)
        files = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in files:
            violations.extend(
                check_source(path.read_text(encoding="utf-8"), str(path))
            )
    return violations


def main(argv: "list[str]") -> int:
    roots = argv or [
        root for root in REQUEST_PATH_ROOTS if Path(root).exists()
    ]
    violations = check_tree(roots)
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} request-path lint violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Forbid silently-swallowed exceptions on the serving request path.

``except Exception: pass`` (or a bare ``except: pass``) on the serve/
shard request path turns a gray failure into an invisible one: the
request neither succeeds nor surfaces as a typed error, which is
exactly the failure mode the robustness work exists to kill.  Narrow
handlers (``except ShardUnavailableError: pass``) stay legal — they
document which failure is being absorbed and why it is safe.

Usage::

    python tools/lint_except_pass.py [ROOT ...]

Walks the given roots (default: the request-path packages under
``src/repro``), AST-parses every ``*.py`` file, and reports each
swallowing handler as ``path:line: message``.  Exit 1 when any are
found, 0 otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: packages forming the serve/shard request path
REQUEST_PATH_ROOTS = (
    "src/repro/serve",
    "src/repro/shard",
    "src/repro/netem",
    "src/repro/wal",
)

#: exception names too broad to silently swallow
BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(node: "ast.expr | None") -> bool:
    """Whether an ``except`` clause catches everything (or close to)."""
    if node is None:  # bare except:
        return True
    if isinstance(node, ast.Name):
        return node.id in BROAD_NAMES
    if isinstance(node, ast.Attribute):  # builtins.Exception
        return node.attr in BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing at all."""
    return all(
        isinstance(statement, ast.Pass)
        or (isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis)
        for statement in handler.body
    )


def check_source(source: str, path: str = "<string>") -> "list[str]":
    """All violations in one source text, as ``path:line: msg`` lines."""
    violations = []
    for node in ast.walk(ast.parse(source, filename=path)):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_broad(node.type) and _swallows(node):
            shown = ast.unparse(node.type) if node.type is not None else ""
            violations.append(
                f"{path}:{node.lineno}: except "
                f"{shown or '<bare>'}: pass swallows failures on the "
                f"request path — handle, re-raise, or narrow the type"
            )
    return violations


def check_tree(roots: "list[str]") -> "list[str]":
    """All violations under the given root directories."""
    violations = []
    for root in roots:
        base = Path(root)
        files = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in files:
            violations.extend(
                check_source(path.read_text(encoding="utf-8"), str(path))
            )
    return violations


def main(argv: "list[str]") -> int:
    roots = argv or [
        root for root in REQUEST_PATH_ROOTS if Path(root).exists()
    ]
    violations = check_tree(roots)
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} swallowed-exception violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
